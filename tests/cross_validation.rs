//! Cross-validation between independent implementations:
//! * the state-space period analysis vs the HSDF maximum-cycle-ratio path
//!   (two different algorithms, must agree exactly);
//! * the simulator vs the analytical period for uncontended applications;
//! * estimator sanity on random workloads.

use contention::{estimate, Method};
use mpsoc_sim::{simulate, SimConfig};
use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
use sdf::{analyze_period, generate_graph, maximum_cycle_ratio, GeneratorConfig, HsdfGraph};

#[test]
fn state_space_agrees_with_mcr_on_random_graphs() {
    let config = GeneratorConfig::default();
    for seed in 0..25 {
        let g = generate_graph(&config, seed);
        let state_space = analyze_period(&g).expect("analyzes").period;
        let hsdf = HsdfGraph::expand(&g).expect("expands");
        let mcr = maximum_cycle_ratio(&hsdf).expect("solves");
        assert_eq!(state_space, mcr, "seed {seed}: {state_space} vs {mcr}");
    }
}

#[test]
fn simulator_matches_analysis_without_contention() {
    // A single application on the platform: the simulator must achieve the
    // analytical self-timed period exactly (after its warm-up window).
    let config = GeneratorConfig::default();
    for seed in 0..10 {
        let g = generate_graph(&config, 100 + seed);
        let expected = analyze_period(&g).expect("analyzes").period.to_f64();
        let app = Application::new(format!("app{seed}"), g).expect("valid");
        let spec = SystemSpec::builder()
            .application(app)
            .mapping(Mapping::by_actor_index(10))
            .build()
            .expect("valid spec");
        let sim = simulate(
            &spec,
            UseCase::single(AppId(0)),
            SimConfig::with_horizon(200_000),
        )
        .expect("simulates");
        let measured = sim
            .app(AppId(0))
            .unwrap()
            .average_period()
            .expect("iterations");
        let deviation = (measured - expected).abs() / expected;
        assert!(
            deviation < 0.01,
            "seed {seed}: simulated {measured} vs analytical {expected}"
        );
    }
}

#[test]
fn estimates_bounded_by_worst_case_on_random_workloads() {
    // For every random two-app workload: isolation ≤ probabilistic estimate
    // ≤ worst-case estimate.
    let config = GeneratorConfig::default();
    for seed in 0..8 {
        let a = generate_graph(&config, 1000 + seed);
        let b = generate_graph(&config, 2000 + seed);
        let spec = SystemSpec::builder()
            .application(Application::new("A", a).expect("valid"))
            .application(Application::new("B", b).expect("valid"))
            .mapping(Mapping::by_actor_index(10))
            .build()
            .expect("valid spec");
        let uc = UseCase::full(2);
        let prob = estimate(&spec, uc, Method::Exact).expect("estimates");
        let wc = estimate(&spec, uc, Method::WorstCaseRoundRobin).expect("estimates");
        for id in [AppId(0), AppId(1)] {
            let iso = spec.application(id).isolation_period();
            assert!(
                prob.period(id) >= iso,
                "seed {seed} {id}: estimate below isolation"
            );
            assert!(
                wc.period(id) >= prob.period(id),
                "seed {seed} {id}: worst case below probabilistic"
            );
        }
    }
}

#[test]
fn contended_simulation_never_beats_isolation() {
    let config = GeneratorConfig::default();
    let a = generate_graph(&config, 7);
    let b = generate_graph(&config, 8);
    let spec = SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(10))
        .build()
        .expect("valid spec");
    let sim =
        simulate(&spec, UseCase::full(2), SimConfig::with_horizon(100_000)).expect("simulates");
    for m in sim.apps() {
        let iso = spec.application(m.app()).isolation_period().to_f64();
        let measured = m.average_period().expect("iterations");
        assert!(
            measured >= iso * 0.999,
            "{}: contended {measured} < isolation {iso}",
            m.app()
        );
    }
}

#[test]
fn estimator_methods_rank_consistently_under_high_contention() {
    // Many apps on few nodes: second order ≥ fourth order ≥ … the ordering
    // the paper observes ("the second order estimate is always more
    // conservative than the fourth order estimate").
    let config = GeneratorConfig {
        min_actors: 6,
        max_actors: 6,
        ..GeneratorConfig::default()
    };
    let mut builder = SystemSpec::builder();
    for seed in 0..6 {
        builder = builder.application(
            Application::new(format!("app{seed}"), generate_graph(&config, 500 + seed))
                .expect("valid"),
        );
    }
    let spec = builder
        .mapping(Mapping::by_actor_index(6))
        .build()
        .expect("valid spec");
    let uc = UseCase::full(6);
    let second = estimate(&spec, uc, Method::SECOND_ORDER).expect("estimates");
    let fourth = estimate(&spec, uc, Method::FOURTH_ORDER).expect("estimates");
    let wc = estimate(&spec, uc, Method::WorstCaseRoundRobin).expect("estimates");
    for (id, _) in spec.iter() {
        assert!(
            second.period(id) >= fourth.period(id),
            "{id}: 2nd ({}) < 4th ({})",
            second.period(id),
            fourth.period(id)
        );
        assert!(
            wc.period(id) >= second.period(id),
            "{id}: wc below second order"
        );
    }
}
