//! Property-based tests over the core algebra and data structures.

use contention::symmetric::{elementary_symmetric, elementary_symmetric_naive, leave_one_out};
use contention::{waiting_time, ActorLoad, Composite, Order};
use proptest::prelude::*;
use sdf::Rational;

/// Strategy: a rational in [0, 1] with a lattice-friendly denominator (the
/// algebra quantises to multiples of 2520⁻³, so test inputs stay exact).
fn prob() -> impl Strategy<Value = Rational> {
    (0i128..=2520).prop_map(|n| Rational::new(n, 2520))
}

/// Strategy: a small non-negative blocking time on the half-integer grid.
fn blocking_time() -> impl Strategy<Value = Rational> {
    (0i128..=400).prop_map(|n| Rational::new(n, 2))
}

fn load() -> impl Strategy<Value = ActorLoad> {
    (prob(), blocking_time()).prop_map(|(p, mu)| ActorLoad::new(p, mu).expect("valid"))
}

proptest! {
    #[test]
    fn rational_field_laws(a in -2000i128..2000, b in 1i128..300, c in -2000i128..2000, d in 1i128..300) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!(x + Rational::ZERO, x);
        prop_assert_eq!(x * Rational::ONE, x);
        prop_assert_eq!((x + y) - y, x);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
    }

    #[test]
    fn rational_ordering_total(a in -500i128..500, b in 1i128..100, c in -500i128..500, d in 1i128..100) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        // Exactly one of <, ==, > holds, and it matches f64 up to exactness.
        let by_cmp = x.cmp(&y);
        let diff = x - y;
        prop_assert_eq!(diff.is_positive(), by_cmp == std::cmp::Ordering::Greater);
        prop_assert_eq!(diff.is_zero(), by_cmp == std::cmp::Ordering::Equal);
    }

    #[test]
    fn quantize_error_bounded(a in -100_000i128..100_000, b in 1i128..100_000, grid in 1i128..100_000) {
        let x = Rational::new(a, b);
        let q = x.quantize(grid);
        // Error at most half a grid step, and exact multiples unchanged.
        prop_assert!((q - x).abs() <= Rational::new(1, 2 * grid));
        prop_assert_eq!(q.quantize(grid), q);
    }

    #[test]
    fn symmetric_dp_matches_naive(values in prop::collection::vec(prob(), 0..7)) {
        let e = elementary_symmetric(&values, values.len());
        for (j, &ej) in e.iter().enumerate() {
            prop_assert_eq!(ej, elementary_symmetric_naive(&values, j), "degree {}", j);
        }
    }

    #[test]
    fn leave_one_out_consistent(values in prop::collection::vec(prob(), 1..7), idx in 0usize..6) {
        let idx = idx % values.len();
        let e = elementary_symmetric(&values, values.len());
        let rest: Vec<Rational> = values
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != idx)
            .map(|(_, &v)| v)
            .collect();
        let expected = elementary_symmetric(&rest, rest.len());
        prop_assert_eq!(leave_one_out(&e, values[idx]), expected);
    }

    #[test]
    fn compose_probability_stays_in_unit_interval(loads in prop::collection::vec(load(), 0..12)) {
        let c = Composite::from_actors(loads);
        prop_assert!(!c.probability().is_negative());
        prop_assert!(c.probability() <= Rational::ONE);
        prop_assert!(!c.expected_waiting().is_negative());
    }

    #[test]
    fn compose_is_commutative(a in load(), b in load()) {
        let ca = Composite::from_actor(a);
        let cb = Composite::from_actor(b);
        prop_assert_eq!(ca.compose(cb), cb.compose(ca));
    }

    #[test]
    fn probability_composition_associative(a in load(), b in load(), c in load()) {
        // ⊕ is exactly associative (Section 4.2) — quantisation preserves
        // this for lattice-aligned inputs.
        let (ca, cb, cc) = (
            Composite::from_actor(a),
            Composite::from_actor(b),
            Composite::from_actor(c),
        );
        let left = ca.compose(cb).compose(cc).probability();
        let right = ca.compose(cb.compose(cc)).probability();
        // Lattice rounding of intermediate w does not touch p; p itself is
        // re-quantised identically on both sides, so demand near-equality
        // within one lattice step.
        let lattice = Rational::new(1, contention::waiting::LATTICE);
        prop_assert!((left - right).abs() <= lattice, "{} vs {}", left, right);
    }

    #[test]
    fn waiting_associativity_deviation_is_third_order(a in load(), b in load(), c in load()) {
        // ⊗ is associative to second order: the deviation between the two
        // association orders is bounded by a third-order product of the
        // probabilities (paper, Section 4.2).
        let (ca, cb, cc) = (
            Composite::from_actor(a),
            Composite::from_actor(b),
            Composite::from_actor(c),
        );
        let left = ca.compose(cb).compose(cc).expected_waiting();
        let right = ca.compose(cb.compose(cc)).expected_waiting();
        let mu_max = a.blocking_time().max(b.blocking_time()).max(c.blocking_time());
        let bound = mu_max * (a.probability() * b.probability() * c.probability()
            + a.probability() * b.probability()
            + b.probability() * c.probability()
            + a.probability() * c.probability())
            + Rational::new(1, 1_000_000); // lattice slack
        prop_assert!(
            (left - right).abs() <= bound,
            "deviation {} exceeds third-order bound {}",
            (left - right).abs(),
            bound
        );
    }

    #[test]
    fn decompose_inverts_compose(rest in prop::collection::vec(load(), 0..6), b in load()) {
        prop_assume!(!b.is_saturating());
        let base = Composite::from_actors(rest);
        let with_b = base.compose(Composite::from_actor(b));
        let recovered = with_b.decompose(Composite::from_actor(b)).expect("P(b) != 1");
        // Round-trip exact up to accumulated lattice rounding (≤ 1e-6,
        // roughly one lattice step per compose plus inverse amplification).
        let tol = Rational::new(1, 1_000_000);
        prop_assert!((recovered.probability() - base.probability()).abs() <= tol);
        prop_assert!((recovered.expected_waiting() - base.expected_waiting()).abs() <= tol);
    }

    #[test]
    fn waiting_time_nonnegative_and_monotone_in_load(others in prop::collection::vec(load(), 0..8), extra in load()) {
        for order in [Order::Exact, Order::SECOND, Order::FOURTH] {
            let w = waiting_time(&others, order);
            prop_assert!(!w.is_negative(), "{:?}", order);
        }
        // Adding one more contender can only increase second-order waiting.
        let w_before = waiting_time(&others, Order::SECOND);
        let mut more = others.clone();
        more.push(extra);
        let w_after = waiting_time(&more, Order::SECOND);
        prop_assert!(w_after >= w_before);
    }

    #[test]
    fn truncation_order_n_equals_exact(loads in prop::collection::vec(load(), 1..7)) {
        let exact = waiting_time(&loads, Order::Exact);
        let full_trunc = waiting_time(&loads, Order::Truncated(loads.len() as u32));
        prop_assert_eq!(exact, full_trunc);
    }

    #[test]
    fn second_order_at_least_exact_under_light_load(loads in prop::collection::vec(
        (1i128..=630, 0i128..=400).prop_map(|(n, t)| ActorLoad::new(
            Rational::new(n, 2520), Rational::new(t, 2)).expect("valid")), 2..8)) {
        // For probabilities ≤ 1/4 the alternating inner series has strictly
        // decreasing terms, so the j=1 truncation upper-bounds the series.
        let second = waiting_time(&loads, Order::SECOND);
        let exact = waiting_time(&loads, Order::Exact);
        prop_assert!(
            second >= exact,
            "second {} < exact {}",
            second,
            exact
        );
    }
}

#[test]
fn use_case_roundtrip_mask() {
    use platform::{AppId, UseCase};
    for mask in 1u64..512 {
        let uc = UseCase::from_mask(mask);
        let rebuilt = UseCase::of(&uc.app_ids().collect::<Vec<AppId>>());
        assert_eq!(uc, rebuilt);
        assert_eq!(uc.len(), mask.count_ones() as usize);
    }
}
