//! Property-based tests over the core algebra and data structures.

use contention::symmetric::{elementary_symmetric, elementary_symmetric_naive, leave_one_out};
use contention::{waiting_time, ActorLoad, Composite, Order};
use proptest::prelude::*;
use sdf::Rational;

/// Strategy: a rational in [0, 1] with a lattice-friendly denominator (the
/// algebra quantises to multiples of 2520⁻³, so test inputs stay exact).
fn prob() -> impl Strategy<Value = Rational> {
    (0i128..=2520).prop_map(|n| Rational::new(n, 2520))
}

/// Strategy: a small non-negative blocking time on the half-integer grid.
fn blocking_time() -> impl Strategy<Value = Rational> {
    (0i128..=400).prop_map(|n| Rational::new(n, 2))
}

fn load() -> impl Strategy<Value = ActorLoad> {
    (prob(), blocking_time()).prop_map(|(p, mu)| ActorLoad::new(p, mu).expect("valid"))
}

proptest! {
    #[test]
    fn rational_field_laws(a in -2000i128..2000, b in 1i128..300, c in -2000i128..2000, d in 1i128..300) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!(x + Rational::ZERO, x);
        prop_assert_eq!(x * Rational::ONE, x);
        prop_assert_eq!((x + y) - y, x);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
    }

    #[test]
    fn rational_ordering_total(a in -500i128..500, b in 1i128..100, c in -500i128..500, d in 1i128..100) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        // Exactly one of <, ==, > holds, and it matches f64 up to exactness.
        let by_cmp = x.cmp(&y);
        let diff = x - y;
        prop_assert_eq!(diff.is_positive(), by_cmp == std::cmp::Ordering::Greater);
        prop_assert_eq!(diff.is_zero(), by_cmp == std::cmp::Ordering::Equal);
    }

    #[test]
    fn quantize_error_bounded(a in -100_000i128..100_000, b in 1i128..100_000, grid in 1i128..100_000) {
        let x = Rational::new(a, b);
        let q = x.quantize(grid);
        // Error at most half a grid step, and exact multiples unchanged.
        prop_assert!((q - x).abs() <= Rational::new(1, 2 * grid));
        prop_assert_eq!(q.quantize(grid), q);
    }

    #[test]
    fn symmetric_dp_matches_naive(values in prop::collection::vec(prob(), 0..7)) {
        let e = elementary_symmetric(&values, values.len());
        for (j, &ej) in e.iter().enumerate() {
            prop_assert_eq!(ej, elementary_symmetric_naive(&values, j), "degree {}", j);
        }
    }

    #[test]
    fn leave_one_out_consistent(values in prop::collection::vec(prob(), 1..7), idx in 0usize..6) {
        let idx = idx % values.len();
        let e = elementary_symmetric(&values, values.len());
        let rest: Vec<Rational> = values
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != idx)
            .map(|(_, &v)| v)
            .collect();
        let expected = elementary_symmetric(&rest, rest.len());
        prop_assert_eq!(leave_one_out(&e, values[idx]), expected);
    }

    #[test]
    fn compose_probability_stays_in_unit_interval(loads in prop::collection::vec(load(), 0..12)) {
        let c = Composite::from_actors(loads);
        prop_assert!(!c.probability().is_negative());
        prop_assert!(c.probability() <= Rational::ONE);
        prop_assert!(!c.expected_waiting().is_negative());
    }

    #[test]
    fn compose_is_commutative(a in load(), b in load()) {
        let ca = Composite::from_actor(a);
        let cb = Composite::from_actor(b);
        prop_assert_eq!(ca.compose(cb), cb.compose(ca));
    }

    #[test]
    fn probability_composition_associative(a in load(), b in load(), c in load()) {
        // ⊕ is exactly associative (Section 4.2) — quantisation preserves
        // this for lattice-aligned inputs.
        let (ca, cb, cc) = (
            Composite::from_actor(a),
            Composite::from_actor(b),
            Composite::from_actor(c),
        );
        let left = ca.compose(cb).compose(cc).probability();
        let right = ca.compose(cb.compose(cc)).probability();
        // Lattice rounding of intermediate w does not touch p; p itself is
        // re-quantised identically on both sides, so demand near-equality
        // within one lattice step.
        let lattice = Rational::new(1, contention::waiting::LATTICE);
        prop_assert!((left - right).abs() <= lattice, "{} vs {}", left, right);
    }

    #[test]
    fn waiting_associativity_deviation_is_third_order(a in load(), b in load(), c in load()) {
        // ⊗ is associative to second order: the deviation between the two
        // association orders is bounded by a third-order product of the
        // probabilities (paper, Section 4.2).
        let (ca, cb, cc) = (
            Composite::from_actor(a),
            Composite::from_actor(b),
            Composite::from_actor(c),
        );
        let left = ca.compose(cb).compose(cc).expected_waiting();
        let right = ca.compose(cb.compose(cc)).expected_waiting();
        let mu_max = a.blocking_time().max(b.blocking_time()).max(c.blocking_time());
        let bound = mu_max * (a.probability() * b.probability() * c.probability()
            + a.probability() * b.probability()
            + b.probability() * c.probability()
            + a.probability() * c.probability())
            + Rational::new(1, 1_000_000); // lattice slack
        prop_assert!(
            (left - right).abs() <= bound,
            "deviation {} exceeds third-order bound {}",
            (left - right).abs(),
            bound
        );
    }

    #[test]
    fn decompose_inverts_compose(rest in prop::collection::vec(load(), 0..6), b in load()) {
        prop_assume!(!b.is_saturating());
        let base = Composite::from_actors(rest);
        let with_b = base.compose(Composite::from_actor(b));
        let recovered = with_b.decompose(Composite::from_actor(b)).expect("P(b) != 1");
        // Round-trip exact up to accumulated lattice rounding (≤ 1e-6,
        // roughly one lattice step per compose plus inverse amplification).
        let tol = Rational::new(1, 1_000_000);
        prop_assert!((recovered.probability() - base.probability()).abs() <= tol);
        prop_assert!((recovered.expected_waiting() - base.expected_waiting()).abs() <= tol);
    }

    #[test]
    fn waiting_time_nonnegative_and_monotone_in_load(others in prop::collection::vec(load(), 0..8), extra in load()) {
        for order in [Order::Exact, Order::SECOND, Order::FOURTH] {
            let w = waiting_time(&others, order);
            prop_assert!(!w.is_negative(), "{:?}", order);
        }
        // Adding one more contender can only increase second-order waiting.
        let w_before = waiting_time(&others, Order::SECOND);
        let mut more = others.clone();
        more.push(extra);
        let w_after = waiting_time(&more, Order::SECOND);
        prop_assert!(w_after >= w_before);
    }

    #[test]
    fn truncation_order_n_equals_exact(loads in prop::collection::vec(load(), 1..7)) {
        let exact = waiting_time(&loads, Order::Exact);
        let full_trunc = waiting_time(&loads, Order::Truncated(loads.len() as u32));
        prop_assert_eq!(exact, full_trunc);
    }

    #[test]
    fn second_order_at_least_exact_under_light_load(loads in prop::collection::vec(
        (1i128..=630, 0i128..=400).prop_map(|(n, t)| ActorLoad::new(
            Rational::new(n, 2520), Rational::new(t, 2)).expect("valid")), 2..8)) {
        // For probabilities ≤ 1/4 the alternating inner series has strictly
        // decreasing terms, so the j=1 truncation upper-bounds the series.
        let second = waiting_time(&loads, Order::SECOND);
        let exact = waiting_time(&loads, Order::Exact);
        prop_assert!(
            second >= exact,
            "second {} < exact {}",
            second,
            exact
        );
    }
}

/// Strategy: one arbitrary journal decision event (all variants, all
/// outcome kinds, exact rational periods).
fn journal_event() -> impl Strategy<Value = runtime::DecisionEvent> {
    use runtime::{DecisionEvent, JournalOutcome};
    (
        0u64..5,
        0u64..8,
        0u64..64,
        0u64..8,
        (1i128..5000, 1i128..500),
    )
        .prop_map(|(kind, group, resident, other, (num, den))| {
            let period = Rational::new(num, den);
            match kind {
                0 => DecisionEvent::Admit {
                    group,
                    app_index: resident % 6,
                    required_throughput: Some(period.recip()),
                    outcome: JournalOutcome::Admitted {
                        resident,
                        predicted_period: period,
                    },
                    affinity: None,
                },
                1 => DecisionEvent::Admit {
                    group,
                    app_index: resident % 6,
                    required_throughput: None,
                    outcome: JournalOutcome::Rejected { violations: other },
                    affinity: None,
                },
                2 => DecisionEvent::Admit {
                    group,
                    app_index: resident % 6,
                    required_throughput: None,
                    outcome: JournalOutcome::Saturated,
                    affinity: None,
                },
                3 => DecisionEvent::Release { resident },
                _ => DecisionEvent::Rebalance {
                    resident,
                    from_group: group,
                    to_group: other,
                    predicted_period: period,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn journal_roundtrips_serde_for_arbitrary_decisions(
        events in prop::collection::vec(journal_event(), 0..40)
    ) {
        use runtime::{Journal, JournalHeader};
        // Individual events round-trip through the serde value model.
        for event in &events {
            let json = serde_json::to_string(event)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let back: runtime::DecisionEvent = serde_json::from_str(&json)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&back, event);
        }
        // Whole journals round-trip through render/parse with checksums
        // and sequence numbers intact.
        let journal = Journal::new(JournalHeader::default());
        for event in &events {
            journal.append(event.clone());
        }
        let parsed = Journal::parse(&journal.render())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(parsed.events(), events);
        prop_assert_eq!(parsed.entries(), journal.entries());
    }
}

proptest! {
    // Each case drives real admissions (milliseconds apiece), so keep the
    // case count small; the op streams still cover admit/release/rebalance
    // interleavings across varying fleet shapes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fleet_invariants_hold_under_arbitrary_op_streams(
        groups in 2usize..5,
        capacity in 1usize..4,
        ops in prop::collection::vec((0u64..100, 0usize..6), 1..25)
    ) {
        use platform::Application;
        use runtime::{FleetConfig, FleetManager, RoutingPolicy};
        use sdf::figure2_graphs;

        let (a, b) = figure2_graphs();
        let spec = platform::SystemSpec::builder()
            .application(Application::new("A", a).expect("valid"))
            .application(Application::new("B", b).expect("valid"))
            .mapping(platform::Mapping::by_actor_index(3))
            .build()
            .expect("valid spec");
        let fleet = FleetManager::new(
            spec,
            FleetConfig::uniform(groups, 1, capacity, RoutingPolicy::LeastUtilised),
        )
        .expect("valid fleet");

        let mut tickets = Vec::new();
        for &(roll, pick) in &ops {
            if roll < 50 {
                let contract = if roll % 2 == 0 {
                    Some(Rational::new(1, 500))
                } else {
                    None
                };
                if let Ok(admission) = fleet.admit(pick % 2, contract, None) {
                    if let Some(ticket) = admission.ticket() {
                        tickets.push(ticket);
                    }
                }
            } else if roll < 80 {
                if !tickets.is_empty() {
                    tickets.remove(pick % tickets.len()).release();
                }
            } else {
                fleet.rebalance();
            }

            // Invariant: the sum of per-group residents equals the fleet's
            // resident count...
            let per_group: usize = (0..groups)
                .map(|g| fleet.resident_count_of(g).expect("valid group"))
                .sum();
            prop_assert_eq!(per_group, fleet.resident_count());
            // ... and no group — rebalancing included — ever exceeds its
            // capacity.
            for g in 0..groups {
                prop_assert!(
                    fleet.resident_count_of(g).expect("valid group")
                        <= fleet.capacity_of(g).expect("valid group"),
                    "group {} over capacity", g
                );
            }
        }

        // Dropping every ticket drains the fleet and balances the books.
        drop(tickets);
        prop_assert_eq!(fleet.resident_count(), 0);
        let snapshot = fleet.snapshot();
        prop_assert_eq!(snapshot.admitted, snapshot.released);
        // Journal length equals total decisions made.
        let decisions = snapshot.admitted + snapshot.rejected + snapshot.saturated
            + snapshot.released + snapshot.rebalances;
        prop_assert_eq!(fleet.journal().len() as u64, decisions);
        fleet.journal().verify().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}

/// Strategy: one spec-relative admission request (mixed contracts,
/// affinities and explicit targets, like real front-end traffic).
fn admission_request(groups: usize) -> impl Strategy<Value = runtime::AdmissionRequest> {
    use runtime::AdmissionRequest;
    (0usize..4, 0u64..4, 0usize..groups.max(1)).prop_map(move |(app_index, kind, target)| {
        let request = AdmissionRequest::new(app_index);
        match kind {
            0 => request.with_contract(Rational::new(1, 500)),
            1 => request.with_affinity(format!("uc{}", app_index % groups.max(1))),
            2 => request.on(target),
            _ => request,
        }
    })
}

proptest! {
    // Each case drives real admissions; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The middleware-composition satellite: `Cached<Journaled<S>>` and
    // `Journaled<Cached<S>>` produce identical decisions against the bare
    // service, identical journals between each other, and the same holds
    // when the stream is submitted concurrently (queued in bulk through a
    // single-worker `FrontEnd`, which drains the MPSC queue in submission
    // order — so the decision sequence stays comparable).
    #[test]
    fn middleware_composes_in_either_order_with_equivalent_decisions(
        groups in 1usize..4,
        capacity in 1usize..4,
        requests in prop::collection::vec(admission_request(3), 1..20)
    ) {
        use platform::Application;
        use runtime::{
            AdmissionService, Cached, Completion, FleetConfig, FleetManager, FrontEnd,
            FrontEndConfig, Journaled, RoutingPolicy,
        };
        use sdf::figure2_graphs;

        let spec = || {
            let (a, b) = figure2_graphs();
            platform::SystemSpec::builder()
                .application(Application::new("A", a).expect("valid"))
                .application(Application::new("B", b).expect("valid"))
                .mapping(platform::Mapping::by_actor_index(3))
                .build()
                .expect("valid spec")
        };
        let fleet = |spec| FleetManager::new(
            spec,
            FleetConfig::uniform(groups, 1, capacity, RoutingPolicy::Affinity),
        ).expect("valid fleet");
        // Targets beyond the group count are domain errors on every stack
        // alike; keep the streams to valid domains so decisions compare.
        let requests: Vec<runtime::AdmissionRequest> = requests
            .into_iter()
            .map(|mut r| {
                r.target = r.target.map(|t| t % groups);
                r
            })
            .collect();

        let bare = fleet(spec());
        let cached_outer = Cached::new(Journaled::new(fleet(spec())), 8);
        let journaled_outer = Journaled::new(Cached::new(fleet(spec()), 8));

        // Sequential application: identical decision for every request.
        for request in &requests {
            let expected = AdmissionService::admit(&bare, request).unwrap();
            prop_assert_eq!(&cached_outer.admit(request).unwrap(), &expected);
            prop_assert_eq!(&journaled_outer.admit(request).unwrap(), &expected);
        }
        // Both Journaled layers recorded the identical decision stream.
        prop_assert_eq!(
            cached_outer.inner().journal().events(),
            journaled_outer.journal().events()
        );
        cached_outer.inner().journal().verify()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Concurrent submission: queue the whole stream through a
        // single-worker front-end per stack, then reap. Submission order ==
        // processing order, so the decision sequences still match the bare
        // sequential run exactly.
        let bare2 = fleet(spec());
        let expected: Vec<_> = requests
            .iter()
            .map(|r| AdmissionService::admit(&bare2, r).unwrap())
            .collect();
        for stack in [
            Box::new(Cached::new(Journaled::new(fleet(spec())), 8))
                as Box<dyn AdmissionService>,
            Box::new(Journaled::new(Cached::new(fleet(spec()), 8))),
        ] {
            let front = FrontEnd::new(stack, FrontEndConfig {
                workers: 1,
                queue_capacity: requests.len(),
            });
            let completions: Vec<Completion> = requests
                .iter()
                .map(|r| front.submit(r.clone()))
                .collect();
            for (completion, expected) in completions.iter().zip(&expected) {
                prop_assert_eq!(&completion.wait().unwrap(), expected);
            }
            front.shutdown();
        }
    }
}

proptest! {
    // Each case records and then counterfactually replays real admissions;
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The planner ≡ replayer anchor: for the IDENTICAL shape, a plan run
    // over any recorded journal reports zero flips — whatever the fleet
    // shape, routing policy or request mix was. (The replayer additionally
    // verifies exact periods; the planner's claim is outcome classes and
    // routing, which is what flips measure.)
    #[test]
    fn planner_identity_shape_never_flips(
        seed in 0u64..1_000,
        groups in 1usize..4,
        capacity in 1usize..4,
        policy_pick in 0u8..3,
        count in 20usize..70,
    ) {
        use platform::Application;
        use runtime::{
            run_fleet_requests, seeded_fleet_requests, FleetConfig, FleetManager, FleetShape,
            PlanRun, RoutingPolicy,
        };
        use sdf::figure2_graphs;

        let (a, b) = figure2_graphs();
        let spec = platform::SystemSpec::builder()
            .application(Application::new("A", a).expect("valid"))
            .application(Application::new("B", b).expect("valid"))
            .mapping(platform::Mapping::by_actor_index(3))
            .build()
            .expect("valid spec");
        let policy = [
            RoutingPolicy::LeastUtilised,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::Affinity,
        ][policy_pick as usize];
        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(groups, 1, capacity, policy),
        )
        .expect("valid fleet");
        // Single-threaded seeded run: admits (with contracts/affinities),
        // releases, rebalances — all journaled deterministically.
        run_fleet_requests(&fleet, seeded_fleet_requests(&spec, groups, count, seed), 1);

        let shape = FleetShape::from_header(fleet.journal().header());
        let report = PlanRun::new(&spec, fleet.journal(), &shape)
            .execute()
            .expect("plans");
        prop_assert_eq!(&report.flips, &vec![], "identity must not flip");
        prop_assert_eq!(report.recorded, report.hypothetical);
        prop_assert_eq!(report.events, fleet.journal().len());
        prop_assert_eq!(report.releases_skipped, 0);
        prop_assert_eq!(report.untracked_admissions, 0);
        // The counterfactual fleet ends in the recording's final state.
        prop_assert_eq!(report.residents_at_end, fleet.resident_count());
    }

    // Split/merge is lossless for any interleaving of client scopes: the
    // merged journal reproduces the original event order and attribution.
    #[test]
    fn journal_split_merge_roundtrip(pattern in prop::collection::vec(0u8..4, 1..40)) {
        use runtime::{ClientScope, DecisionEvent, Journal, JournalHeader};

        let journal = Journal::new(JournalHeader::default());
        for (i, &pick) in pattern.iter().enumerate() {
            let _scope = match pick {
                0 => Some(ClientScope::enter("alpha")),
                1 => Some(ClientScope::enter("beta")),
                2 => Some(ClientScope::enter("gamma")),
                _ => None,
            };
            journal.append(DecisionEvent::Release { resident: i as u64 });
        }
        let parts = journal
            .split_by_client()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut sizes = 0usize;
        for (_, part) in &parts {
            part.verify().map_err(|e| TestCaseError::fail(e.to_string()))?;
            sizes += part.len();
        }
        prop_assert_eq!(sizes, journal.len());
        // Fold the parts back together pairwise.
        let mut merged = Journal::parse(&parts[0].1.render())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (_, part) in &parts[1..] {
            merged = Journal::merge(&merged, part)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        merged.verify().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(merged.events(), journal.events());
        let clients = |j: &Journal| -> Vec<Option<String>> {
            j.entries().iter().map(|e| e.client.clone()).collect()
        };
        prop_assert_eq!(clients(&merged), clients(&journal));
    }

    // The same losslessness holds when the recording lives in a segmented
    // WAL: tiny segments force rotation every three appends, so the
    // per-client split and the pairwise re-merge both cross segment
    // boundaries — and a reopen from disk sees the identical journal.
    #[test]
    fn wal_journal_split_merge_roundtrip(pattern in prop::collection::vec(0u8..4, 1..40)) {
        use runtime::{ClientScope, DecisionEvent, FsyncPolicy, Journal, JournalHeader, WalConfig};

        let config = WalConfig {
            segment_max_entries: 3,
            fsync: FsyncPolicy::OnRotate,
            tail_entries: 4,
            keep_snapshots: 1,
        };
        let dir = std::env::temp_dir().join(format!(
            "probcon-prop-wal-{}-{}",
            std::process::id(),
            pattern.iter().map(u8::to_string).collect::<String>(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = Journal::create_wal(&dir, JournalHeader::default(), config)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (i, &pick) in pattern.iter().enumerate() {
            let _scope = match pick {
                0 => Some(ClientScope::enter("alpha")),
                1 => Some(ClientScope::enter("beta")),
                2 => Some(ClientScope::enter("gamma")),
                _ => None,
            };
            journal.append(DecisionEvent::Release { resident: i as u64 });
        }
        journal.sync().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(journal.io_errors(), 0);
        drop(journal);

        let (journal, recovery) = Journal::open_wal(&dir, config)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(recovery.truncated_bytes, 0);
        // Rotation fires on the third append: the active segment holds
        // the remainder.
        prop_assert_eq!(recovery.recovered_entries as usize, pattern.len() % 3);
        prop_assert_eq!(journal.len(), pattern.len());
        journal.verify().map_err(|e| TestCaseError::fail(e.to_string()))?;

        let parts = journal
            .split_by_client()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut merged = Journal::parse(&parts[0].1.render())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (_, part) in &parts[1..] {
            merged = Journal::merge(&merged, part)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        merged.verify().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(merged.events(), journal.events());
        let clients = |j: &Journal| -> Vec<Option<String>> {
            j.entries().iter().map(|e| e.client.clone()).collect()
        };
        prop_assert_eq!(clients(&merged), clients(&journal));
        // (Render equality is NOT expected: split stamps each entry's
        // origin_seq provenance and merge preserves it.)
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    // The autoscaler's hysteresis contract: under constant load — the
    // same observation every tick — the controller never flaps. Whatever
    // the band, streak thresholds and cooldown, (a) two actions are
    // always separated by strictly more than `cooldown` ticks, and
    // (b) every action fired points the same direction (a constant
    // breach can only ever argue for one of grow/shrink).
    #[test]
    fn autoscaler_never_flaps_within_one_cooldown_under_constant_load(
        utilisation_millis in 0u64..=1000,
        low_millis in 0u64..=1000,
        band_millis in 0u64..=1000,
        grow_after in 1u32..5,
        shrink_after in 1u32..5,
        cooldown in 0u32..10,
        step in 1u64..4,
    ) {
        use runtime::{
            evaluate, ControllerState, GroupObservation, Observation, ScaleAction, TargetPolicy,
        };

        let policy = TargetPolicy {
            low: low_millis as f64 / 1000.0,
            high: (low_millis + band_millis).min(1000) as f64 / 1000.0,
            grow_after,
            shrink_after,
            cooldown,
            min_capacity_per_shard: 1,
            max_capacity_per_shard: 32,
            step,
            add_group_at_max: true,
            drain_at_min: true,
        }
        .normalized();
        // Constant load: the controller sees the identical sample every
        // tick (capacity 8 sits strictly between the bounds, so both a
        // grow and a shrink are always *available* — only hysteresis
        // stands between the controller and flapping).
        let observation = Observation {
            groups: vec![
                GroupObservation {
                    group: 0,
                    residents: 4,
                    capacity: 8,
                    capacity_per_shard: 8,
                    shards: 1,
                    retired: false,
                },
                GroupObservation {
                    group: 1,
                    residents: 4,
                    capacity: 8,
                    capacity_per_shard: 8,
                    shards: 1,
                    retired: false,
                },
            ],
            utilisation: utilisation_millis as f64 / 1000.0,
        };

        let mut state = ControllerState::default();
        let mut fired: Vec<(u32, bool)> = Vec::new();
        for tick in 0..64u32 {
            if let Some(action) = evaluate(&policy, &observation, &mut state) {
                let is_grow = matches!(
                    action,
                    ScaleAction::Grow { .. } | ScaleAction::AddGroup { .. }
                );
                fired.push((tick, is_grow));
                state.acted(policy.cooldown);
            }
        }

        for pair in fired.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            prop_assert!(
                next.0 - prev.0 > policy.cooldown,
                "actions at ticks {} and {} violate cooldown {}",
                prev.0,
                next.0,
                policy.cooldown,
            );
            prop_assert_eq!(
                prev.1,
                next.1,
                "constant load flapped: {} then {}",
                if prev.1 { "grow" } else { "shrink" },
                if next.1 { "grow" } else { "shrink" },
            );
        }
    }
}

#[test]
fn use_case_roundtrip_mask() {
    use platform::{AppId, UseCase};
    for mask in 1u64..512 {
        let uc = UseCase::from_mask(mask);
        let rebuilt = UseCase::of(&uc.app_ids().collect::<Vec<AppId>>());
        assert_eq!(uc, rebuilt);
        assert_eq!(uc.len(), mask.count_ones() as usize);
    }
}
