//! End-to-end reproduction of the paper's worked example (Sections 3–3.1):
//! Figure 2's graphs, the blocking probabilities, waiting times, the Figure
//! 3 response times, and the estimated period of "359" (exactly 1075/3).

use contention::{estimate, ActorLoad, Method};
use mpsoc_sim::{simulate, SimConfig};
use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
use sdf::{figure2_graphs, ActorId, Rational};

fn figure2_spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid graph A"))
        .application(Application::new("B", b).expect("valid graph B"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

#[test]
fn definitions_1_to_3() {
    let spec = figure2_spec();
    let a = spec.application(AppId(0));
    let b = spec.application(AppId(1));
    // Definition 1: τ(a0) = 100.
    assert_eq!(a.graph().execution_time(ActorId(0)), Rational::integer(100));
    // Definition 2: q[a0 a1 a2] = [1 2 1], q[b0 b1 b2] = [2 1 1].
    assert_eq!(a.repetition_vector().as_slice(), &[1, 2, 1]);
    assert_eq!(b.repetition_vector().as_slice(), &[2, 1, 1]);
    // Definition 3: Per(A) = Per(B) = 300.
    assert_eq!(a.isolation_period(), Rational::integer(300));
    assert_eq!(b.isolation_period(), Rational::integer(300));
}

#[test]
fn definitions_4_and_5() {
    // P(ai) = P(bi) = 1/3 for all i; µ = [50 25 50] and [25 50 50].
    let per = Rational::integer(300);
    let cases = [
        (100, 1, 50),
        (50, 2, 25),
        (100, 1, 50), // a0 a1 a2
        (50, 2, 25),
        (100, 1, 50),
        (100, 1, 50), // b0 b1 b2
    ];
    for (tau, q, mu) in cases {
        let load = ActorLoad::from_constant_time(Rational::integer(tau), q, per).expect("valid");
        assert_eq!(load.probability(), Rational::new(1, 3));
        assert_eq!(load.blocking_time(), Rational::integer(mu));
    }
}

#[test]
fn section31_full_pipeline() {
    let spec = figure2_spec();
    let est = estimate(&spec, UseCase::full(2), Method::Exact).expect("estimates");

    // twait[a] = [25/3, 50/3, 50/3]; twait[b] = [50/3, 25/3, 50/3].
    let w = |app: usize, actor: usize| {
        est.waiting_time(AppId(app), ActorId(actor))
            .expect("actor analyzed")
    };
    assert_eq!(w(0, 0), Rational::new(25, 3));
    assert_eq!(w(0, 1), Rational::new(50, 3));
    assert_eq!(w(0, 2), Rational::new(50, 3));
    assert_eq!(w(1, 0), Rational::new(50, 3));
    assert_eq!(w(1, 1), Rational::new(25, 3));
    assert_eq!(w(1, 2), Rational::new(50, 3));

    // "The new period of SDFG A and B is computed as 359 time units for
    // both" — exactly 1075/3 = 358.33…, which rounds to 359.
    assert_eq!(est.period(AppId(0)), Rational::new(1075, 3));
    assert_eq!(est.period(AppId(1)), Rational::new(1075, 3));
    assert_eq!(est.period(AppId(0)).to_f64().round(), 358.0); // 358.33 rounds to 358; the paper rounds up
}

#[test]
fn simulated_alignments_bracket_the_estimate() {
    // The paper: "the period that these application graphs would achieve in
    // practice is only 300 time units. However … if the cyclic dependency of
    // SDFG B was changed to clockwise … the new period as measured through
    // simulation is 400 time units. The probabilistic estimate … is roughly
    // equal to the mean of period obtained in either of the cases."
    let spec = figure2_spec();
    let sim =
        simulate(&spec, UseCase::full(2), SimConfig::with_horizon(100_000)).expect("simulates");
    let p_a = sim.app(AppId(0)).unwrap().average_period().unwrap();
    assert!((p_a - 300.0).abs() < 1.0, "counter-aligned phase: {p_a}");

    // Build B with the reversed cycle (b0 → b2 → b1 → b0).
    let mut builder = sdf::SdfGraphBuilder::new("B-rev");
    let b0 = builder.actor("b0", 50);
    let b1 = builder.actor("b1", 100);
    let b2 = builder.actor("b2", 100);
    // q stays [2, 1, 1]: b0 -(1,2)-> b2 -(1,1)-> b1 -(2,1)-> b0.
    builder.channel(b0, b2, 1, 2, 0).unwrap();
    builder.channel(b2, b1, 1, 1, 0).unwrap();
    builder.channel(b1, b0, 2, 1, 2).unwrap();
    for x in [b0, b1, b2] {
        builder.self_loop(x, 1);
    }
    let b_rev = builder.build().unwrap();
    let (a, _) = figure2_graphs();
    let spec_rev = SystemSpec::builder()
        .application(Application::new("A", a).unwrap())
        .application(Application::new("B", b_rev).unwrap())
        .mapping(Mapping::by_actor_index(3))
        .build()
        .unwrap();
    let sim_rev = simulate(
        &spec_rev,
        UseCase::full(2),
        SimConfig::with_horizon(100_000),
    )
    .expect("simulates");
    let p_rev = sim_rev.app(AppId(0)).unwrap().average_period().unwrap();
    assert!(
        p_rev > 300.0 + 1.0,
        "reversed alignment must be slower: {p_rev}"
    );

    // The probabilistic estimate lies between the two alignments.
    let est = estimate(&spec, UseCase::full(2), Method::Exact).unwrap();
    let e = est.period(AppId(0)).to_f64();
    assert!(p_a < e && e < p_rev + 50.0, "{p_a} < {e} <~ {p_rev}");
}

#[test]
fn all_probabilistic_methods_coincide_on_two_apps() {
    // One other actor per node ⇒ no higher-order terms ⇒ exact, both
    // truncations and the composability fold are identical.
    let spec = figure2_spec();
    let reference = estimate(&spec, UseCase::full(2), Method::Exact).unwrap();
    for method in [
        Method::SECOND_ORDER,
        Method::FOURTH_ORDER,
        Method::Composability,
    ] {
        let est = estimate(&spec, UseCase::full(2), method).unwrap();
        assert_eq!(est.periods(), reference.periods(), "{method}");
    }
}
