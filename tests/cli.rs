//! Integration tests of the `probcon` command-line binary.

use std::process::Command;

fn probcon(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_probcon"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage() {
    let out = probcon(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("estimate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = probcon(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn generate_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let json = dir.join("g.json");
    let dot = dir.join("g.dot");

    let out = probcon(&[
        "generate",
        "--seed",
        "7",
        "--out",
        json.to_str().expect("utf8 path"),
        "--dot",
        dot.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{:?}", out);
    assert!(json.exists() && dot.exists());
    assert!(std::fs::read_to_string(&dot)
        .expect("dot written")
        .starts_with("digraph"));

    let out = probcon(&["analyze", json.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("repetition vector"));
    assert!(stdout.contains("period"));
    assert!(stdout.contains("buffer tokens"));
}

#[test]
fn estimate_and_simulate_agree_roughly() {
    let est = probcon(&[
        "estimate",
        "--seed",
        "2007",
        "--apps",
        "2",
        "--use-case",
        "3",
    ]);
    assert!(est.status.success(), "{:?}", est);
    let sim = probcon(&[
        "simulate",
        "--seed",
        "2007",
        "--apps",
        "2",
        "--use-case",
        "3",
        "--horizon",
        "50000",
    ]);
    assert!(sim.status.success(), "{:?}", sim);
    let est_out = String::from_utf8_lossy(&est.stdout);
    let sim_out = String::from_utf8_lossy(&sim.stdout);
    assert!(est_out.contains("use-case {0,1}"));
    assert!(sim_out.contains("iterations"));
}

#[test]
fn estimate_validates_inputs() {
    for bad in [
        vec!["estimate", "--seed", "1", "--apps", "0", "--use-case", "1"],
        vec!["estimate", "--seed", "1", "--apps", "2", "--use-case", "0"],
        vec!["estimate", "--seed", "1", "--apps", "2", "--use-case", "9"],
        vec!["estimate", "--seed", "x", "--apps", "2", "--use-case", "1"],
        vec![
            "estimate",
            "--seed",
            "1",
            "--apps",
            "2",
            "--use-case",
            "1",
            "--method",
            "bogus",
        ],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn serve_bench_prints_metrics_table() {
    let out = probcon(&[
        "serve-bench",
        "--threads",
        "2",
        "--requests",
        "150",
        "--apps",
        "3",
        "--actors",
        "4",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "serve-bench",
        "req/s",
        "admit",
        "p95",
        "admitted",
        "rejected",
        "estimate cache",
        "hit rate",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

#[test]
fn serve_bench_front_end_reports_queue_metrics() {
    let out = probcon(&[
        "serve-bench",
        "--threads",
        "4",
        "--requests",
        "120",
        "--apps",
        "3",
        "--actors",
        "4",
        "--front-end",
        "2",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "front-end with 2 workers",
        "front-end",
        "queue_depth",
        "submitted",
        "completed",
        "cached",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

#[test]
fn fleet_bench_warm_cache_reports_warm_vs_cold_hit_rates() {
    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "120",
        "--apps",
        "3",
        "--actors",
        "4",
        "--groups",
        "2",
        "--warm-cache",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "warmed 7 estimates",
        "hit rate warm",
        "cold baseline",
        "cached",
        "metered",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    // Warming covers every estimate in the stream: zero cache misses.
    assert!(
        stdout.contains("100.0% hit rate warm"),
        "warmed run must serve all estimate traffic from the cache:\n{stdout}"
    );
    // Too many apps would enumerate 2^n - 1 use-cases; refused.
    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "10",
        "--apps",
        "13",
        "--warm-cache",
    ]);
    assert!(!out.status.success(), "{:?}", out);
}

#[test]
fn serve_bench_validates_inputs() {
    for bad in [
        vec!["serve-bench", "--threads", "0", "--requests", "10"],
        vec!["serve-bench", "--threads", "2", "--requests", "0"],
        vec!["serve-bench", "--threads", "2"],
        vec!["serve-bench", "--requests", "10"],
        vec![
            "serve-bench",
            "--threads",
            "2",
            "--requests",
            "10",
            "--apps",
            "0",
        ],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn fleet_bench_records_journal_and_replay_verifies_it() {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let journal = dir.join("fleet.jsonl");

    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "150",
        "--apps",
        "3",
        "--actors",
        "4",
        "--groups",
        "3",
        "--capacity",
        "2",
        "--policy",
        "affinity",
        "--journal",
        journal.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "fleet-bench",
        "affinity routing",
        "req/s",
        "journal entries",
        "group0",
        "admitted",
        "rebalances",
        "wrote",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    assert!(journal.exists());

    // The recorded journal must replay outcome-for-outcome equivalent.
    let out = probcon(&["replay", journal.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EQUIVALENT"), "{stdout}");
    assert!(stdout.contains("0 diverged"), "{stdout}");

    // A tampered journal must fail the checksum and exit non-zero.
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let corrupted = dir.join("fleet-corrupt.jsonl");
    std::fs::write(&corrupted, text.replace("Admitted", "admitteD")).expect("written");
    let out = probcon(&["replay", corrupted.to_str().expect("utf8 path")]);
    assert!(!out.status.success(), "tampered journal must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum"), "{stderr}");
}

#[test]
fn fleet_bench_and_replay_validate_inputs() {
    for bad in [
        vec!["fleet-bench"],
        vec!["fleet-bench", "--requests", "0"],
        vec!["fleet-bench", "--requests", "10", "--threads", "0"],
        vec!["fleet-bench", "--requests", "10", "--apps", "0"],
        vec!["fleet-bench", "--requests", "10", "--groups", "0"],
        vec!["fleet-bench", "--requests", "10", "--policy", "bogus"],
        vec!["replay"],
        vec!["replay", "/nonexistent/journal.jsonl"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn analyze_rejects_garbage_file() {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").expect("written");
    let out = probcon(&["analyze", bad.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
}

#[cfg(unix)]
#[test]
fn serve_connect_journal_replay_roundtrip_over_uds() {
    // The full remote loop in one test: a `probcon serve --once` process
    // on a Unix domain socket, a `fleet-bench --connect` run against it
    // that fetches the server-side journal over the wire, and a
    // `probcon replay` verifying the fetched journal outcome-for-outcome.
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let socket = dir.join(format!("serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let journal = dir.join(format!("remote-{}.jsonl", std::process::id()));
    let listen = format!("unix:{}", socket.display());

    let mut server = Command::new(env!("CARGO_BIN_EXE_probcon"))
        .args([
            "serve", "--listen", &listen, "--once", "--apps", "3", "--actors", "4", "--groups", "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    // Wait for the socket to appear (the server binds before accepting).
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "server never bound {}", socket.display());

    let out = probcon(&[
        "fleet-bench",
        "--connect",
        &listen,
        "--requests",
        "200",
        "--journal",
        journal.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "remote domains",
        "req/s",
        "remote",
        "fleet",
        "metered",
        "fetched",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }

    // --once: the server exits by itself after the client disconnects.
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");

    // The journal recorded in the *server* process replays equivalently
    // in this one.
    let out = probcon(&["replay", journal.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EQUIVALENT"), "{stdout}");
    assert!(stdout.contains("0 diverged"), "{stdout}");
}

#[test]
fn fleet_bench_connect_rejects_local_fleet_flags_and_dead_endpoints() {
    for bad in [
        vec![
            "fleet-bench",
            "--connect",
            "unix:/tmp/x.sock",
            "--requests",
            "10",
            "--groups",
            "2",
        ],
        vec![
            "fleet-bench",
            "--connect",
            "unix:/tmp/x.sock",
            "--requests",
            "10",
            "--warm-cache",
        ],
        vec![
            "fleet-bench",
            "--connect",
            "bogus-address",
            "--requests",
            "10",
        ],
        // Nothing listening: a typed connect error, not a hang.
        vec![
            "fleet-bench",
            "--connect",
            "tcp:127.0.0.1:1",
            "--requests",
            "10",
        ],
        vec!["serve"],
        vec!["serve", "--listen", "bogus-address"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}
