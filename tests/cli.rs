//! Integration tests of the `probcon` command-line binary.

use std::process::Command;

fn probcon(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_probcon"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage() {
    let out = probcon(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("estimate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = probcon(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn generate_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let json = dir.join("g.json");
    let dot = dir.join("g.dot");

    let out = probcon(&[
        "generate",
        "--seed",
        "7",
        "--out",
        json.to_str().expect("utf8 path"),
        "--dot",
        dot.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{:?}", out);
    assert!(json.exists() && dot.exists());
    assert!(std::fs::read_to_string(&dot)
        .expect("dot written")
        .starts_with("digraph"));

    let out = probcon(&["analyze", json.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("repetition vector"));
    assert!(stdout.contains("period"));
    assert!(stdout.contains("buffer tokens"));
}

#[test]
fn estimate_and_simulate_agree_roughly() {
    let est = probcon(&[
        "estimate",
        "--seed",
        "2007",
        "--apps",
        "2",
        "--use-case",
        "3",
    ]);
    assert!(est.status.success(), "{:?}", est);
    let sim = probcon(&[
        "simulate",
        "--seed",
        "2007",
        "--apps",
        "2",
        "--use-case",
        "3",
        "--horizon",
        "50000",
    ]);
    assert!(sim.status.success(), "{:?}", sim);
    let est_out = String::from_utf8_lossy(&est.stdout);
    let sim_out = String::from_utf8_lossy(&sim.stdout);
    assert!(est_out.contains("use-case {0,1}"));
    assert!(sim_out.contains("iterations"));
}

#[test]
fn estimate_validates_inputs() {
    for bad in [
        vec!["estimate", "--seed", "1", "--apps", "0", "--use-case", "1"],
        vec!["estimate", "--seed", "1", "--apps", "2", "--use-case", "0"],
        vec!["estimate", "--seed", "1", "--apps", "2", "--use-case", "9"],
        vec!["estimate", "--seed", "x", "--apps", "2", "--use-case", "1"],
        vec![
            "estimate",
            "--seed",
            "1",
            "--apps",
            "2",
            "--use-case",
            "1",
            "--method",
            "bogus",
        ],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn serve_bench_prints_metrics_table() {
    let out = probcon(&[
        "serve-bench",
        "--threads",
        "2",
        "--requests",
        "150",
        "--apps",
        "3",
        "--actors",
        "4",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "serve-bench",
        "req/s",
        "admit",
        "p95",
        "admitted",
        "rejected",
        "estimate cache",
        "hit rate",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

#[test]
fn serve_bench_front_end_reports_queue_metrics() {
    let out = probcon(&[
        "serve-bench",
        "--threads",
        "4",
        "--requests",
        "120",
        "--apps",
        "3",
        "--actors",
        "4",
        "--front-end",
        "2",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "front-end with 2 workers",
        "front-end",
        "queue_depth",
        "submitted",
        "completed",
        "cached",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

#[test]
fn fleet_bench_warm_cache_reports_warm_vs_cold_hit_rates() {
    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "120",
        "--apps",
        "3",
        "--actors",
        "4",
        "--groups",
        "2",
        "--warm-cache",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "warmed 7 estimates",
        "hit rate warm",
        "cold baseline",
        "cached",
        "metered",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    // Warming covers every estimate in the stream: zero cache misses.
    assert!(
        stdout.contains("100.0% hit rate warm"),
        "warmed run must serve all estimate traffic from the cache:\n{stdout}"
    );
    // Too many apps would enumerate 2^n - 1 use-cases; refused.
    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "10",
        "--apps",
        "13",
        "--warm-cache",
    ]);
    assert!(!out.status.success(), "{:?}", out);
}

#[test]
fn serve_bench_validates_inputs() {
    for bad in [
        vec!["serve-bench", "--threads", "0", "--requests", "10"],
        vec!["serve-bench", "--threads", "2", "--requests", "0"],
        vec!["serve-bench", "--threads", "2"],
        vec!["serve-bench", "--requests", "10"],
        vec![
            "serve-bench",
            "--threads",
            "2",
            "--requests",
            "10",
            "--apps",
            "0",
        ],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn fleet_bench_records_journal_and_replay_verifies_it() {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let journal = dir.join("fleet.jsonl");

    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "150",
        "--apps",
        "3",
        "--actors",
        "4",
        "--groups",
        "3",
        "--capacity",
        "2",
        "--policy",
        "affinity",
        "--journal",
        journal.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "fleet-bench",
        "affinity routing",
        "req/s",
        "journal entries",
        "group0",
        "admitted",
        "rebalances",
        "wrote",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    assert!(journal.exists());

    // The recorded journal must replay outcome-for-outcome equivalent.
    let out = probcon(&["replay", journal.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EQUIVALENT"), "{stdout}");
    assert!(stdout.contains("0 diverged"), "{stdout}");

    // A tampered journal must fail the checksum and exit non-zero.
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let corrupted = dir.join("fleet-corrupt.jsonl");
    std::fs::write(&corrupted, text.replace("Admitted", "admitteD")).expect("written");
    let out = probcon(&["replay", corrupted.to_str().expect("utf8 path")]);
    assert!(!out.status.success(), "tampered journal must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum"), "{stderr}");
}

#[test]
fn fleet_bench_and_replay_validate_inputs() {
    for bad in [
        vec!["fleet-bench"],
        vec!["fleet-bench", "--requests", "0"],
        vec!["fleet-bench", "--requests", "10", "--threads", "0"],
        vec!["fleet-bench", "--requests", "10", "--apps", "0"],
        vec!["fleet-bench", "--requests", "10", "--groups", "0"],
        vec!["fleet-bench", "--requests", "10", "--policy", "bogus"],
        // --client announces an identity to a remote server; local runs
        // have no handshake to carry it.
        vec!["fleet-bench", "--requests", "10", "--client", "alpha"],
        // --wire and --connections shape the remote transport; without
        // --connect there is no wire to shape.
        vec!["fleet-bench", "--requests", "10", "--wire", "binary"],
        vec!["fleet-bench", "--requests", "10", "--connections", "4"],
        vec!["replay"],
        vec!["replay", "/nonexistent/journal.jsonl"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

/// Records the seeded fleet-bench journal the plan tests replay.
fn record_plan_journal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let journal = dir.join(name);
    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "150",
        "--apps",
        "3",
        "--actors",
        "4",
        "--groups",
        "2",
        "--capacity",
        "3",
        "--journal",
        journal.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");
    journal
}

#[test]
fn plan_identity_reports_zero_flips_and_halved_capacity_regresses() {
    let journal = record_plan_journal("plan.jsonl");
    let journal = journal.to_str().expect("utf8 path");

    // The recorded shape replays flip-free — and --fail-on-flips agrees.
    let out = probcon(&["plan", journal, "--fail-on-flips"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "0 flips",
        "recorded routing",
        "mean-util",
        "saturation windows",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }

    // Halving capacity turns served admissions away: at least one
    // admitted-now-rejected flip, reported per event.
    let out = probcon(&["plan", journal, "--capacity-scale", "0.5"]);
    assert!(out.status.success(), "flips are data, not failure: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("admitted-now-rejected") && !stdout.contains("(0 admitted-now-rejected"),
        "halved capacity must regress at least one admission:\n{stdout}"
    );
    assert!(stdout.contains("FLIP seq"), "{stdout}");

    // ... and --fail-on-flips makes that an exit-1 for CI gates.
    let out = probcon(&[
        "plan",
        journal,
        "--capacity-scale",
        "0.5",
        "--fail-on-flips",
    ]);
    assert!(!out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--fail-on-flips"), "{stderr}");

    // --json emits the machine-readable report.
    let out = probcon(&["plan", journal, "--json"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["\"flips\"", "\"shape\"", "\"mean_utilisation\""] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
}

#[test]
fn plan_sweep_runs_grid_in_parallel_and_prints_frontier() {
    let journal = record_plan_journal("plan-sweep.jsonl");
    let out = probcon(&[
        "plan",
        journal.to_str().expect("utf8 path"),
        "--sweep",
        "--groups",
        "1..3",
        "--capacity-scale",
        "0.5..1.5",
        "--scale-steps",
        "3",
        "--workers",
        "8",
        "--flip-budget",
        "2",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "on 8 workers",
        "frontier",
        "smallest clean",
        "verdict",
        "a->r",
        "regression budget 2",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }
    // The identity shape sits in the grid, so a clean shape always exists.
    assert!(!stdout.contains("no candidate shape"), "{stdout}");
}

#[test]
fn plan_validates_inputs() {
    let journal = record_plan_journal("plan-validate.jsonl");
    let journal = journal.to_str().expect("utf8 path");
    for bad in [
        vec!["plan"],
        vec!["plan", "/nonexistent/journal.jsonl"],
        vec!["plan", journal, "--groups", "0"],
        vec!["plan", journal, "--capacity-scale", "-1"],
        vec!["plan", journal, "--routing", "bogus"],
        vec!["plan", journal, "--policy", "bogus"],
        // Ranges and sweep-only flags need --sweep.
        vec!["plan", journal, "--groups", "1..3"],
        vec!["plan", journal, "--workers", "4"],
        vec!["plan", journal, "--sweep", "--workers", "0"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn replay_divergence_details_land_on_stderr_before_exit() {
    use probcon::runtime::{DecisionEvent, Journal, JournalHeader, JournalOutcome};
    use probcon::sdf::Rational;

    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("divergent.jsonl");

    // A journal claiming app 0 was admitted with a period of 1 — no real
    // replay can reproduce that, so seq 0 must diverge.
    let journal = Journal::new(JournalHeader {
        seed: 1,
        apps: 2,
        actors: 4,
        groups: 1,
        shards_per_group: 1,
        capacity_per_shard: 2,
        ..JournalHeader::default()
    });
    journal.append(DecisionEvent::Admit {
        group: 0,
        app_index: 0,
        required_throughput: None,
        outcome: JournalOutcome::Admitted {
            resident: 0,
            predicted_period: Rational::integer(1),
        },
        affinity: None,
    });
    journal.write_to(&path).expect("writes");

    let out = probcon(&["replay", path.to_str().expect("utf8 path")]);
    assert!(!out.status.success(), "divergence must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The details — sequence number, expected vs got — are on stderr, in
    // full, before the exit; and a decided divergence is not a usage
    // error, so the usage text stays off the output.
    assert!(
        stderr.contains("replay divergence at seq 0"),
        "missing seq detail in stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("expected `admitted period 1`"),
        "missing expected outcome in stderr:\n{stderr}"
    );
    assert!(stderr.contains("got `admitted period"), "{stderr}");
    assert!(
        stderr.contains("diverged from the recording in 1 of 1 decisions"),
        "{stderr}"
    );
    assert!(!stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn journal_split_and_merge_roundtrip_via_cli() {
    use probcon::platform::SystemSpec;
    use probcon::runtime::{ClientScope, FleetConfig, FleetManager, JournalHeader, RoutingPolicy};
    use probcon::sdf::GeneratorConfig;

    let dir = std::env::temp_dir().join("probcon-cli-test").join("split");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // A replayable two-client recording: real fleet traffic, with each
    // decision journaled under the thread's client scope — exactly what a
    // RemoteServer does per connection.
    let spec: SystemSpec =
        probcon::experiments::workload::workload_with(1, 2, &GeneratorConfig::with_actors(4))
            .expect("workload builds");
    let header = JournalHeader {
        seed: 1,
        apps: 2,
        actors: 4,
        ..JournalHeader::default()
    };
    let fleet = FleetManager::with_header(
        spec,
        FleetConfig::uniform(1, 1, 4, RoutingPolicy::LeastUtilised),
        header.clone(),
    )
    .expect("fleet builds");
    let t0 = {
        let _alpha = ClientScope::enter("alpha");
        fleet.admit(0, None, None).unwrap().ticket().unwrap()
    };
    let t1 = {
        let _beta = ClientScope::enter("beta");
        fleet.admit(1, None, None).unwrap().ticket().unwrap()
    };
    {
        let _alpha = ClientScope::enter("alpha");
        t0.release();
    }
    {
        let _beta = ClientScope::enter("beta");
        t1.release();
    }
    let recording = dir.join("two-clients.jsonl");
    fleet.journal().write_to(&recording).expect("writes");

    // Split: one valid journal per client.
    let out = probcon(&[
        "journal",
        "split",
        recording.to_str().expect("utf8 path"),
        "--out-dir",
        dir.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 client(s)"), "{stdout}");
    let alpha = dir.join("two-clients.client-alpha.jsonl");
    let beta = dir.join("two-clients.client-beta.jsonl");
    assert!(alpha.exists() && beta.exists(), "{stdout}");

    // Merge reconstructs the original interleaving...
    let merged = dir.join("merged.jsonl");
    let out = probcon(&[
        "journal",
        "merge",
        alpha.to_str().expect("utf8 path"),
        beta.to_str().expect("utf8 path"),
        "--out",
        merged.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");

    // ... which replays outcome-for-outcome equivalent.
    let out = probcon(&["replay", merged.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EQUIVALENT"), "{stdout}");

    // Incompatible headers refuse to merge, naming the difference.
    let other = probcon::runtime::Journal::new(JournalHeader { seed: 99, ..header });
    let other_path = dir.join("other-seed.jsonl");
    other.write_to(&other_path).expect("writes");
    let out = probcon(&[
        "journal",
        "merge",
        alpha.to_str().expect("utf8 path"),
        other_path.to_str().expect("utf8 path"),
        "--out",
        dir.join("nope.jsonl").to_str().expect("utf8 path"),
    ]);
    assert!(!out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("seed"), "{stderr}");

    // Subcommand validation.
    for bad in [
        vec!["journal"],
        vec!["journal", "frobnicate"],
        vec!["journal", "split"],
        vec!["journal", "merge", "a.jsonl"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn journal_split_sanitizes_hostile_client_ids() {
    use probcon::runtime::{ClientScope, DecisionEvent, Journal, JournalHeader};

    let dir = std::env::temp_dir()
        .join("probcon-cli-test")
        .join("split-hostile");
    let out_dir = dir.join("parts");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // Client ids are wire-supplied and untrusted: a path-traversal id must
    // not steer the split's write outside --out-dir, and two ids that
    // sanitize identically must not overwrite each other.
    let journal = Journal::new(JournalHeader::default());
    for client in ["../../escape", ".._.._escape", "ok-name"] {
        let _scope = ClientScope::enter(client);
        journal.append(DecisionEvent::Release { resident: 0 });
    }
    let recording = dir.join("hostile.jsonl");
    journal.write_to(&recording).expect("writes");

    let out = probcon(&[
        "journal",
        "split",
        recording.to_str().expect("utf8 path"),
        "--out-dir",
        out_dir.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");
    // Every split file landed inside --out-dir — nothing above it.
    let written: Vec<String> = std::fs::read_dir(&out_dir)
        .expect("out dir exists")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(written.len(), 3, "{written:?}");
    assert!(
        !dir.join("escape.jsonl").exists() && !dir.join("hostile.client-ok-name.jsonl").exists(),
        "no file may escape the out dir"
    );
    assert!(written.iter().any(|n| n.contains("ok-name")), "{written:?}");
    // The two hostile ids sanitize to the same stem; the collision gets a
    // numeric suffix instead of overwriting.
    assert!(
        written.iter().any(|n| n.ends_with("-2.jsonl")),
        "{written:?}"
    );
}

#[test]
fn analyze_rejects_garbage_file() {
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").expect("written");
    let out = probcon(&["analyze", bad.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
}

#[cfg(unix)]
#[test]
fn serve_connect_journal_replay_roundtrip_over_uds() {
    // The full remote loop in one test: a `probcon serve --once` process
    // on a Unix domain socket, a `fleet-bench --connect` run against it
    // that fetches the server-side journal over the wire, and a
    // `probcon replay` verifying the fetched journal outcome-for-outcome.
    let dir = std::env::temp_dir().join("probcon-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let socket = dir.join(format!("serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let journal = dir.join(format!("remote-{}.jsonl", std::process::id()));
    let listen = format!("unix:{}", socket.display());

    let mut server = Command::new(env!("CARGO_BIN_EXE_probcon"))
        .args([
            "serve", "--listen", &listen, "--once", "--apps", "3", "--actors", "4", "--groups", "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    // Wait for the socket to appear (the server binds before accepting).
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "server never bound {}", socket.display());

    let out = probcon(&[
        "fleet-bench",
        "--connect",
        &listen,
        "--requests",
        "200",
        "--journal",
        journal.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "remote domains",
        "req/s",
        "remote",
        "fleet",
        "metered",
        "fetched",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }

    // --once: the server exits by itself after the client disconnects.
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");

    // The journal recorded in the *server* process replays equivalently
    // in this one.
    let out = probcon(&["replay", journal.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EQUIVALENT"), "{stdout}");
    assert!(stdout.contains("0 diverged"), "{stdout}");
}

#[test]
fn fleet_bench_connect_rejects_local_fleet_flags_and_dead_endpoints() {
    for bad in [
        vec![
            "fleet-bench",
            "--connect",
            "unix:/tmp/x.sock",
            "--requests",
            "10",
            "--groups",
            "2",
        ],
        vec![
            "fleet-bench",
            "--connect",
            "unix:/tmp/x.sock",
            "--requests",
            "10",
            "--warm-cache",
        ],
        vec![
            "fleet-bench",
            "--connect",
            "bogus-address",
            "--requests",
            "10",
        ],
        // Nothing listening: a typed connect error, not a hang.
        vec![
            "fleet-bench",
            "--connect",
            "tcp:127.0.0.1:1",
            "--requests",
            "10",
        ],
        // An unknown wire mode fails before any connection is attempted.
        vec![
            "fleet-bench",
            "--connect",
            "unix:/tmp/x.sock",
            "--requests",
            "10",
            "--wire",
            "bogus",
        ],
        vec!["serve"],
        vec!["serve", "--listen", "bogus-address"],
        vec!["serve", "--listen", "tcp:127.0.0.1:0", "--wire", "bogus"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn fleet_bench_wal_dir_records_compacts_and_replays_identically() {
    let root = std::env::temp_dir().join(format!("probcon-cli-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("tmp dir");
    let wal = root.join("wal");
    let wal_str = wal.to_str().expect("utf8 path");

    // Record into a segmented WAL directory (tiny segments force rotation).
    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "200",
        "--apps",
        "3",
        "--actors",
        "4",
        "--groups",
        "3",
        "--capacity",
        "2",
        "--journal-dir",
        wal_str,
        "--segment-entries",
        "32",
        "--fsync",
        "on-rotate",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wal:"), "{stdout}");
    assert!(wal.join("MANIFEST.json").exists());

    // The per-group occupancy a replay ends in (name, residents, capacity,
    // util) — the invariant that must survive compaction. Cumulative
    // admitted/rejected counters legitimately reset when history folds
    // into a snapshot, so only the state columns are compared.
    let group_state = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.trim_start().starts_with("group") && !l.contains("capacity"))
            .map(|l| l.split_whitespace().take(4).collect::<Vec<_>>().join(" "))
            .collect()
    };

    // The WAL directory replays like any journal file.
    let out = probcon(&["replay", wal_str]);
    assert!(out.status.success(), "{out:?}");
    let before = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(before.contains("EQUIVALENT"), "{before}");
    assert!(!group_state(&before).is_empty(), "{before}");

    // ... and plans: the identity shape reports zero flips.
    let out = probcon(&["plan", wal_str, "--fail-on-flips"]);
    assert!(out.status.success(), "{out:?}");

    // Compaction shrinks the directory on disk.
    let dir_bytes = |p: &std::path::Path| -> u64 {
        std::fs::read_dir(p)
            .expect("readable")
            .map(|e| e.expect("entry").metadata().expect("meta").len())
            .sum()
    };
    let bytes_before = dir_bytes(&wal);
    let out = probcon(&["journal", "compact", wal_str]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compacted"), "{stdout}");
    let bytes_after = dir_bytes(&wal);
    assert!(
        bytes_after < bytes_before,
        "compaction must shrink: {bytes_before} -> {bytes_after}"
    );

    // Replay still verifies and lands the fleet in the SAME final per-group
    // occupancy as before compaction. (A fleet-bench run drains every
    // resident at end-of-run, so the folded snapshot is legitimately empty
    // of residents — snapshot *restore* with live residents is exercised by
    // the fleet_replay integration tests and the serve crash-recovery
    // smoke.)
    let out = probcon(&["replay", wal_str]);
    assert!(out.status.success(), "{out:?}");
    let after = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(after.contains("EQUIVALENT"), "{after}");
    assert_eq!(group_state(&before), group_state(&after));

    // The planner accepts the compacted WAL too: identity stays flip-free.
    let out = probcon(&["plan", wal_str, "--fail-on-flips"]);
    assert!(out.status.success(), "{out:?}");

    // fleet-bench records fresh runs: it refuses an existing WAL.
    let out = probcon(&["fleet-bench", "--requests", "10", "--journal-dir", wal_str]);
    assert!(
        !out.status.success(),
        "must refuse to clobber an existing WAL"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// `journal split`/`merge` read single-file journals only: handed a WAL
/// directory they fail FAST with the typed `IsWalDirectory` error, which
/// names the limitation and the `journal compact --out` workaround — and
/// the workaround actually works.
#[test]
fn journal_split_and_merge_fail_fast_on_wal_dirs_with_workaround() {
    let root = std::env::temp_dir().join(format!("probcon-cli-waldir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("tmp dir");
    let wal = root.join("wal");
    let wal_str = wal.to_str().expect("utf8 path");

    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "60",
        "--apps",
        "3",
        "--journal-dir",
        wal_str,
    ]);
    assert!(out.status.success(), "{out:?}");

    for args in [
        vec!["journal", "split", wal_str],
        vec!["journal", "merge", wal_str, wal_str, "--out", "/dev/null"],
    ] {
        let out = probcon(&args);
        assert!(!out.status.success(), "must refuse a WAL dir: {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("segmented WAL directory"),
            "error must name the limitation: {stderr}"
        );
        assert!(
            stderr.contains("journal compact") && stderr.contains("--out"),
            "error must name the workaround: {stderr}"
        );
    }

    // The workaround the error points at: compact --out renders the WAL
    // into a flat file that split/replay accept.
    let flat = root.join("flat.jsonl");
    let flat_str = flat.to_str().expect("utf8 path");
    let out = probcon(&[
        "journal", "compact", wal_str, "--keep", "2", "--out", flat_str,
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("snapshot(s) retained"), "{stdout}");
    assert!(stdout.contains("rendered"), "{stdout}");
    let out = probcon(&["replay", flat_str]);
    assert!(out.status.success(), "{out:?}");
    let out = probcon(&["journal", "split", flat_str]);
    assert!(out.status.success(), "{out:?}");

    let _ = std::fs::remove_dir_all(&root);
}

/// `fleet-bench --autoscale` runs the elastic controller against the
/// benched fleet; its resizes are journaled, so the recording replays
/// and plans cleanly afterwards.
#[test]
fn fleet_bench_autoscale_journals_resizes_and_replays() {
    let root = std::env::temp_dir().join(format!("probcon-cli-autoscale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("tmp dir");
    let policy = root.join("policy.json");
    // An eager policy so even a short bench provokes scaling.
    std::fs::write(
        &policy,
        "{\"Target\":{\"low\":0.05,\"high\":0.3,\"grow_after\":1,\"shrink_after\":1,\
         \"cooldown\":0,\"min_capacity_per_shard\":1,\"max_capacity_per_shard\":16,\
         \"step\":1,\"add_group_at_max\":false,\"drain_at_min\":false}}",
    )
    .expect("policy file");
    let journal = root.join("run.jsonl");

    let out = probcon(&[
        "fleet-bench",
        "--requests",
        "400",
        "--apps",
        "3",
        "--capacity",
        "2",
        "--autoscale",
        policy.to_str().expect("utf8 path"),
        "--autoscale-interval",
        "1",
        "--journal",
        journal.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("autoscaling with policy"), "{stdout}");
    assert!(stdout.contains("autoscaler["), "{stdout}");

    // Whatever the controller did, the recording replays exactly and the
    // identity shape stays flip-free.
    let out = probcon(&["replay", journal.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{out:?}");
    let out = probcon(&[
        "plan",
        journal.to_str().expect("utf8 path"),
        "--fail-on-flips",
    ]);
    assert!(out.status.success(), "{out:?}");

    let _ = std::fs::remove_dir_all(&root);
}

/// `plan --policy-file` evaluates a scaling policy offline against a
/// recorded journal and reports the decision timeline.
#[test]
fn plan_policy_file_reports_the_policy_decision_timeline() {
    let journal = record_plan_journal("policy-eval");
    let journal = journal.to_str().expect("utf8 path");
    let root = std::env::temp_dir().join(format!("probcon-cli-planpol-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("tmp dir");
    let policy = root.join("policy.json");
    std::fs::write(
        &policy,
        "{\"Target\":{\"low\":0.05,\"high\":0.25,\"grow_after\":1,\"shrink_after\":4,\
         \"cooldown\":2,\"min_capacity_per_shard\":1,\"max_capacity_per_shard\":16,\
         \"step\":1,\"add_group_at_max\":false,\"drain_at_min\":false}}",
    )
    .expect("policy file");
    let policy = policy.to_str().expect("utf8 path");

    let out = probcon(&[
        "plan",
        journal,
        "--policy-file",
        policy,
        "--policy-every",
        "4",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("policy under evaluation"), "{stdout}");

    // Guard rails: no sweep combo, no orphan --policy-every, no garbage.
    for bad in [
        vec!["plan", journal, "--policy-file", policy, "--sweep"],
        vec!["plan", journal, "--policy-every", "4"],
        vec!["plan", journal, "--policy-file", "/nonexistent/policy.json"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn autoscale_flags_validate_inputs() {
    for bad in [
        // --autoscale-interval needs --autoscale; --autoscale is local-only.
        vec![
            "fleet-bench",
            "--requests",
            "10",
            "--autoscale-interval",
            "5",
        ],
        vec![
            "fleet-bench",
            "--requests",
            "10",
            "--connect",
            "tcp:127.0.0.1:1",
            "--autoscale",
            "/nonexistent/policy.json",
        ],
        vec![
            "fleet-bench",
            "--requests",
            "10",
            "--autoscale",
            "/nonexistent/policy.json",
        ],
        vec![
            "serve",
            "--listen",
            "tcp:127.0.0.1:0",
            "--autoscale-interval",
            "5",
        ],
        // journal compact --keep must be positive.
        vec!["journal", "compact", "/tmp", "--keep", "0"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}

#[test]
fn wal_flags_validate_inputs() {
    for bad in [
        // WAL tuning flags need --journal-dir.
        vec!["fleet-bench", "--requests", "10", "--fsync", "always"],
        vec!["fleet-bench", "--requests", "10", "--segment-entries", "64"],
        vec![
            "serve",
            "--listen",
            "tcp:127.0.0.1:0",
            "--checkpoint-every",
            "100",
        ],
        // ... and valid values.
        vec!["journal", "compact"],
        vec!["journal", "compact", "/nonexistent/wal-dir"],
    ] {
        let out = probcon(&bad);
        assert!(!out.status.success(), "should reject: {bad:?}");
    }
}
