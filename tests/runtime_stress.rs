//! Multi-threaded stress tests of the `runtime` subsystem: N client
//! threads × M mixed operations against a shared `ResourceManager` and
//! `EstimateCache`, with invariants checked throughout and a watchdog
//! asserting the whole run completes (no deadlock).

use contention::Method;
use platform::{Application, NodeId, SystemSpec, UseCase};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use runtime::{
    seeded_requests, Admission, AdmitError, BatchExecutor, EstimateCache, QueueMode,
    ResourceManager, ResourceManagerConfig,
};
use sdf::figure2_graphs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 150;
const WATCHDOG: Duration = Duration::from_secs(120);

/// Runs `f` on a fresh thread and fails the test if it does not finish
/// within [`WATCHDOG`] — a deadlocked manager hangs forever otherwise.
fn with_watchdog<F: FnOnce() + Send + 'static>(f: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).expect("watchdog receiver lives");
    });
    rx.recv_timeout(WATCHDOG)
        .expect("stress run deadlocked: watchdog expired");
    worker.join().expect("stress thread panicked");
}

fn two_app_spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(platform::Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

/// Per-thread deterministic operation stream.
fn next(rng: &mut StdRng) -> u64 {
    rng.next_u64()
}

#[test]
fn manager_survives_concurrent_admit_release_query() {
    with_watchdog(|| {
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards: 2,
            capacity_per_shard: 4,
            queue_mode: QueueMode::Fifo,
            admit_timeout: Some(Duration::from_millis(200)),
        });
        let capacity_total = 2 * 4;
        let (graph_a, graph_b) = figure2_graphs();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        let decisions = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let manager = manager.clone();
                let graph = if t % 2 == 0 {
                    graph_a.clone()
                } else {
                    graph_b.clone()
                };
                let decisions = &decisions;
                scope.spawn(move || {
                    let app = Application::new(format!("stress-{t}"), graph).expect("valid graph");
                    let mut rng = StdRng::seed_from_u64(0x5EED_0000 + t as u64);
                    let mut tickets = Vec::new();
                    for _ in 0..OPS_PER_THREAD {
                        match next(&mut rng) % 100 {
                            // Admit, sometimes with a contract tight enough
                            // to be rejected under load.
                            0..=49 => {
                                let required = if next(&mut rng).is_multiple_of(3) {
                                    Some(app.isolation_throughput() * sdf::Rational::new(4, 5))
                                } else {
                                    None
                                };
                                let shard =
                                    manager.shard_for(next(&mut rng)) % manager.shard_count();
                                match manager.admit(shard, app.clone(), &nodes, required) {
                                    Ok(Admission::Admitted(ticket)) => {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                        tickets.push(ticket);
                                    }
                                    Ok(Admission::Rejected { violations }) => {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                        assert!(!violations.is_empty());
                                    }
                                    Err(AdmitError::Timeout) => {}
                                    Err(e) => panic!("unexpected admit error: {e}"),
                                }
                            }
                            // Release the oldest held ticket.
                            50..=74 => {
                                if !tickets.is_empty() {
                                    tickets.remove(0).release();
                                }
                            }
                            // Query a held ticket under the live mix.
                            75..=89 => {
                                if let Some(ticket) = tickets.last() {
                                    let period = ticket
                                        .predicted_period_now()
                                        .expect("resident while ticket held");
                                    assert!(period.is_positive());
                                }
                            }
                            // Global invariant probe.
                            _ => {
                                assert!(manager.resident_count() <= capacity_total);
                            }
                        }
                    }
                    // Tickets drop here, releasing their capacity.
                });
            }
        });

        assert!(decisions.load(Ordering::Relaxed) > 0, "no decisions made");
        // Every ticket was dropped: the manager must be fully drained and
        // the books must balance.
        assert_eq!(manager.resident_count(), 0);
        let m = manager.metrics();
        assert_eq!(m.admitted(), m.released(), "ticket leak");
        for shard in 0..manager.shard_count() {
            assert_eq!(
                manager
                    .snapshot(shard)
                    .expect("valid shard")
                    .resident_count(),
                0
            );
        }
    });
}

#[test]
fn estimate_cache_is_consistent_under_concurrency() {
    with_watchdog(|| {
        let spec = Arc::new(two_app_spec());
        let cache = Arc::new(EstimateCache::new(2));
        let lookups = THREADS * 60;

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let spec = Arc::clone(&spec);
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xCAC4E + t as u64);
                    for _ in 0..60 {
                        let mask = next(&mut rng) % 3 + 1;
                        let est = cache
                            .get_or_estimate(&spec, UseCase::from_mask(mask), Method::SECOND_ORDER)
                            .expect("estimates");
                        // Cache consistency: every result for a key equals
                        // a fresh uncached estimate.
                        let fresh = contention::estimate(
                            &spec,
                            UseCase::from_mask(mask),
                            Method::SECOND_ORDER,
                        )
                        .expect("estimates");
                        assert_eq!(est.periods(), fresh.periods(), "mask {mask}");
                    }
                });
            }
        });

        // Counter consistency: every lookup is classified exactly once.
        assert_eq!(cache.hits() + cache.misses(), lookups as u64);
        assert!(cache.hits() > 0, "no hits under repeated keys");
        // 3 distinct keys never fit the capacity-2 cache: evictions forced
        // misses beyond the 3 cold ones.
        assert!(cache.len() <= cache.capacity());
        assert!(cache.misses() > 3, "evictions must produce re-misses");
    });
}

#[test]
fn batch_executor_stress_preserves_invariants() {
    use runtime::{AdmissionService, Cached};

    with_watchdog(|| {
        let spec = two_app_spec();
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards: 2,
            capacity_per_shard: 3,
            queue_mode: QueueMode::Lifo,
            admit_timeout: Some(Duration::from_millis(50)),
        });
        manager.bind_workload(spec.clone());
        let stack = Arc::new(Cached::new(manager.clone(), 16));
        let executor = BatchExecutor::new(stack.clone());

        let report = executor.run(seeded_requests(&spec, 600, 2026), THREADS);
        assert_eq!(report.requests, 600);
        assert!(report.admitted > 0);
        assert_eq!(
            report.cache_hits + report.cache_misses,
            stack.cache().hits() + stack.cache().misses()
        );
        // All residents drained after the batch.
        assert_eq!(manager.resident_count(), 0);
        let m = manager.metrics();
        assert_eq!(m.admitted(), m.released());
        // Throughput/latency stats are populated (from the Metered layer).
        assert!(report.throughput() > 0.0);
        assert!(report.admit_latency().count >= report.admitted);
        // The per-layer table surfaced the cache counters.
        assert_eq!(
            AdmissionService::snapshot(&*stack).counter("cached", "hits"),
            Some(stack.cache().hits())
        );
    });
}

#[test]
fn front_end_multiplexes_a_thousand_queued_admissions() {
    use runtime::{
        AdmissionRequest, AdmissionService, Completion, FleetConfig, FleetManager, FrontEnd,
        FrontEndConfig, Metered, RoutingPolicy, ServiceError,
    };

    const QUEUED: usize = 1200;
    const WORKERS: usize = 4;

    with_watchdog(|| {
        // A worker pool far smaller than the queue drives a metered fleet
        // stack; all submissions are queued before any completions are
        // reaped, so QUEUED admissions are concurrently in flight without a
        // thread per waiter.
        // One shard per group: the 2-app spec only routes to the shards its
        // two app indices hash to, so single-shard groups fill completely.
        let fleet = FleetManager::new(
            two_app_spec(),
            FleetConfig::uniform(4, 1, 16, RoutingPolicy::LeastUtilised),
        )
        .expect("valid fleet");
        let front = FrontEnd::new(
            Box::new(Metered::new(fleet.clone())),
            FrontEndConfig {
                workers: WORKERS,
                queue_capacity: QUEUED,
            },
        );

        let completions: Vec<Completion> = (0..QUEUED)
            .map(|i| front.submit(AdmissionRequest::new(i)))
            .collect();
        assert!(
            front.peak_queue_depth() > WORKERS,
            "the queue must outnumber the worker pool (peak {})",
            front.peak_queue_depth()
        );

        // Every submission resolves: admitted until the fleet saturates,
        // saturated afterwards — never an error, never a lost completion.
        let mut admitted = Vec::new();
        let mut saturated = 0usize;
        for completion in completions {
            match completion.wait() {
                Ok(decision) => {
                    if let Some(resident) = decision.resident() {
                        admitted.push(resident);
                    } else {
                        saturated += 1;
                    }
                }
                Err(e) => panic!("submission lost: {e}"),
            }
        }
        assert_eq!(admitted.len(), fleet.capacity());
        assert_eq!(admitted.len() + saturated, QUEUED);
        assert_eq!(front.submitted(), QUEUED as u64);
        assert_eq!(front.completed(), QUEUED as u64);

        // Release through the queue, then verify the books balance.
        let releases: Vec<Completion<()>> = admitted
            .into_iter()
            .map(|resident| front.submit_release(resident))
            .collect();
        for release in releases {
            release.wait().expect("releases succeed");
        }
        assert_eq!(fleet.resident_count(), 0);
        let snapshot = AdmissionService::snapshot(&front);
        assert_eq!(snapshot.admitted, snapshot.released);
        assert_eq!(
            snapshot.counter("front-end", "queue_depth"),
            Some(0),
            "queue drained"
        );
        assert!(
            snapshot
                .counter("front-end", "peak_queue_depth")
                .unwrap_or(0)
                > WORKERS as u64
        );
        // Metered layer saw every queued operation.
        assert!(snapshot.counter("metered", "operations").unwrap_or(0) >= QUEUED as u64);

        front.shutdown();
        assert_eq!(
            front.submit(AdmissionRequest::new(0)).wait().unwrap_err(),
            ServiceError::Stopped
        );
    });
}

#[test]
fn fleet_survives_concurrent_admits_with_rebalancer() {
    use runtime::{DecisionEvent, FleetAdmission, FleetConfig, FleetManager, RoutingPolicy};
    use std::sync::atomic::AtomicBool;

    with_watchdog(|| {
        let fleet = FleetManager::new(
            {
                let (a, b) = figure2_graphs();
                SystemSpec::builder()
                    .application(Application::new("A", a).expect("valid"))
                    .application(Application::new("B", b).expect("valid"))
                    .mapping(platform::Mapping::by_actor_index(3))
                    .build()
                    .expect("valid spec")
            },
            FleetConfig::uniform(4, 1, 3, RoutingPolicy::LeastUtilised),
        )
        .expect("valid fleet");
        let decisions = AtomicU64::new(0);
        let stop_rebalancer = AtomicBool::new(false);

        std::thread::scope(|scope| {
            // A dedicated rebalancer races against every client thread.
            {
                let fleet = fleet.clone();
                let stop_rebalancer = &stop_rebalancer;
                scope.spawn(move || {
                    while !stop_rebalancer.load(Ordering::Relaxed) {
                        fleet.rebalance();
                        std::thread::yield_now();
                    }
                });
            }
            let mut clients = Vec::new();
            for t in 0..THREADS {
                let fleet = fleet.clone();
                let decisions = &decisions;
                clients.push(scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xF1EE7 + t as u64);
                    let mut tickets = Vec::new();
                    for _ in 0..OPS_PER_THREAD {
                        match next(&mut rng) % 100 {
                            // Admit across the whole fleet, sometimes with a
                            // contract tight enough to reject under load.
                            0..=54 => {
                                let app_index = next(&mut rng) as usize;
                                let contract = if next(&mut rng).is_multiple_of(3) {
                                    Some(sdf::Rational::new(1, 400))
                                } else {
                                    None
                                };
                                let affinity = format!("uc{}", next(&mut rng) % 4);
                                match fleet.admit(app_index, contract, Some(&affinity)) {
                                    Ok(FleetAdmission::Admitted(ticket)) => {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                        tickets.push(ticket);
                                    }
                                    Ok(FleetAdmission::Rejected { violations, .. }) => {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                        assert!(!violations.is_empty());
                                    }
                                    Ok(FleetAdmission::Saturated { group }) => {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                        assert!(group < fleet.group_count());
                                    }
                                    Err(e) => panic!("unexpected fleet error: {e}"),
                                }
                            }
                            // Release the oldest held ticket (it may have
                            // been rebalanced to another group meanwhile).
                            55..=84 => {
                                if !tickets.is_empty() {
                                    tickets.remove(0).release();
                                }
                            }
                            // Explicit cross-group move of a held resident.
                            85..=92 => {
                                if let Some(ticket) = tickets.last() {
                                    let to = next(&mut rng) as usize % fleet.group_count();
                                    // Saturated/same-group failures are
                                    // expected under load; moves must never
                                    // error structurally or lose residents.
                                    let _ = fleet.move_resident(ticket.resident_id(), to);
                                }
                            }
                            // Global invariant probe.
                            _ => {
                                let per_group: usize = (0..fleet.group_count())
                                    .map(|g| fleet.resident_count_of(g).expect("valid group"))
                                    .sum();
                                // The per-group counts are read one group at
                                // a time while moves complete concurrently:
                                // a mid-move resident briefly occupies both
                                // groups (sum leads the registry), and a move
                                // finishing between two reads can be missed
                                // by both (sum trails it) — each by at most
                                // one per in-flight move. Only bound the
                                // drift; steady-state equality is asserted
                                // after the scope ends.
                                assert!(per_group + THREADS >= fleet.resident_count());
                                assert!(per_group <= fleet.capacity() + fleet.group_count());
                            }
                        }
                    }
                    // Tickets drop here, releasing their residents.
                }));
            }
            // Keep the rebalancer racing until every client is done, then
            // wind it down (the scope would otherwise join it forever).
            for client in clients {
                client.join().expect("client thread does not panic");
            }
            stop_rebalancer.store(true, Ordering::Relaxed);
        });

        assert!(decisions.load(Ordering::Relaxed) > 0, "no decisions made");
        // Steady state: fully drained, no group over capacity, books balance.
        assert_eq!(fleet.resident_count(), 0);
        for g in 0..fleet.group_count() {
            assert_eq!(fleet.resident_count_of(g).expect("valid group"), 0);
        }
        let snapshot = fleet.snapshot();
        assert_eq!(snapshot.admitted, snapshot.released, "resident leak");
        // The journal saw every decision and still verifies.
        fleet.journal().verify().expect("journal integrity");
        let events = fleet.journal().events();
        let admits = events
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Admit { .. }))
            .count();
        let releases = events
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Release { .. }))
            .count();
        assert_eq!(releases as u64, snapshot.released);
        assert!(admits as u64 >= snapshot.admitted);
    });
}

#[test]
fn stop_under_load_drains_cleanly() {
    with_watchdog(|| {
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards: 1,
            capacity_per_shard: 2,
            queue_mode: QueueMode::Fifo,
            admit_timeout: Some(Duration::from_secs(30)),
        });
        let (graph_a, _) = figure2_graphs();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];

        std::thread::scope(|scope| {
            // Saturate capacity, then pile waiters behind it.
            let a = manager
                .admit(
                    0,
                    Application::new("a", graph_a.clone()).unwrap(),
                    &nodes,
                    None,
                )
                .unwrap()
                .ticket()
                .unwrap();
            let b = manager
                .admit(
                    0,
                    Application::new("b", graph_a.clone()).unwrap(),
                    &nodes,
                    None,
                )
                .unwrap()
                .ticket()
                .unwrap();
            for t in 0..4 {
                let manager = manager.clone();
                let graph = graph_a.clone();
                scope.spawn(move || {
                    let app = Application::new(format!("w{t}"), graph).unwrap();
                    // Waiters must resolve to Stopped, never hang.
                    let result = manager.admit(0, app, &nodes, None);
                    assert!(matches!(result, Err(AdmitError::Stopped)));
                });
            }
            std::thread::sleep(Duration::from_millis(50));
            manager.stop();
            // Residents drain gracefully after stop.
            a.release();
            b.release();
        });
        assert_eq!(manager.resident_count(), 0);
        assert_eq!(manager.metrics().stopped_rejections(), 4);
    });
}
