//! WAL durability integration tests: sustained appends keep the journal's
//! in-memory footprint flat (the fix for the unbounded `Vec<JournalEntry>`
//! the journal used to hold), segments rotate on schedule, and compaction
//! shrinks the directory without changing what a replay sees.

use runtime::{DecisionEvent, FsyncPolicy, Journal, JournalHeader, WalConfig};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "probcon-wal-durability-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The journal's memory no longer grows with traffic: a million appends
/// stream to segment files while the only in-memory entry storage — the
/// bounded recent tail — stays at its configured size. (Before the WAL,
/// every append pushed into one ever-growing in-memory vector.)
#[test]
fn wal_journal_memory_stays_flat_over_a_million_appends() {
    const APPENDS: u64 = 1_000_000;
    const SEGMENT: u64 = 65_536;
    const TAIL: usize = 256;

    let dir = tmp_dir("flat-rss");
    let config = WalConfig {
        segment_max_entries: SEGMENT,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: TAIL,
        keep_snapshots: 1,
    };
    let journal = Journal::create_wal(&dir, JournalHeader::default(), config).expect("fresh WAL");
    for i in 0..APPENDS {
        journal.append(DecisionEvent::Release { resident: i });
    }
    assert_eq!(journal.io_errors(), 0, "every append must land");
    assert_eq!(journal.next_seq(), APPENDS);
    assert_eq!(journal.len(), APPENDS as usize);

    // The bounded tail is the journal's ONLY in-memory entry storage.
    let tail = journal.recent(usize::MAX);
    assert!(
        tail.len() <= TAIL,
        "recent tail grew beyond its bound: {} > {TAIL}",
        tail.len()
    );
    assert_eq!(tail.last().map(|e| e.seq), Some(APPENDS - 1));

    // Rotation kept every segment bounded too.
    journal.sync().expect("sync");
    let stats = journal.wal_stats().expect("wal-backed");
    assert_eq!(stats.segments as u64, APPENDS / SEGMENT + 1);

    // Compaction folds the whole history (all releases, no residents) into
    // one snapshot; covered segments are garbage-collected and the
    // directory shrinks by orders of magnitude.
    let checkpoint = journal.compact().expect("compact");
    assert_eq!(checkpoint.upto_seq, APPENDS);
    assert!(checkpoint.residents.is_empty());
    let after = journal.wal_stats().expect("wal-backed");
    assert_eq!(after.segments, 1, "only the empty active segment remains");
    assert!(
        after.disk_bytes * 10 < stats.disk_bytes,
        "compaction must shrink the directory: {} -> {} bytes",
        stats.disk_bytes,
        after.disk_bytes
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Appends made AFTER a snapshot checkpoint keep flowing into the rotated
/// active segment chain and replay on top of the snapshot base.
#[test]
fn appends_after_a_checkpoint_continue_the_chain() {
    let dir = tmp_dir("post-checkpoint");
    let config = WalConfig {
        segment_max_entries: 8,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: 8,
        keep_snapshots: 1,
    };
    let journal = Journal::create_wal(&dir, JournalHeader::default(), config).expect("fresh WAL");
    for i in 0..20u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    journal.compact().expect("compact");
    for i in 20..30u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    journal.sync().expect("sync");
    assert_eq!(journal.io_errors(), 0);
    assert_eq!(journal.base_seq(), 20);
    assert_eq!(journal.len(), 10);
    drop(journal);

    // A reopen sees the snapshot base plus exactly the post-checkpoint tail.
    let (journal, recovery) = Journal::open_wal(&dir, config).expect("reopen");
    assert_eq!(recovery.truncated_bytes, 0);
    assert_eq!(journal.base_seq(), 20);
    assert_eq!(journal.next_seq(), 30);
    journal.verify().expect("checksums hold");
    let seqs: Vec<u64> = journal
        .try_entries()
        .expect("entries")
        .iter()
        .map(|e| e.seq)
        .collect();
    assert_eq!(seqs, (20..30).collect::<Vec<u64>>());

    let _ = std::fs::remove_dir_all(&dir);
}

/// `keep_snapshots: K` retains the last K checkpoints as point-in-time
/// replay anchors: segment GC only advances to the OLDEST retained fold
/// point, so every retained snapshot still has the entry tail it needs,
/// and a further compaction rolls the window forward by exactly one.
#[test]
fn keep_snapshots_retains_point_in_time_checkpoints() {
    let dir = tmp_dir("keep-snapshots");
    let config = WalConfig {
        segment_max_entries: 4,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: 4,
        keep_snapshots: 2,
    };
    let snapshot_files = |dir: &std::path::Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("snapshot-"))
            .collect();
        names.sort();
        names
    };

    let journal = Journal::create_wal(&dir, JournalHeader::default(), config).expect("fresh WAL");
    for i in 0..10u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    let first = journal.compact().expect("first compact");
    for i in 10..20u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    let second = journal.compact().expect("second compact");

    // Both checkpoints live on disk, and the manifest counts them.
    let stats = journal.wal_stats().expect("wal-backed");
    assert_eq!(stats.snapshots, 2);
    assert_eq!(stats.snapshot_upto, Some(second.upto_seq));
    assert_eq!(snapshot_files(&dir).len(), 2);
    // GC held back: the segments between the two fold points survive so
    // the OLDER snapshot remains a valid replay base (its tail of entries
    // 10..20 is still on disk).
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("segment-"))
        .map(|e| {
            std::fs::read_to_string(e.path())
                .expect("segment")
                .lines()
                .count() as u64
        })
        .sum();
    assert!(
        on_disk >= second.upto_seq - first.upto_seq,
        "entries {}..{} must survive for point-in-time replay, found {on_disk}",
        first.upto_seq,
        second.upto_seq
    );

    // A third checkpoint rolls the retention window: still two snapshots,
    // and the first one's file is gone.
    for i in 20..30u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    let third = journal.compact().expect("third compact");
    let files = snapshot_files(&dir);
    assert_eq!(files.len(), 2);
    assert!(!files
        .iter()
        .any(|f| f.contains(&format!("{:020}", first.upto_seq))));
    drop(journal);

    // A reopen recovers from the NEWEST snapshot and replays cleanly.
    let (journal, recovery) = Journal::open_wal(&dir, config).expect("reopen");
    assert_eq!(recovery.truncated_bytes, 0);
    assert_eq!(journal.base_seq(), third.upto_seq);
    journal.verify().expect("checksums hold");

    let _ = std::fs::remove_dir_all(&dir);
}
