//! WAL durability integration tests: sustained appends keep the journal's
//! in-memory footprint flat (the fix for the unbounded `Vec<JournalEntry>`
//! the journal used to hold), segments rotate on schedule, and compaction
//! shrinks the directory without changing what a replay sees.

use runtime::{DecisionEvent, FsyncPolicy, Journal, JournalHeader, WalConfig};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "probcon-wal-durability-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The journal's memory no longer grows with traffic: a million appends
/// stream to segment files while the only in-memory entry storage — the
/// bounded recent tail — stays at its configured size. (Before the WAL,
/// every append pushed into one ever-growing in-memory vector.)
#[test]
fn wal_journal_memory_stays_flat_over_a_million_appends() {
    const APPENDS: u64 = 1_000_000;
    const SEGMENT: u64 = 65_536;
    const TAIL: usize = 256;

    let dir = tmp_dir("flat-rss");
    let config = WalConfig {
        segment_max_entries: SEGMENT,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: TAIL,
    };
    let journal = Journal::create_wal(&dir, JournalHeader::default(), config).expect("fresh WAL");
    for i in 0..APPENDS {
        journal.append(DecisionEvent::Release { resident: i });
    }
    assert_eq!(journal.io_errors(), 0, "every append must land");
    assert_eq!(journal.next_seq(), APPENDS);
    assert_eq!(journal.len(), APPENDS as usize);

    // The bounded tail is the journal's ONLY in-memory entry storage.
    let tail = journal.recent(usize::MAX);
    assert!(
        tail.len() <= TAIL,
        "recent tail grew beyond its bound: {} > {TAIL}",
        tail.len()
    );
    assert_eq!(tail.last().map(|e| e.seq), Some(APPENDS - 1));

    // Rotation kept every segment bounded too.
    journal.sync().expect("sync");
    let stats = journal.wal_stats().expect("wal-backed");
    assert_eq!(stats.segments as u64, APPENDS / SEGMENT + 1);

    // Compaction folds the whole history (all releases, no residents) into
    // one snapshot; covered segments are garbage-collected and the
    // directory shrinks by orders of magnitude.
    let checkpoint = journal.compact().expect("compact");
    assert_eq!(checkpoint.upto_seq, APPENDS);
    assert!(checkpoint.residents.is_empty());
    let after = journal.wal_stats().expect("wal-backed");
    assert_eq!(after.segments, 1, "only the empty active segment remains");
    assert!(
        after.disk_bytes * 10 < stats.disk_bytes,
        "compaction must shrink the directory: {} -> {} bytes",
        stats.disk_bytes,
        after.disk_bytes
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Appends made AFTER a snapshot checkpoint keep flowing into the rotated
/// active segment chain and replay on top of the snapshot base.
#[test]
fn appends_after_a_checkpoint_continue_the_chain() {
    let dir = tmp_dir("post-checkpoint");
    let config = WalConfig {
        segment_max_entries: 8,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: 8,
    };
    let journal = Journal::create_wal(&dir, JournalHeader::default(), config).expect("fresh WAL");
    for i in 0..20u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    journal.compact().expect("compact");
    for i in 20..30u64 {
        journal.append(DecisionEvent::Release { resident: i });
    }
    journal.sync().expect("sync");
    assert_eq!(journal.io_errors(), 0);
    assert_eq!(journal.base_seq(), 20);
    assert_eq!(journal.len(), 10);
    drop(journal);

    // A reopen sees the snapshot base plus exactly the post-checkpoint tail.
    let (journal, recovery) = Journal::open_wal(&dir, config).expect("reopen");
    assert_eq!(recovery.truncated_bytes, 0);
    assert_eq!(journal.base_seq(), 20);
    assert_eq!(journal.next_seq(), 30);
    journal.verify().expect("checksums hold");
    let seqs: Vec<u64> = journal
        .try_entries()
        .expect("entries")
        .iter()
        .map(|e| e.seq)
        .collect();
    assert_eq!(seqs, (20..30).collect::<Vec<u64>>());

    let _ = std::fs::remove_dir_all(&dir);
}
