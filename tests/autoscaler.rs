//! Elastic-fleet integration tests: the autoscaler control loop, the
//! all-or-nothing drain contract, and the acceptance oracle the feature
//! hangs off — an autoscaled recording (grows, shrinks, drains and all)
//! replays outcome-for-outcome and plans its identity shape with zero
//! flips.

use std::sync::Arc;

use experiments::workload::workload_with;
use runtime::{
    Autoscaler, DecisionEvent, FleetAdmission, FleetConfig, FleetManager, FleetShape,
    JournalHeader, JournalReplayer, PlanRun, RoutingPolicy, ScaleAction, ScaleOutcome, ScalePolicy,
    ScaleRefusal, TargetPolicy, JOURNAL_VERSION,
};
use sdf::GeneratorConfig;

const SEED: u64 = 2007;
const APPS: usize = 5;
const ACTORS: usize = 4;

fn spec() -> platform::SystemSpec {
    workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload")
}

fn header(groups: usize, shards: usize, capacity: usize) -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        seed: SEED,
        apps: APPS as u64,
        actors: ACTORS as u64,
        groups: groups as u64,
        shards_per_group: shards as u64,
        capacity_per_shard: capacity as u64,
        policy: RoutingPolicy::LeastUtilised.to_string(),
        group_shapes: Vec::new(),
    }
}

fn fleet(groups: usize, shards: usize, capacity: usize) -> FleetManager {
    FleetManager::with_header(
        spec(),
        FleetConfig::uniform(groups, shards, capacity, RoutingPolicy::LeastUtilised),
        header(groups, shards, capacity),
    )
    .expect("fleet")
}

/// Parks `count` residents on `group`, forgetting the RAII tickets so
/// they stay resident for the test's duration.
fn park(fleet: &FleetManager, group: usize, count: usize) -> Vec<u64> {
    let mut residents = Vec::new();
    for i in 0..count {
        match fleet.admit_to(group, i, None).expect("admits") {
            FleetAdmission::Admitted(ticket) => {
                residents.push(ticket.resident_id());
                ticket.forget();
            }
            other => panic!("parking admission bounced: {other:?}"),
        }
    }
    residents
}

// ---------------------------------------------------------------------------
// Satellite: the DrainGroup contract.
// ---------------------------------------------------------------------------

/// A drain rebalances EVERY resident out before retiring the group, and
/// the journal shows the moves strictly before the resize entry — which
/// is exactly why a replay (which re-executes entries in order) finds
/// the group empty when it reaches the drain.
#[test]
fn drain_rebalances_every_resident_before_removal() {
    let fleet = fleet(2, 1, 4);
    let movers = park(&fleet, 1, 2);
    park(&fleet, 0, 1);

    let outcome = fleet.drain_group(1).expect("drain decides");
    assert_eq!(outcome, ScaleOutcome::Applied);

    let snapshot = fleet.snapshot();
    assert!(snapshot.groups[1].retired, "drained group must retire");
    assert_eq!(
        snapshot.groups[1].residents, 0,
        "drained group must be empty"
    );
    assert_eq!(
        snapshot.groups[0].residents, 3,
        "every resident rebalanced out"
    );
    assert_eq!(snapshot.resizes, 1);
    assert_eq!(snapshot.resize_refusals, 0);

    // Journal order: each mover's Rebalance entry precedes the Resize.
    let events = fleet.journal().events();
    let resize_at = events
        .iter()
        .position(|e| matches!(e, DecisionEvent::Resize { .. }))
        .expect("drain journaled");
    for &resident in &movers {
        let moved_at = events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    DecisionEvent::Rebalance { resident: r, .. } if *r == resident
                )
            })
            .unwrap_or_else(|| panic!("resident {resident} has a journaled move"));
        assert!(
            moved_at < resize_at,
            "resident {resident} moved at {moved_at}, after the drain at {resize_at}"
        );
    }

    // And the whole recording replays outcome-for-outcome.
    let journal = runtime::Journal::parse(&fleet.journal().render()).expect("round-trips");
    let config = FleetConfig::from_header(journal.header()).expect("config");
    let (report, _) = JournalReplayer::new(&spec())
        .replay(&journal, config)
        .expect("replays");
    assert!(report.is_equivalent(), "{report:?}");
}

/// When any resident cannot be placed, the drain refuses as a whole:
/// nothing moves, nothing retires — the fleet is exactly as it was, plus
/// one journaled refusal.
#[test]
fn drain_refuses_unplaceable_without_mutating_the_fleet() {
    let fleet = fleet(2, 1, 2);
    // Both groups full: no headroom anywhere for group 1's residents.
    park(&fleet, 0, 2);
    park(&fleet, 1, 2);
    let before = fleet.snapshot();

    let outcome = fleet.drain_group(1).expect("drain decides");
    assert!(
        matches!(
            outcome,
            ScaleOutcome::Refused {
                reason: ScaleRefusal::Unplaceable { .. }
            }
        ),
        "expected an unplaceable refusal, got {outcome:?}"
    );

    let after = fleet.snapshot();
    assert_eq!(after.resize_refusals, before.resize_refusals + 1);
    assert_eq!(after.resizes, before.resizes);
    // Refusal counter aside, the fleet is untouched: same residents in
    // the same groups, nothing retired, no rebalances recorded.
    assert_eq!(after.groups, before.groups);
    assert_eq!(after.rebalances, before.rebalances);
    assert!(!after.groups[1].retired);

    // The refusal is journaled — and the recording still replays.
    let journal = runtime::Journal::parse(&fleet.journal().render()).expect("round-trips");
    assert!(journal.events().iter().any(|e| matches!(
        e,
        DecisionEvent::Resize {
            outcome: ScaleOutcome::Refused { .. },
            ..
        }
    )));
    let config = FleetConfig::from_header(journal.header()).expect("config");
    let (report, _) = JournalReplayer::new(&spec())
        .replay(&journal, config)
        .expect("replays");
    assert!(report.is_equivalent(), "{report:?}");
}

/// The last active group can never be drained away.
#[test]
fn drain_refuses_the_last_active_group() {
    let fleet = fleet(2, 1, 4);
    park(&fleet, 0, 1);
    assert_eq!(
        fleet.drain_group(1).expect("drain decides"),
        ScaleOutcome::Applied
    );
    assert_eq!(
        fleet.drain_group(0).expect("drain decides"),
        ScaleOutcome::Refused {
            reason: ScaleRefusal::LastGroup
        }
    );
    assert!(!fleet.snapshot().groups[0].retired);
}

// ---------------------------------------------------------------------------
// Acceptance: autoscaled runs replay and plan like any other.
// ---------------------------------------------------------------------------

/// Drives a live controller through a grow phase (parked load above the
/// band) and a shrink phase (load released below the band), then checks
/// the acceptance oracle: the journal contains both resize kinds, the
/// replayer verifies it outcome-for-outcome, and the planner's identity
/// shape reports zero flips with the resizes re-applied.
#[test]
fn autoscaled_run_replays_and_plans_identity_with_zero_flips() {
    let fleet = fleet(2, 1, 2);
    let policy = TargetPolicy {
        low: 0.2,
        high: 0.5,
        grow_after: 1,
        shrink_after: 1,
        cooldown: 0,
        min_capacity_per_shard: 2,
        max_capacity_per_shard: 8,
        step: 2,
        add_group_at_max: false,
        drain_at_min: false,
    };
    let controller = Autoscaler::new(Arc::new(fleet.clone()), ScalePolicy::Target(policy));

    // Phase 1: saturate, and tick until the controller has grown the
    // fleet at least twice.
    let residents: Vec<u64> = (0..2).flat_map(|g| park(&fleet, g, 2)).collect();
    let mut grows = 0;
    for _ in 0..16 {
        if let Some((ScaleAction::Grow { .. }, ScaleOutcome::Applied)) =
            controller.tick().expect("ticks")
        {
            grows += 1;
            if grows >= 2 {
                break;
            }
        }
    }
    assert!(grows >= 2, "controller must grow a saturated fleet");

    // Phase 2: release everything; the now-idle fleet shrinks back.
    for resident in residents {
        assert!(fleet.release_resident(resident), "resident releases");
    }
    let mut shrinks = 0;
    for _ in 0..16 {
        if let Some((ScaleAction::Shrink { .. }, ScaleOutcome::Applied)) =
            controller.tick().expect("ticks")
        {
            shrinks += 1;
            if shrinks >= 2 {
                break;
            }
        }
    }
    assert!(shrinks >= 2, "controller must shrink an idle fleet");

    let journal = runtime::Journal::parse(&fleet.journal().render()).expect("round-trips");
    let kinds: Vec<&str> = journal
        .events()
        .iter()
        .filter_map(|e| match e {
            DecisionEvent::Resize {
                action: ScaleAction::Grow { .. },
                ..
            } => Some("grow"),
            DecisionEvent::Resize {
                action: ScaleAction::Shrink { .. },
                ..
            } => Some("shrink"),
            _ => None,
        })
        .collect();
    assert!(kinds.contains(&"grow") && kinds.contains(&"shrink"));

    // Replayer: outcome-for-outcome.
    let config = FleetConfig::from_header(journal.header()).expect("config");
    let (report, replayed) = JournalReplayer::new(&spec())
        .replay(&journal, config)
        .expect("replays");
    assert!(report.is_equivalent(), "{report:?}");
    // The replayed fleet landed on the same final shape.
    assert_eq!(replayed.snapshot().capacity, fleet.snapshot().capacity);

    // Planner: identity shape, zero flips, resizes re-applied as data.
    let shape = FleetShape::from_header(journal.header());
    let identity = PlanRun::new(&spec(), &journal, &shape)
        .execute()
        .expect("plans");
    assert_eq!(identity.flips, vec![]);
    assert!(identity.resizes_applied >= 4, "{identity:?}");
    assert_eq!(identity.resizes_refused, 0);
    assert_eq!(identity.recorded, identity.hypothetical);
}

/// `PlanRun::with_scale_policy` evaluates a policy OFFLINE against a
/// recorded stream: recorded resizes are set aside, the policy's own
/// actions land in the report's decision timeline, and the recorded
/// admissions still verify.
#[test]
fn planner_evaluates_a_policy_file_against_a_recorded_run() {
    // Record a run with NO autoscaler: a small fleet under pressure.
    let fleet = fleet(2, 1, 2);
    park(&fleet, 0, 2);
    park(&fleet, 1, 2);
    for i in 0..4 {
        // Saturated admissions: recorded rejections the policy will see
        // as sustained pressure.
        let _ = fleet.admit_to(i % 2, i, None).expect("decides");
    }
    let journal = runtime::Journal::parse(&fleet.journal().render()).expect("round-trips");

    let policy = ScalePolicy::Target(TargetPolicy {
        low: 0.1,
        high: 0.5,
        grow_after: 1,
        shrink_after: 8,
        cooldown: 0,
        min_capacity_per_shard: 1,
        max_capacity_per_shard: 8,
        step: 1,
        add_group_at_max: false,
        drain_at_min: false,
    });
    let shape = FleetShape::from_header(journal.header());
    let report = PlanRun::new(&spec(), &journal, &shape)
        .with_scale_policy(policy, 1)
        .execute()
        .expect("plans");

    assert_eq!(report.policy.as_deref().map(|p| p.is_empty()), Some(false));
    assert!(
        !report.policy_actions.is_empty(),
        "a saturated fleet under a tight band must provoke the policy: {report:?}"
    );
    assert!(report
        .policy_actions
        .iter()
        .all(|d| !d.action.is_empty() && !d.outcome.is_empty()));
    // The render mentions the policy evaluation (CLI surface).
    assert!(report.render().contains("policy under evaluation"));
}

/// The wire form of a policy round-trips, and the JSON file format the
/// CLI loads (`--autoscale policy.json`, `--policy-file`) is the same.
#[test]
fn scale_policy_json_roundtrips() {
    for policy in [
        ScalePolicy::Off,
        ScalePolicy::Manual,
        ScalePolicy::Target(TargetPolicy::default()),
    ] {
        let json = policy.to_json();
        let back = ScalePolicy::from_json(&json).expect("parses");
        assert_eq!(back, policy, "{json}");
    }
    assert!(ScalePolicy::from_json("{\"bogus\": 1}").is_err());
}
