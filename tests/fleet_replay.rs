//! Deterministic-replay integration tests: a seeded multi-group workload
//! recorded to an append-only journal must replay — twice — with
//! byte-identical admit/reject outcome sequences and final fleet metrics.
//! This is the strongest end-to-end regression oracle for the admission
//! path: any behavioural drift in routing, admission analysis, rebalancing
//! or journaling shows up as a replay divergence.

use experiments::workload::workload_with;
use runtime::{
    run_fleet_requests, seeded_fleet_requests, AdmissionRequest, AdmissionService, DecisionEvent,
    FleetConfig, FleetManager, FleetRequest, Journal, JournalHeader, JournalOutcome,
    JournalReplayer, Journaled, ReplayReport, RoutingPolicy, JOURNAL_VERSION,
};
use sdf::GeneratorConfig;

const SEED: u64 = 2007;
const APPS: usize = 5;
const ACTORS: usize = 4;
const GROUPS: usize = 4;
const SHARDS: usize = 1;
const CAPACITY: usize = 3;
const REQUESTS: usize = 250;

fn header() -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        seed: SEED,
        apps: APPS as u64,
        actors: ACTORS as u64,
        groups: GROUPS as u64,
        shards_per_group: SHARDS as u64,
        capacity_per_shard: CAPACITY as u64,
        policy: RoutingPolicy::LeastUtilised.to_string(),
        // Stamped with the real shapes by FleetManager::with_header.
        group_shapes: Vec::new(),
    }
}

fn config() -> FleetConfig {
    FleetConfig::uniform(GROUPS, SHARDS, CAPACITY, RoutingPolicy::LeastUtilised)
}

/// Records the seeded 4-group mixed workload and returns its journal
/// (rendered + reparsed, so the persistence path is part of the oracle).
fn record() -> Journal {
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let fleet = FleetManager::with_header(spec.clone(), config(), header()).expect("fleet");
    let stream = seeded_fleet_requests(&spec, GROUPS, REQUESTS, SEED);
    let report = run_fleet_requests(&fleet, stream, 1);
    let snapshot = report.snapshot.as_ref().expect("local fleet run");
    assert!(snapshot.admitted > 0, "workload admits: {report:?}");
    assert!(
        snapshot.rejected + snapshot.saturated > 0,
        "workload must exercise rejections or saturation: {report:?}"
    );
    assert!(
        fleet
            .journal()
            .events()
            .iter()
            .any(|e| matches!(e, DecisionEvent::Rebalance { .. })),
        "workload must exercise rebalancing"
    );
    Journal::parse(&fleet.journal().render()).expect("journal round-trips")
}

/// The admit/reject outcome sequence of a journal, decision by decision.
fn outcome_sequence(journal: &Journal) -> Vec<String> {
    journal.events().iter().map(|e| e.to_string()).collect()
}

#[test]
fn recorded_journal_replays_equivalently_twice() {
    let journal = record();
    journal.verify().expect("checksums hold");

    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let replayer = JournalReplayer::new(&spec);
    let (first, first_fleet) = replayer.replay(&journal, config()).expect("first replay");
    let (second, second_fleet) = replayer.replay(&journal, config()).expect("second replay");

    for (label, report) in [("first", &first), ("second", &second)] {
        assert!(
            report.is_equivalent(),
            "{label} replay diverged:\n{}",
            report.render()
        );
        assert_eq!(report.events, journal.len());
        assert_eq!(report.matches, journal.len());
    }

    // Identical admit/reject sequences across both replays, step for step.
    assert_eq!(first.outcome_log, second.outcome_log);
    // ... and identical final fleet metrics.
    assert_eq!(first_fleet.snapshot(), second_fleet.snapshot());
    assert_eq!(first.residents_at_end, second.residents_at_end);
}

#[test]
fn replayed_fleet_rerecords_the_same_decision_stream() {
    let journal = record();
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let (report, replayed_fleet) = JournalReplayer::new(&spec)
        .replay(&journal, config())
        .expect("replay");
    assert!(report.is_equivalent(), "{}", report.render());

    // The replayed fleet journaled its own decisions; a single-threaded
    // recording re-records *exactly* the same events (ids included).
    assert_eq!(replayed_fleet.journal().events(), journal.events());
    // The re-recorded journal is itself replayable: the oracle is a fixed
    // point, not a one-shot.
    let rerecorded = Journal::parse(&replayed_fleet.journal().render()).expect("parses");
    let (again, _) = JournalReplayer::new(&spec)
        .replay(&rerecorded, config())
        .expect("replay of the re-recording");
    assert!(again.is_equivalent(), "{}", again.render());
}

#[test]
fn replay_through_journal_file_roundtrip() {
    let journal = record();
    let dir = std::env::temp_dir().join("probcon-fleet-replay-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("recorded.jsonl");
    journal.write_to(&path).expect("writes");

    let loaded = Journal::read_from(&path).expect("reads and verifies");
    assert_eq!(loaded.header(), journal.header());
    assert_eq!(outcome_sequence(&loaded), outcome_sequence(&journal));

    // The header alone suffices to rebuild workload and fleet — exactly
    // what `probcon replay <file>` does.
    let spec = workload_with(
        loaded.header().seed,
        loaded.header().apps as usize,
        &GeneratorConfig::with_actors(loaded.header().actors as usize),
    )
    .expect("workload from header");
    let config = FleetConfig::from_header(loaded.header()).expect("config from header");
    let (report, _) = JournalReplayer::new(&spec)
        .replay(&loaded, config)
        .expect("replay");
    assert!(report.is_equivalent(), "{}", report.render());
}

#[test]
fn concurrent_recording_still_replays_equivalently() {
    // Journal order serializes each group's decisions even when the
    // recording itself raced across 8 worker threads, so sequential replay
    // must still reproduce every outcome.
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let fleet = FleetManager::with_header(spec.clone(), config(), header()).expect("fleet");
    let stream = seeded_fleet_requests(&spec, GROUPS, REQUESTS, SEED + 1);
    run_fleet_requests(&fleet, stream, 8);
    let journal = Journal::parse(&fleet.journal().render()).expect("round-trips");

    let (report, _) = JournalReplayer::new(&spec)
        .replay(&journal, config())
        .expect("replay");
    assert!(report.is_equivalent(), "{}", report.render());
    assert_eq!(report.events, journal.len());
}

#[test]
fn journaled_middleware_recording_replays_equivalently() {
    // The middleware path of the replay oracle: record admissions and
    // releases through a `Journaled<FleetManager>` service stack (NOT the
    // fleet's internal journal), then replay the middleware journal with
    // the standard `JournalReplayer`. The stack journals the same decision
    // vocabulary, so the journal must replay outcome for outcome.
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let fleet = FleetManager::with_header(spec.clone(), config(), header()).expect("fleet");
    let stack = Journaled::with_header(fleet.clone(), header());

    // Drive the seeded stream through the stack (admits/releases only —
    // rebalances are a fleet operation and would bypass the middleware
    // journal, making it incomplete).
    let mut held: Vec<u64> = Vec::new();
    let mut outcomes = (0u64, 0u64, 0u64); // admitted, rejected+saturated, released
    for request in seeded_fleet_requests(&spec, GROUPS, REQUESTS, SEED) {
        match request {
            FleetRequest::Admit {
                app_index,
                required_throughput,
                affinity,
            } => {
                let request = AdmissionRequest {
                    app_index,
                    required_throughput,
                    affinity,
                    target: None,
                    span: None,
                };
                let decision = stack.admit(&request).expect("no analysis errors");
                match decision.resident() {
                    Some(resident) => {
                        held.push(resident);
                        outcomes.0 += 1;
                    }
                    None => outcomes.1 += 1,
                }
            }
            FleetRequest::Release => {
                if !held.is_empty() {
                    stack.release(held.remove(0)).expect("held resident");
                    outcomes.2 += 1;
                }
            }
            // Skipped: see above.
            FleetRequest::Rebalance | FleetRequest::Estimate { .. } => {}
        }
    }
    for resident in held {
        stack.release(resident).expect("held resident");
    }
    assert!(outcomes.0 > 0 && outcomes.1 > 0, "{outcomes:?}");

    // The middleware journal round-trips and replays equivalently.
    let journal = Journal::parse(&stack.journal().render()).expect("round-trips");
    assert_eq!(journal.len(), stack.journal().len());
    let (report, replayed) = JournalReplayer::new(&spec)
        .replay(&journal, config())
        .expect("replay");
    assert!(report.is_equivalent(), "{}", report.render());
    assert_eq!(report.events, journal.len());
    assert_eq!(report.residents_at_end, 0);
    assert_eq!(replayed.resident_count(), 0);
}

#[test]
fn corrupted_recording_is_rejected_and_divergence_is_reported() {
    let journal = record();

    // Corrupt one byte of the persisted form: loading must fail checksum.
    let text = journal.render();
    let admitted_pos = text.find("Admitted").expect("an admission was recorded");
    let mut tampered = text.clone();
    tampered.replace_range(admitted_pos..admitted_pos + 8, "admitteD");
    assert!(
        Journal::parse(&tampered).is_err(),
        "tampering must not load"
    );

    // A journal recorded against a *different* fleet shape replays with
    // divergences, and the report says so.
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let smaller = FleetConfig::uniform(GROUPS, SHARDS, 1, RoutingPolicy::LeastUtilised);
    let (report, _): (ReplayReport, FleetManager) = JournalReplayer::new(&spec)
        .replay(&journal, smaller)
        .expect("replay runs");
    assert!(
        !report.is_equivalent(),
        "capacity-1 groups cannot reproduce a capacity-3 recording"
    );
    assert!(report.render().contains("NOT equivalent"));
    // Divergences carry the recorded expectation and what happened instead.
    let d = &report.divergences[0];
    assert!(journal.len() as u64 > d.seq);
    assert_ne!(d.expected, d.got);
    // Saturated outcomes appear where the recording admitted.
    assert!(
        journal.events().iter().enumerate().any(|(i, e)| {
            matches!(
                e,
                DecisionEvent::Admit {
                    outcome: JournalOutcome::Admitted { .. },
                    ..
                }
            ) && report.outcome_log[i].contains("saturated")
        }),
        "shrunk capacity must saturate recorded admissions"
    );
}

#[test]
fn planner_agrees_with_replayer_on_identity_and_reports_shrink_as_flips() {
    use runtime::{FleetShape, FlipKind, PlanRun, PlanSweep};

    let journal = record();
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");

    // The replayer verifies the identity shape outcome-for-outcome...
    let (replay, _) = JournalReplayer::new(&spec)
        .replay(&journal, config())
        .expect("replays");
    assert!(replay.is_equivalent());

    // ... and the planner agrees: zero flips, identical outcome totals,
    // every recorded release/rebalance applied.
    let shape = FleetShape::from_header(journal.header());
    let identity = PlanRun::new(&spec, &journal, &shape)
        .execute()
        .expect("plans");
    assert_eq!(identity.flips, vec![]);
    assert_eq!(identity.recorded, identity.hypothetical);
    assert_eq!(identity.releases_skipped, 0);
    assert_eq!(
        identity.recorded.admitted + identity.recorded.rejected + identity.recorded.saturated,
        journal
            .events()
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Admit { .. }))
            .count() as u64
    );

    // Where the replayer calls the same shrunken shape a DIVERGENCE
    // (verification failed), the planner calls it DATA: each admission the
    // smaller fleet turns away is an admitted-now-rejected flip.
    let shrunk = shape.clone().scale_capacity(1.0 / CAPACITY as f64);
    let report = PlanRun::new(&spec, &journal, &shrunk)
        .execute()
        .expect("plans");
    assert!(report.count(FlipKind::AdmittedNowRejected) > 0);
    assert!(!report.is_clean());
    // Bookkeeping stays balanced: every recorded release either applied or
    // was skipped because its admission flipped away.
    assert_eq!(
        report.releases_applied + report.releases_skipped,
        journal
            .events()
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Release { .. }))
            .count() as u64
    );

    // A sweep over capacity scales finds the recorded shape (or smaller)
    // as its clean frontier, deterministically across worker counts.
    let grid = PlanSweep::grid(&shape, &[], &[1.0 / 3.0, 2.0 / 3.0, 1.0], &[]);
    let run = |workers: usize| {
        PlanSweep::new(&spec, &journal)
            .shapes(grid.clone())
            .workers(workers)
            .execute()
            .expect("sweeps")
    };
    let eight = run(8);
    let clean = eight.smallest_clean_report().expect("identity is clean");
    assert!(clean.shape.total_capacity() <= shape.total_capacity());
    let one = run(1);
    assert_eq!(one.reports, eight.reports);
    assert_eq!(one.smallest_clean, eight.smallest_clean);
}

/// Records the seeded workload into a segmented WAL directory (tiny
/// segments, so the recording crosses many rotation boundaries) and
/// returns `(dir, recorded outcome sequence, residents at end)`.
fn record_wal(name: &str) -> (std::path::PathBuf, Vec<String>, usize) {
    use runtime::{FsyncPolicy, WalConfig};

    let dir =
        std::env::temp_dir().join(format!("probcon-replay-wal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_config = WalConfig {
        segment_max_entries: 32,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: 16,
        keep_snapshots: 1,
    };
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");
    let journal = Journal::create_wal(
        &dir,
        FleetManager::stamped_header(&config(), header()),
        wal_config,
    )
    .expect("fresh WAL");
    let fleet = FleetManager::with_journal(spec.clone(), config(), journal).expect("fleet");
    run_fleet_requests(
        &fleet,
        seeded_fleet_requests(&spec, GROUPS, REQUESTS, SEED),
        1,
    );
    fleet.journal().sync().expect("sync");
    assert_eq!(fleet.journal().io_errors(), 0, "no append may fail");
    let outcomes = outcome_sequence(fleet.journal());
    let residents = fleet.resident_count();
    fleet.stop();
    (dir, outcomes, residents)
}

#[test]
fn wal_recording_recovers_restores_and_replays_equivalently() {
    use runtime::{FsyncPolicy, WalConfig};

    let (dir, recorded_outcomes, recorded_residents) = record_wal("recover");
    let wal_config = WalConfig {
        segment_max_entries: 32,
        fsync: FsyncPolicy::OnRotate,
        tail_entries: 16,
        keep_snapshots: 1,
    };
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");

    // Restart path: reopen the directory and RECOVER a live fleet from it —
    // the same residents hold the same capacity as when the recorder died.
    let (journal, recovery) = Journal::open_wal(&dir, wal_config).expect("reopen");
    assert_eq!(
        recovery.truncated_bytes, 0,
        "clean shutdown leaves no torn tail"
    );
    let recovered = FleetManager::recover(spec.clone(), config(), journal).expect("recover");
    assert_eq!(recovered.resident_count(), recorded_residents);
    recovered.stop();

    // Replay path: the WAL directory loads like any journal file and
    // verifies outcome-for-outcome.
    let (loaded, _) = Journal::load(&dir).expect("load dir");
    assert_eq!(outcome_sequence(&loaded), recorded_outcomes);
    loaded
        .verify()
        .expect("checksums hold across segment files");
    let stats = loaded.wal_stats().expect("wal-backed");
    assert!(stats.segments > 3, "tiny segments must rotate: {stats:?}");
    let (report, replayed) = JournalReplayer::new(&spec)
        .replay(&loaded, config())
        .expect("replay");
    assert!(report.is_equivalent(), "{}", report.render());
    assert_eq!(report.restored, 0, "no checkpoint yet");
    assert_eq!(replayed.resident_count(), recorded_residents);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_wal_replays_from_snapshot_and_plans_identity_with_zero_flips() {
    use runtime::{fold_checkpoint, FleetShape, PlanRun};

    let (dir, _, recorded_residents) = record_wal("checkpoint");
    let spec = workload_with(SEED, APPS, &GeneratorConfig::with_actors(ACTORS)).expect("workload");

    // Install a checkpoint folding the FIRST HALF of the history, so the
    // replay exercises both paths: snapshot restore, then entry replay.
    let (loaded, _) = Journal::load(&dir).expect("load dir");
    let entries = loaded.try_entries().expect("entries");
    let mid = entries.len() / 2;
    let checkpoint = fold_checkpoint(None, &entries[..mid]);
    assert!(!checkpoint.residents.is_empty(), "midpoint holds residents");
    loaded
        .install_checkpoint(checkpoint.clone())
        .expect("install");
    assert_eq!(loaded.base_seq(), checkpoint.upto_seq);
    drop(loaded);

    // A fresh load starts from the snapshot: fewer entries, same outcome.
    let (compacted, _) = Journal::load(&dir).expect("reload");
    assert_eq!(compacted.base_seq(), checkpoint.upto_seq);
    assert!(compacted.len() < entries.len());
    let (report, replayed) = JournalReplayer::new(&spec)
        .replay(&compacted, config())
        .expect("replay from snapshot");
    assert!(report.is_equivalent(), "{}", report.render());
    assert_eq!(report.restored, checkpoint.residents.len());
    assert!(report.render().contains("restored"));
    assert_eq!(replayed.resident_count(), recorded_residents);

    // Acceptance anchor: the planner on a snapshotted WAL restores the
    // checkpoint first and reports ZERO flips for the identity shape.
    let shape = FleetShape::from_header(compacted.header());
    let identity = PlanRun::new(&spec, &compacted, &shape)
        .execute()
        .expect("plans");
    assert_eq!(identity.flips, vec![], "identity must not flip");
    assert_eq!(identity.restored, checkpoint.residents.len() as u64);
    assert_eq!(identity.recorded, identity.hypothetical);
    assert_eq!(replayed.resident_count(), identity.residents_at_end);

    // Full compaction folds the tail too; replay output stays unchanged
    // (the snapshot restores what the dropped entries would have rebuilt).
    let folded = compacted.compact().expect("compact");
    assert_eq!(folded.residents.len(), recorded_residents);
    drop(compacted);
    let (fully, _) = Journal::load(&dir).expect("reload compacted");
    assert_eq!(fully.len(), 0, "all history folded into the snapshot");
    let (report, replayed) = JournalReplayer::new(&spec)
        .replay(&fully, config())
        .expect("replay pure snapshot");
    assert!(report.is_equivalent(), "{}", report.render());
    assert_eq!(replayed.resident_count(), recorded_residents);
    let stats = fully.wal_stats().expect("wal-backed");
    assert_eq!(
        stats.segments, 1,
        "compaction garbage-collects covered segments"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
