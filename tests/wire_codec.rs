//! Codec equivalence properties of the remote transport: every wire
//! message round-trips **byte-exactly** through the binary codec and
//! decodes to the identical value tree through the JSON-lines codec —
//! so a `--wire json` debug session observes exactly what a binary
//! session ships, and the negotiated mode can never change a decision.

use platform::{Application, Mapping, SystemSpec, UseCase};
use proptest::prelude::*;
use runtime::remote::codec::{
    decode_message, encode_frame, BinaryCodec, JsonLinesCodec, WireCodec,
};
use runtime::remote::{
    ClientHello, ServerHello, WireBody, WireFault, WireOp, WireRequest, WireResponse,
};
use runtime::{
    AdmissionRequest, AdmissionService, Cached, FleetConfig, FleetManager, Journaled, Metered,
    RoutingPolicy, TraceRecorder, Traced,
};
use sdf::{figure2_graphs, Rational};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

/// The equivalence under test, for one message:
/// 1. binary encode → decode consumes the whole frame and yields the
///    serialized value tree;
/// 2. re-encoding the decoded tree reproduces the identical bytes
///    (byte-exact round-trip — the codec is deterministic);
/// 3. the JSON-lines twin decodes to the identical tree;
/// 4. both trees parse back into a message equal to the original.
fn assert_codecs_agree<T>(msg: &T)
where
    T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
{
    let value = msg.serialize();

    let bin = encode_frame(&BinaryCodec, msg).expect("binary encodes");
    let (bin_tree, consumed) = BinaryCodec
        .decode_value(&bin)
        .expect("binary frame decodes")
        .expect("binary frame is complete");
    assert_eq!(consumed, bin.len(), "binary decode must consume the frame");
    assert_eq!(bin_tree, value, "binary must carry the exact value tree");
    let reencoded = encode_frame(&BinaryCodec, msg).expect("binary re-encodes");
    assert_eq!(reencoded, bin, "binary encoding must be deterministic");
    let mut from_tree = Vec::new();
    BinaryCodec
        .encode_value(&bin_tree, &mut from_tree)
        .expect("decoded tree re-encodes");
    assert_eq!(from_tree, bin, "decode→encode must be byte-exact");

    let json = encode_frame(&JsonLinesCodec, msg).expect("json encodes");
    let (json_tree, json_consumed) = JsonLinesCodec
        .decode_value(&json)
        .expect("json frame decodes")
        .expect("json frame is complete");
    assert_eq!(json_consumed, json.len());
    assert_eq!(
        json_tree, bin_tree,
        "JSON and binary twins must decode identically"
    );

    let from_bin: T = decode_message(&bin_tree).expect("typed decode from binary");
    let from_json: T = decode_message(&json_tree).expect("typed decode from json");
    assert_eq!(&from_bin, msg);
    assert_eq!(&from_json, msg);
}

// ---------------------------------------------------------------------------
// Every variant once, with driven (not mocked) payloads.
// ---------------------------------------------------------------------------

#[test]
fn every_wire_op_variant_crosses_both_codecs_identically() {
    let ops = vec![
        WireOp::Admit(
            AdmissionRequest::new(1)
                .with_contract(Rational::new(3, 7))
                .with_affinity("edge-7")
                .on(2),
        ),
        WireOp::Admit(AdmissionRequest::new(0)),
        WireOp::Release(u64::MAX),
        WireOp::Snapshot,
        WireOp::Estimate {
            mask: 0b11,
            method: "order-2".parse().expect("method"),
        },
        WireOp::Journal,
        WireOp::JournalPage { from_seq: 4096 },
        WireOp::Telemetry,
        WireOp::Trace { tail: 1_000_000 },
    ];
    for (i, op) in ops.into_iter().enumerate() {
        assert_codecs_agree(&WireRequest { id: i as u64, op });
    }
}

#[test]
fn every_wire_body_variant_crosses_both_codecs_identically() {
    // Drive a real stack so the payloads are the production shapes —
    // layered snapshots, populated histograms, exact rational periods —
    // not hand-mocked skeletons.
    let spec = spec();
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet");
    let recorder = Arc::new(TraceRecorder::new(64));
    let stack = Traced::with_recorder(
        Metered::new(Journaled::new(Cached::new(fleet, 16))),
        Arc::clone(&recorder),
    );
    let decision = stack.admit(&AdmissionRequest::new(0)).expect("admits");
    let resident = decision.resident().expect("admitted");
    let estimate = stack
        .estimate(UseCase::from_mask(0b11), "exact".parse().expect("method"))
        .expect("estimates");
    stack.release(resident).expect("releases");
    let journal = stack.inner().inner().journal();
    let page = journal.render_page(0, 2).expect("page");
    let mut telemetry = stack.telemetry();
    // The trailing-Option field, populated: an elastic controller's
    // status must survive both codecs (and its absence must too — the
    // bare telemetry() above starts as None and is covered below).
    telemetry.autoscaler = Some(runtime::AutoscalerStatus {
        policy: "target-band".to_string(),
        ticks: 17,
        utilisation: 0.625,
        high_streak: 2,
        low_streak: 0,
        cooldown_left: 3,
        last_decision: None,
        applied: 1,
        refused: 0,
    });

    let bodies = vec![
        WireBody::Decision(decision),
        WireBody::Released,
        WireBody::Snapshot(stack.snapshot()),
        WireBody::Estimate((*estimate).clone()),
        WireBody::Journal(journal.render()),
        WireBody::JournalPage(page),
        WireBody::Telemetry(Box::new(telemetry)),
        WireBody::Telemetry(Box::new(stack.telemetry())),
        WireBody::Trace(stack.trace_tail(64)),
        WireBody::Error(WireFault::NoWorkload),
        WireBody::Error(WireFault::UnknownResident(42)),
        WireBody::Error(WireFault::UnknownDomain(7)),
        WireBody::Error(WireFault::Stopped),
        WireBody::Error(WireFault::QueueFull),
        WireBody::Error(WireFault::Config("no journal".to_string())),
        WireBody::Error(WireFault::Analysis("period diverged".to_string())),
        WireBody::Error(WireFault::Transport("truncated frame".to_string())),
    ];
    for (i, body) in bodies.into_iter().enumerate() {
        assert_codecs_agree(&WireResponse { id: i as u64, body });
    }
}

#[test]
fn hellos_cross_both_codecs_identically() {
    // Hellos are JSON-framed on the wire, but the codec equivalence must
    // hold for them regardless — including the skip_none `wire` field in
    // both states and a populated workload spec.
    for wire in [None, Some("binary".to_string()), Some("json".to_string())] {
        assert_codecs_agree(&ClientHello {
            magic: "probcon-remote".to_string(),
            version: 4,
            client: Some("bench-7".to_string()),
            wire: wire.clone(),
        });
        assert_codecs_agree(&ServerHello {
            magic: "probcon-remote".to_string(),
            version: 4,
            workload: Some(spec()),
            domains: 3,
            wire,
        });
    }
}

// ---------------------------------------------------------------------------
// Randomized properties.
// ---------------------------------------------------------------------------

/// Printable ASCII strings of up to 48 bytes.
fn printable() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..48)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

proptest! {
    #[test]
    fn random_admit_requests_cross_identically(
        id in 0u64..=u64::MAX,
        app in 0usize..64,
        num in -5_000i128..5_000,
        den in 1i128..5_000,
        with_contract in (0u8..2).prop_map(|b| b == 1),
        affinity in (0usize..4, printable()).prop_map(|(k, s)| (k == 0).then_some(s)),
        target in (0usize..4, 0usize..16).prop_map(|(k, d)| (k == 0).then_some(d)),
    ) {
        let mut request = AdmissionRequest::new(app);
        if with_contract {
            // Exact rational contracts: the binary codec must carry the
            // reduced numerator/denominator without quantisation.
            request = request.with_contract(Rational::new(num, den));
        }
        request.affinity = affinity;
        request.target = target;
        assert_codecs_agree(&WireRequest { id, op: WireOp::Admit(request) });
    }

    #[test]
    fn random_faults_and_scalars_cross_identically(
        id in 0u64..=u64::MAX,
        resident in 0u64..=u64::MAX,
        msg in printable(),
        pick in 0usize..4,
    ) {
        let fault = match pick {
            0 => WireFault::UnknownResident(resident),
            1 => WireFault::Config(msg.clone()),
            2 => WireFault::Analysis(msg.clone()),
            _ => WireFault::Transport(msg.clone()),
        };
        assert_codecs_agree(&WireResponse { id, body: WireBody::Error(fault) });
        assert_codecs_agree(&WireRequest { id, op: WireOp::Release(resident) });
        assert_codecs_agree(&WireRequest { id, op: WireOp::JournalPage { from_seq: resident } });
    }
}

// ---------------------------------------------------------------------------
// Span-context wire compatibility.
// ---------------------------------------------------------------------------

/// The `span` field of [`AdmissionRequest`] is trailing and skip-none: a
/// peer that predates spans ships frames without the key, and those
/// frames round-trip unchanged on both codecs — span propagation can
/// never break interop with v3/v4 peers.
#[test]
fn span_context_field_is_wire_backward_compatible() {
    use runtime::SpanContext;

    // A span-less request serializes WITHOUT the key — byte-identical to
    // what a pre-span peer ships.
    let bare = AdmissionRequest::new(3)
        .with_contract(Rational::new(1, 300))
        .with_affinity("edge-7");
    assert!(bare.span.is_none());
    let json = encode_frame(
        &JsonLinesCodec,
        &WireRequest {
            id: 9,
            op: WireOp::Admit(bare.clone()),
        },
    )
    .expect("encodes");
    let text = String::from_utf8(json).expect("json frames are utf-8");
    assert!(
        !text.contains("span"),
        "span-less requests must omit the field entirely: {text}"
    );

    // A frame missing the key (as an old peer would send it) decodes to
    // span: None and re-encodes byte-identically, through both codecs.
    assert_codecs_agree(&WireRequest {
        id: 9,
        op: WireOp::Admit(bare),
    });

    // And a span-carrying request survives both codecs with its causal
    // identity intact — including the nested skip-none parent id in both
    // states (a root has no parent; a child does).
    let root = SpanContext::root();
    for context in [root, root.child()] {
        let mut traced = AdmissionRequest::new(1);
        traced.span = Some(context);
        let request = WireRequest {
            id: 10,
            op: WireOp::Admit(traced),
        };
        assert_codecs_agree(&request);
        let bytes = encode_frame(&BinaryCodec, &request).expect("encodes");
        let (tree, _) = BinaryCodec
            .decode_value(&bytes)
            .expect("decodes")
            .expect("complete");
        let back: WireRequest = decode_message(&tree).expect("typed decode");
        match back.op {
            WireOp::Admit(request) => assert_eq!(request.span, Some(context)),
            other => panic!("unexpected op: {other:?}"),
        }
    }
}
