//! Failure-mode tests of the `runtime::remote` transport: truncated
//! frames, malformed JSON, protocol-version mismatches and mid-flight
//! disconnects. The invariant under test throughout: **client completions
//! resolve with typed errors, they never hang** — every scenario runs
//! under the same watchdog the runtime stress tests use, so a wedged
//! transport fails the suite instead of freezing it.

use platform::{Application, Mapping, SystemSpec};
use runtime::{
    AdmissionRequest, AdmissionService, Completion, Endpoint, FleetConfig, FleetManager,
    RemoteClient, RemoteServer, RemoteServerConfig, RoutingPolicy, ServiceError, WireMode,
    REMOTE_PROTOCOL_VERSION,
};
use sdf::figure2_graphs;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

/// Runs `f` on a fresh thread and fails the test if it does not finish
/// within [`WATCHDOG`] — a hanging completion would block forever
/// otherwise.
fn with_watchdog<F: FnOnce() + Send + 'static>(f: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).expect("watchdog receiver lives");
    });
    rx.recv_timeout(WATCHDOG)
        .expect("transport test hung: watchdog expired");
    worker.join().expect("transport test panicked");
}

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

fn fleet(groups: usize, capacity: usize) -> FleetManager {
    FleetManager::new(
        spec(),
        FleetConfig::uniform(groups, 1, capacity, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet")
}

fn serve(groups: usize, capacity: usize) -> RemoteServer {
    RemoteServer::bind_with(
        &"tcp:127.0.0.1:0".parse().expect("addr"),
        Arc::new(fleet(groups, capacity)),
        None,
        RemoteServerConfig {
            // Tight stall budget so truncation tests conclude quickly.
            stall_timeout: Duration::from_millis(300),
            handshake_timeout: Duration::from_secs(2),
            ..RemoteServerConfig::default()
        },
    )
    .expect("server binds")
}

/// Raw TCP connection to a server, for speaking the protocol incorrectly
/// on purpose. Performs a valid handshake first (the failure under test
/// comes after it).
fn raw_handshaken(server: &RemoteServer) -> TcpStream {
    let Endpoint::Tcp(hostport) = server.local_addr().clone() else {
        panic!("tcp server expected");
    };
    let mut conn = TcpStream::connect(hostport.as_str()).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let hello = format!("{{\"magic\":\"probcon-remote\",\"version\":{REMOTE_PROTOCOL_VERSION}}}");
    writeln!(conn, "{} {hello}", hello.len()).expect("hello frame");
    read_one_frame(&mut conn).expect("server hello arrives");
    conn
}

/// Reads one `LEN JSON\n` frame, returning its payload (None on EOF).
fn read_one_frame(conn: &mut TcpStream) -> Option<String> {
    let mut prefix = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if conn.read(&mut byte).ok()? == 0 {
            return None;
        }
        if byte[0] == b' ' {
            break;
        }
        prefix.push(byte[0]);
    }
    let len: usize = String::from_utf8(prefix).ok()?.parse().ok()?;
    let mut payload = vec![0u8; len + 1]; // + newline
    conn.read_exact(&mut payload).ok()?;
    payload.pop();
    String::from_utf8(payload).ok()
}

/// A fake "server" accepting one connection and running `script` on it —
/// for failure modes a real server never produces (bogus version, garbage
/// responses, mid-flight death).
fn fake_server<F>(script: F) -> Endpoint
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("fake server binds");
    let addr = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
    std::thread::spawn(move || {
        if let Ok((conn, _)) = listener.accept() {
            script(conn);
        }
    });
    addr
}

/// Reads the client hello off a fake-server connection.
fn consume_client_hello(conn: &mut TcpStream) {
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let _ = read_one_frame(conn).expect("client hello arrives");
}

// ---------------------------------------------------------------------------
// Truncated frames.
// ---------------------------------------------------------------------------

#[test]
fn server_survives_truncated_frame_and_keeps_serving() {
    with_watchdog(|| {
        let server = serve(1, 2);

        // A frame whose declared length exceeds what is ever sent, then
        // silence: the server must cut the connection as truncated ...
        let mut evil = raw_handshaken(&server);
        evil.write_all(b"400 {\"id\":1,").expect("partial frame");
        evil.flush().expect("flush");
        let mut rest = Vec::new();
        let _ = evil.read_to_end(&mut rest); // server answers an error frame and/or closes
        drop(evil);

        // ... and keep serving well-formed clients afterwards.
        let client = RemoteClient::connect(server.local_addr()).expect("real client connects");
        let decision = client
            .admit(&AdmissionRequest::new(0))
            .expect("healthy connection still decides");
        assert!(decision.is_admitted());
        client.close();
        // Handlers are joined by shutdown; only then are stats reliable.
        server.shutdown();
        assert!(server.stats().protocol_errors >= 1, "{:?}", server.stats());
    });
}

#[test]
fn client_resolves_on_truncated_response() {
    with_watchdog(|| {
        let addr = fake_server(|mut conn| {
            consume_client_hello(&mut conn);
            let hello = format!(
                "{{\"magic\":\"probcon-remote\",\"version\":{REMOTE_PROTOCOL_VERSION},\
                 \"workload\":null,\"domains\":1}}"
            );
            writeln!(conn, "{} {hello}", hello.len()).expect("server hello");
            // Read the admit request, answer with a truncated frame, die.
            let _ = read_one_frame(&mut conn);
            conn.write_all(b"999 {\"id\":1,\"body\"")
                .expect("truncated");
            conn.flush().expect("flush");
            // Connection drops here.
        });
        let client = RemoteClient::connect(&addr).expect("handshake succeeds");
        let completion = AdmissionService::submit(&client, AdmissionRequest::new(0));
        // The completion resolves with a typed transport error — no hang.
        match completion.wait() {
            Err(ServiceError::Transport(msg)) => {
                assert!(msg.contains("truncated"), "unexpected reason: {msg}");
            }
            other => panic!("expected transport error, got {other:?}"),
        }
        assert!(client.broken().is_some());
    });
}

// ---------------------------------------------------------------------------
// Malformed JSON.
// ---------------------------------------------------------------------------

#[test]
fn server_answers_malformed_json_with_typed_error() {
    with_watchdog(|| {
        let server = serve(1, 2);
        let mut evil = raw_handshaken(&server);
        // Correct framing (16 payload bytes declared and sent), garbage
        // payload — this must reach the serde branch, not the framing one.
        evil.write_all(b"16 this is not json\n").expect("bad frame");
        evil.flush().expect("flush");
        let reply = read_one_frame(&mut evil).expect("server answers before closing");
        assert!(
            reply.contains("Error") && reply.contains("\"id\":0"),
            "expected an uncorrelated error frame, got: {reply}"
        );
        // Handlers are joined by shutdown; only then is the stat reliable.
        server.shutdown();
        assert_eq!(server.stats().protocol_errors, 1);
    });
}

#[test]
fn client_fails_pending_on_malformed_response() {
    with_watchdog(|| {
        let addr = fake_server(|mut conn| {
            consume_client_hello(&mut conn);
            let hello = format!(
                "{{\"magic\":\"probcon-remote\",\"version\":{REMOTE_PROTOCOL_VERSION},\
                 \"workload\":null,\"domains\":1}}"
            );
            writeln!(conn, "{} {hello}", hello.len()).expect("server hello");
            let _ = read_one_frame(&mut conn);
            conn.write_all(b"9 not-json!\n").expect("garbage");
            conn.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(200));
        });
        let client = RemoteClient::connect(&addr).expect("handshake succeeds");
        let completion = AdmissionService::submit(&client, AdmissionRequest::new(0));
        match completion.wait() {
            Err(ServiceError::Transport(msg)) => {
                assert!(msg.contains("malformed"), "unexpected reason: {msg}");
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    });
}

// ---------------------------------------------------------------------------
// Protocol-version mismatch.
// ---------------------------------------------------------------------------

#[test]
fn client_rejects_future_server_version_naming_both() {
    with_watchdog(|| {
        let future = REMOTE_PROTOCOL_VERSION + 41;
        let addr = fake_server(move |mut conn| {
            consume_client_hello(&mut conn);
            let hello = format!(
                "{{\"magic\":\"probcon-remote\",\"version\":{future},\
                 \"workload\":null,\"domains\":1}}"
            );
            writeln!(conn, "{} {hello}", hello.len()).expect("server hello");
        });
        match RemoteClient::connect(&addr) {
            Err(ServiceError::Transport(msg)) => {
                assert!(
                    msg.contains("version mismatch")
                        && msg.contains(&REMOTE_PROTOCOL_VERSION.to_string())
                        && msg.contains(&future.to_string()),
                    "mismatch error must name both versions: {msg}"
                );
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    });
}

#[test]
fn server_rejects_stale_client_version_but_keeps_serving() {
    with_watchdog(|| {
        let server = serve(1, 2);
        let Endpoint::Tcp(hostport) = server.local_addr().clone() else {
            panic!("tcp server expected");
        };
        let mut stale = TcpStream::connect(hostport.as_str()).expect("connects");
        stale
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let hello = "{\"magic\":\"probcon-remote\",\"version\":99}";
        writeln!(stale, "{} {hello}", hello.len()).expect("stale hello");
        // The server answers naming its own version, then closes.
        let reply = read_one_frame(&mut stale).expect("server answers");
        assert!(
            reply.contains(&format!("\"version\":{REMOTE_PROTOCOL_VERSION}")),
            "reply must name the server version: {reply}"
        );
        let mut rest = Vec::new();
        assert_eq!(stale.read_to_end(&mut rest).unwrap_or(0), 0, "then EOF");

        // Compatible clients are unaffected.
        let client = RemoteClient::connect(server.local_addr()).expect("connects");
        assert!(client.admit(&AdmissionRequest::new(0)).is_ok());
        client.close();
        // Handlers are joined by shutdown; only then are stats reliable.
        server.shutdown();
        assert_eq!(server.stats().handshake_rejects, 1);
    });
}

// ---------------------------------------------------------------------------
// Server disconnect mid-flight.
// ---------------------------------------------------------------------------

#[test]
fn mid_flight_disconnect_resolves_every_completion() {
    with_watchdog(|| {
        // A fake server that reads a few requests, answers none, and dies
        // with admissions still in flight.
        let addr = fake_server(|mut conn| {
            consume_client_hello(&mut conn);
            let hello = format!(
                "{{\"magic\":\"probcon-remote\",\"version\":{REMOTE_PROTOCOL_VERSION},\
                 \"workload\":null,\"domains\":2}}"
            );
            writeln!(conn, "{} {hello}", hello.len()).expect("server hello");
            for _ in 0..3 {
                let _ = read_one_frame(&mut conn);
            }
            // Dies without answering anything.
        });
        let client = RemoteClient::connect(&addr).expect("handshake succeeds");
        let in_flight: Vec<Completion> = (0..8)
            .map(|i| AdmissionService::submit(&client, AdmissionRequest::new(i)))
            .collect();
        for completion in in_flight {
            match completion.wait() {
                Err(ServiceError::Transport(_)) => {}
                other => panic!("expected transport error, got {other:?}"),
            }
        }
        // Later submissions fail fast instead of queueing into the void.
        assert!(matches!(
            client.admit(&AdmissionRequest::new(0)).unwrap_err(),
            ServiceError::Transport(_)
        ));
    });
}

#[test]
fn wedged_server_fails_completions_at_the_response_deadline() {
    with_watchdog(|| {
        // A server that handshakes, then stays connected but answers
        // nothing — the worst case for a client without a deadline, since
        // the connection never closes.
        let addr = fake_server(|mut conn| {
            consume_client_hello(&mut conn);
            let hello = format!(
                "{{\"magic\":\"probcon-remote\",\"version\":{REMOTE_PROTOCOL_VERSION},\
                 \"workload\":null,\"domains\":1}}"
            );
            writeln!(conn, "{} {hello}", hello.len()).expect("server hello");
            std::thread::sleep(Duration::from_secs(30)); // wedged
        });
        let client = RemoteClient::connect_with(
            &addr,
            Duration::from_secs(5),
            Some(Duration::from_millis(300)),
        )
        .expect("handshake succeeds");
        let completion = AdmissionService::submit(&client, AdmissionRequest::new(0));
        match completion.wait() {
            Err(ServiceError::Transport(msg)) => {
                assert!(
                    msg.contains("stopped responding"),
                    "unexpected reason: {msg}"
                );
            }
            other => panic!("expected transport error, got {other:?}"),
        }
        assert!(client.broken().is_some());
    });
}

#[test]
fn real_server_shutdown_mid_burst_resolves_every_completion() {
    with_watchdog(|| {
        let server = serve(4, 8);
        let client = RemoteClient::connect(server.local_addr()).expect("connects");
        let burst: Vec<Completion> = (0..64)
            .map(|i| AdmissionService::submit(&client, AdmissionRequest::new(i)))
            .collect();
        // Shut down with the burst (partially) in flight: drained frames
        // get decisions, the rest typed transport errors — all resolve.
        server.shutdown();
        let mut decided = 0usize;
        let mut failed = 0usize;
        for completion in burst {
            match completion.wait() {
                Ok(_) => decided += 1,
                Err(ServiceError::Transport(_)) => failed += 1,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert_eq!(decided + failed, 64);
        client.close();
    });
}

// ---------------------------------------------------------------------------
// Client close racing pipelined submissions.
// ---------------------------------------------------------------------------

#[test]
fn close_with_pipelined_submissions_outstanding_resolves_not_hangs() {
    with_watchdog(|| {
        // A server that handshakes, then swallows requests and answers
        // nothing — so every submitted completion is still outstanding
        // when close() runs. close() must cut the socket even while a
        // concurrent submit holds the writer mid-write, and every
        // completion must resolve with a typed transport error.
        let addr = fake_server(|mut conn| {
            consume_client_hello(&mut conn);
            let hello = format!(
                "{{\"magic\":\"probcon-remote\",\"version\":{REMOTE_PROTOCOL_VERSION},\
                 \"workload\":null,\"domains\":1}}"
            );
            writeln!(conn, "{} {hello}", hello.len()).expect("server hello");
            let mut sink = [0u8; 4096];
            while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
        });
        let client = Arc::new(RemoteClient::connect(&addr).expect("handshake succeeds"));
        let in_flight: Vec<Completion> = (0..32)
            .map(|i| AdmissionService::submit(&*client, AdmissionRequest::new(i % 2)))
            .collect();
        // A second thread keeps pipelining submissions while this one
        // closes — the race under test.
        let racer = {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                (0..256)
                    .map(|i| AdmissionService::submit(&*client, AdmissionRequest::new(i % 2)))
                    .collect::<Vec<Completion>>()
            })
        };
        client.close();
        let raced = racer.join().expect("racing submitter");
        for completion in in_flight.into_iter().chain(raced) {
            match completion.wait() {
                Err(ServiceError::Transport(_)) => {}
                other => panic!("expected transport error, got {other:?}"),
            }
        }
        assert!(client.broken().is_some());
    });
}

// ---------------------------------------------------------------------------
// Version downgrade against older servers.
// ---------------------------------------------------------------------------

#[test]
fn v4_client_downgrades_to_v3_server_transparently() {
    with_watchdog(|| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            // A v3 server refuses the v4 hello by naming the version it
            // does speak, then closes.
            let (mut conn, _) = listener.accept().expect("first connection");
            consume_client_hello(&mut conn);
            let refusal =
                "{\"magic\":\"probcon-remote\",\"version\":3,\"workload\":null,\"domains\":1}";
            writeln!(conn, "{} {refusal}", refusal.len()).expect("refusal hello");
            drop(conn);
            // The client reconnects fresh, speaking v3 this time.
            let (mut conn, _) = listener.accept().expect("second connection");
            conn.set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let hello = read_one_frame(&mut conn).expect("v3 client hello");
            tx.send(hello).expect("hello forwarded");
            let reply =
                "{\"magic\":\"probcon-remote\",\"version\":3,\"workload\":null,\"domains\":1}";
            writeln!(conn, "{} {reply}", reply.len()).expect("v3 accept");
            // Stay connected until the client hangs up.
            let mut sink = [0u8; 256];
            while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
        });
        let client = RemoteClient::connect(&addr).expect("downgrade handshake succeeds");
        // Downgraded connections always speak JSON lines.
        assert_eq!(client.wire_mode(), WireMode::Json);
        let hello = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("second hello");
        assert!(
            hello.contains("\"version\":3"),
            "reconnect must speak the server's version: {hello}"
        );
        assert!(
            !hello.contains("wire"),
            "a v3 hello must not request a codec: {hello}"
        );
        client.close();
    });
}

// ---------------------------------------------------------------------------
// Drivers over the wire.
// ---------------------------------------------------------------------------

#[test]
fn front_end_multiplexes_over_a_remote_client_unchanged() {
    // The point of "both ends are just AdmissionService": the async
    // front-end event loop drives a remote fleet exactly like a local one.
    with_watchdog(|| {
        use runtime::{FrontEnd, FrontEndConfig};
        let server = serve(2, 8);
        let client = RemoteClient::connect(server.local_addr()).expect("connects");
        let front = FrontEnd::new(
            Box::new(client),
            FrontEndConfig {
                workers: 2,
                queue_capacity: 64,
            },
        );
        let completions: Vec<Completion> = (0..10)
            .map(|i| front.submit(AdmissionRequest::new(i)))
            .collect();
        let mut residents = Vec::new();
        for completion in completions {
            residents.extend(completion.wait().expect("decision").resident());
        }
        assert_eq!(residents.len(), 10);
        for resident in residents {
            front.release(resident).expect("release lands");
        }
        let snapshot = front.snapshot();
        assert_eq!(snapshot.admitted, 10);
        assert_eq!(snapshot.released, 10);
        // The stack renders remote and front-end layers side by side.
        let table = snapshot.render();
        for needle in ["fleet", "remote", "front-end"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
        front.shutdown();
        server.shutdown();
    });
}
