//! Telemetry-subsystem integration properties: histogram shard-merge
//! equivalence, flat memory under sustained load, and trace-layer
//! transparency (a `Traced` middleware must not perturb the journal the
//! stack underneath it records).

use platform::{Application, Mapping, SystemSpec};
use proptest::prelude::*;
use runtime::telemetry::BUCKET_COUNT;
use runtime::{
    build_span_trees, run_fleet_stack, seeded_fleet_requests, AdmissionRequest, AdmissionService,
    FleetConfig, FleetManager, FrontEnd, FrontEndConfig, HistogramRecorder, Journal, Journaled,
    LatencyHistogram, Metered, RoutingPolicy, ServiceOp, SpanContext, SpanNode, TraceEvent,
    TraceKind, TraceRecorder, Traced,
};
use sdf::figure2_graphs;
use std::sync::Arc;
use std::time::Duration;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).unwrap())
        .application(Application::new("B", b).unwrap())
        .mapping(Mapping::by_actor_index(3))
        .build()
        .unwrap()
}

fn fleet() -> FleetManager {
    FleetManager::new(
        spec(),
        FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Recording a workload sharded across N histograms and merging them is
    // lossless: the merged histogram equals one that saw every sample.
    #[test]
    fn merging_shard_histograms_matches_single_recording(
        shards in prop::collection::vec(prop::collection::vec(0u64..2_000_000, 0..200), 1..8)
    ) {
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            let mut histogram = LatencyHistogram::new();
            for &sample in shard {
                histogram.record(sample);
            }
            merged.merge(&histogram);
        }
        let mut single = LatencyHistogram::new();
        for &sample in shards.iter().flatten() {
            single.record(sample);
        }
        prop_assert_eq!(merged, single);
    }

    // Every quantile the log-bucketed histogram reports stays within the
    // scheme's relative error of the exact order statistic.
    #[test]
    fn quantiles_track_exact_order_statistics(
        samples in prop::collection::vec(1u64..10_000_000, 1..300)
    ) {
        let mut histogram = LatencyHistogram::new();
        for &sample in &samples {
            histogram.record(sample);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q_num, q_den) in [(1u64, 2u64), (9, 10), (99, 100), (999, 1000)] {
            let rank = (q_num * sorted.len() as u64)
                .div_ceil(q_den)
                .clamp(1, sorted.len() as u64);
            let exact = sorted[rank as usize - 1];
            let approx = histogram.quantile(q_num as f64 / q_den as f64);
            prop_assert!(approx <= exact, "quantile floor above exact: {approx} > {exact}");
            prop_assert!(
                exact <= approx + approx / 16 + 1,
                "relative error exceeded: exact {exact}, approx {approx}"
            );
        }
    }
}

/// The Metered layer's memory no longer grows with traffic: a million
/// operations land in a fixed bucket table instead of a sample vector.
#[test]
fn metered_memory_stays_flat_over_a_million_operations() {
    let stack = Metered::new(fleet());
    for i in 0..1_000_000u64 {
        // Unknown-resident releases: cheap, typed, and still metered.
        let _ = stack.release(u64::MAX - (i % 17));
    }
    let histogram = stack.histogram(ServiceOp::Release);
    assert_eq!(histogram.count(), 1_000_000);
    assert!(
        histogram.bucket_len() <= BUCKET_COUNT,
        "histogram grew beyond its fixed bucket table: {} > {BUCKET_COUNT}",
        histogram.bucket_len()
    );
}

fn drive(stack: &dyn AdmissionService, fleet: &FleetManager) {
    let stream = seeded_fleet_requests(&spec(), 2, 250, 17);
    let _ = run_fleet_stack(stack, fleet, stream, 1);
}

/// Renders a journal's entries with timestamps zeroed — the only field
/// that legitimately differs between two otherwise-identical runs (and the
/// one field the per-entry checksum deliberately excludes).
fn rendered_without_timestamps(journal: &Journal) -> Vec<String> {
    journal.with_entries(|entries| {
        entries
            .iter()
            .map(|entry| {
                let mut entry = entry.clone();
                entry.timestamp_micros = 0;
                serde_json::to_string(&entry).unwrap()
            })
            .collect()
    })
}

/// Wrapping a journaling stack in `Traced` changes nothing the journal
/// records: same events, same checksums, byte-identical rendering modulo
/// wall-clock timestamps.
#[test]
fn traced_layer_is_journal_transparent() {
    let plain_fleet = fleet();
    let plain = Journaled::new(plain_fleet.clone());
    drive(&plain, &plain_fleet);

    let traced_fleet = fleet();
    let traced = Traced::new(Journaled::new(traced_fleet.clone()), 1024);
    drive(&traced, &traced_fleet);

    assert_eq!(
        rendered_without_timestamps(plain.journal()),
        rendered_without_timestamps(traced.inner().journal()),
    );
    // The single-threaded seeded run is deterministic end to end, so the
    // two fleets' internal journals agree event-for-event too.
    assert_eq!(
        plain_fleet.journal().events(),
        traced_fleet.journal().events()
    );
    // ... and the recorder actually saw the run it did not perturb.
    assert!(traced.recorder().recorded() > 0);
}

/// The lock-free recorder's snapshot matches a directly-recorded histogram
/// and keeps its fixed footprint regardless of sample count.
#[test]
fn recorder_snapshot_is_bounded_and_faithful() {
    let recorder = HistogramRecorder::new();
    let mut direct = LatencyHistogram::new();
    for i in 0..100_000u64 {
        let sample = (i * 7919) % 3_000_000;
        recorder.record(sample);
        direct.record(sample);
    }
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot, direct);
    assert!(snapshot.bucket_len() <= BUCKET_COUNT);
}

/// The `autoscaler` status is a trailing skip-none field of
/// `TelemetrySnapshot`: a controller-less snapshot serializes WITHOUT it
/// (so historical consumers and recordings see identical bytes), an
/// autoscaled one round-trips it through the wire JSON, and old-format
/// JSON missing the field still parses.
#[test]
fn telemetry_snapshot_autoscaler_field_is_wire_compatible() {
    use runtime::{Autoscaled, Autoscaler, ScalePolicy, TelemetrySnapshot};
    use std::sync::Arc;

    let fleet = fleet();
    let bare = Metered::new(fleet.clone());
    let without = bare.telemetry();
    let json_without = serde_json::to_string(&without).expect("serializes");
    assert!(
        !json_without.contains("autoscaler"),
        "controller-less snapshots must omit the field: {json_without}"
    );

    // Old-format JSON (no `autoscaler` key) parses to None.
    let parsed: TelemetrySnapshot = serde_json::from_str(&json_without).expect("parses");
    assert_eq!(parsed, without);
    assert!(parsed.autoscaler.is_none());

    // An autoscaled stack stamps the status, and it survives the wire.
    let controller = Arc::new(Autoscaler::new(
        Arc::new(fleet.clone()),
        ScalePolicy::Manual,
    ));
    let stack = Autoscaled::new(Metered::new(fleet), controller);
    let with = stack.telemetry();
    let status = with
        .autoscaler
        .clone()
        .expect("autoscaled stack stamps status");
    assert_eq!(status.policy, "manual");
    let json_with = serde_json::to_string(&with).expect("serializes");
    let roundtrip: TelemetrySnapshot = serde_json::from_str(&json_with).expect("parses");
    assert_eq!(roundtrip, with);
    assert!(roundtrip.render().contains("autoscaler["));
}

// ---------------------------------------------------------------------------
// Span-tree reconstruction.
// ---------------------------------------------------------------------------

/// One synthetic request's span tree: `parents[i]` is the parent of node
/// `i + 2` (node indices start at 1; node 1 always hangs off the
/// unrecorded origin span, like the server-side chain hangs off the
/// remote client's root).
fn synthetic_request_events(
    request: usize,
    parents: &[usize],
    next_span: &mut u64,
) -> Vec<TraceEvent> {
    let trace_id = 1_000 + request as u64;
    let origin = 900_000 + request as u64;
    let node_count = parents.len() + 1;
    // parent span id and depth per node, 1-indexed.
    let mut span_ids = vec![0u64; node_count + 1];
    let mut depths = vec![0usize; node_count + 1];
    let mut events = Vec::new();
    for node in 1..=node_count {
        *next_span += 1;
        span_ids[node] = *next_span;
        let parent = if node == 1 { 0 } else { parents[node - 2] };
        depths[node] = if parent == 0 { 1 } else { depths[parent] + 1 };
        // Strictly nested intervals: each level starts later and ends
        // earlier than its parent, well clear of any other request.
        let base = request as u64 * 1_000_000;
        let start = base + depths[node] as u64 * 1_000 + node as u64;
        let end = base + 900_000 - depths[node] as u64 * 1_000 - node as u64;
        let context = SpanContext {
            trace_id,
            span_id: span_ids[node],
            parent_span_id: Some(if parent == 0 {
                origin
            } else {
                span_ids[parent]
            }),
        };
        let mut event = TraceEvent::new(TraceKind::Admit)
            .app(request)
            .span(context)
            .duration(Duration::from_micros(end - start));
        event.at_micros = end;
        events.push(event);
    }
    events
}

/// `slack_micros` absorbs clock skew on real pipelines: parent and child
/// durations are measured by independent `Instant` timers, so a child's
/// reconstructed start can land a few microseconds before its parent's.
/// Synthetic forests use zero slack (exact nesting by construction).
fn assert_node_well_formed(node: &SpanNode, trace_id: u64, slack_micros: u64) {
    let start = node
        .event
        .at_micros
        .saturating_sub(node.event.duration_micros);
    assert_eq!(node.event.trace_id, Some(trace_id));
    for child in &node.children {
        assert_eq!(
            child.event.parent_span_id, node.event.span_id,
            "child must point at its parent's span"
        );
        let child_start = child
            .event
            .at_micros
            .saturating_sub(child.event.duration_micros);
        assert!(
            child_start + slack_micros >= start && child.event.at_micros <= node.event.at_micros,
            "child interval [{child_start}, {}] must nest inside parent [{start}, {}]",
            child.event.at_micros,
            node.event.at_micros
        );
        assert_node_well_formed(child, trace_id, slack_micros);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Reconstructing span trees from a flat (and interleaved) event ring
    // is well-formed: one tree per request, exactly one root per tree
    // (the span whose parent — the origin — was never recorded), every
    // non-root attached to its recorded parent, and child intervals
    // nested inside their parents'.
    #[test]
    fn reconstructed_span_trees_are_well_formed(
        shapes in prop::collection::vec(prop::collection::vec(0usize..100, 0..5), 1..7)
    ) {
        let mut next_span = 0u64;
        let mut per_request: Vec<Vec<TraceEvent>> = Vec::new();
        for (request, raw) in shapes.iter().enumerate() {
            // Node i+2's parent is any earlier node (1-indexed), so the
            // tree is connected under node 1 by construction.
            let parents: Vec<usize> = raw
                .iter()
                .enumerate()
                .map(|(i, &pick)| 1 + pick % (i + 1))
                .collect();
            per_request.push(synthetic_request_events(request, &parents, &mut next_span));
        }
        // Interleave the requests' events the way concurrent requests
        // land in the ring: round-robin across requests, not grouped.
        let mut events = Vec::new();
        let deepest = per_request.iter().map(Vec::len).max().unwrap_or(0);
        for slot in 0..deepest {
            for request in &per_request {
                if let Some(event) = request.get(slot) {
                    events.push(event.clone());
                }
            }
        }

        let trees = build_span_trees(&events);
        prop_assert_eq!(trees.len(), shapes.len(), "one tree per request");
        let mut total = 0usize;
        for tree in &trees {
            let request = (tree.trace_id - 1_000) as usize;
            prop_assert_eq!(
                tree.roots.len(), 1,
                "exactly one root per request (the origin's only child)"
            );
            prop_assert_eq!(
                tree.roots[0].event.parent_span_id,
                Some(900_000 + request as u64),
                "the root's parent is the unrecorded origin span"
            );
            prop_assert_eq!(tree.len(), shapes[request].len() + 1, "no span lost");
            for root in &tree.roots {
                assert_node_well_formed(root, tree.trace_id, 0);
            }
            total += tree.len();
        }
        prop_assert_eq!(total, events.len(), "every spanned event lands in a tree");
    }
}

/// Driving real requests through the front end yields one trace per
/// request: the queue wait and the decision both parent onto the root
/// span minted at submit, and the fleet's innermost span hangs off the
/// traced layer's decision span.
#[test]
fn front_end_submissions_build_one_trace_per_request() {
    let fleet = fleet();
    let recorder = Arc::new(TraceRecorder::new(4096));
    fleet.attach_trace(Arc::clone(&recorder));
    let stack = Traced::with_recorder(Metered::new(fleet.clone()), Arc::clone(&recorder));
    let front = FrontEnd::traced(
        Box::new(stack),
        FrontEndConfig {
            workers: 2,
            ..FrontEndConfig::default()
        },
        Arc::clone(&recorder),
    );
    let requests = 12usize;
    let completions: Vec<_> = (0..requests)
        .map(|i| front.submit(AdmissionRequest::new(i % 2)))
        .collect();
    for completion in &completions {
        let _ = completion.wait();
    }
    front.shutdown();

    let events = recorder.tail(recorder.len());
    let trees = build_span_trees(&events);
    assert_eq!(trees.len(), requests, "one trace per submitted request");
    for tree in &trees {
        let mut kinds = Vec::new();
        tree.walk(|event, _| {
            assert_eq!(event.trace_id, Some(tree.trace_id));
            kinds.push(event.kind);
        });
        assert!(kinds.contains(&TraceKind::QueueWait), "queue dwell traced");
        assert!(
            kinds.iter().any(|kind| matches!(
                kind,
                TraceKind::Admit | TraceKind::Reject | TraceKind::Saturate
            )),
            "decision traced: {kinds:?}"
        );
        for root in &tree.roots {
            assert_node_well_formed(root, tree.trace_id, 100);
        }
    }
}
