//! Telemetry-subsystem integration properties: histogram shard-merge
//! equivalence, flat memory under sustained load, and trace-layer
//! transparency (a `Traced` middleware must not perturb the journal the
//! stack underneath it records).

use platform::{Application, Mapping, SystemSpec};
use proptest::prelude::*;
use runtime::telemetry::BUCKET_COUNT;
use runtime::{
    run_fleet_stack, seeded_fleet_requests, AdmissionService, FleetConfig, FleetManager,
    HistogramRecorder, Journal, Journaled, LatencyHistogram, Metered, RoutingPolicy, ServiceOp,
    Traced,
};
use sdf::figure2_graphs;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).unwrap())
        .application(Application::new("B", b).unwrap())
        .mapping(Mapping::by_actor_index(3))
        .build()
        .unwrap()
}

fn fleet() -> FleetManager {
    FleetManager::new(
        spec(),
        FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Recording a workload sharded across N histograms and merging them is
    // lossless: the merged histogram equals one that saw every sample.
    #[test]
    fn merging_shard_histograms_matches_single_recording(
        shards in prop::collection::vec(prop::collection::vec(0u64..2_000_000, 0..200), 1..8)
    ) {
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            let mut histogram = LatencyHistogram::new();
            for &sample in shard {
                histogram.record(sample);
            }
            merged.merge(&histogram);
        }
        let mut single = LatencyHistogram::new();
        for &sample in shards.iter().flatten() {
            single.record(sample);
        }
        prop_assert_eq!(merged, single);
    }

    // Every quantile the log-bucketed histogram reports stays within the
    // scheme's relative error of the exact order statistic.
    #[test]
    fn quantiles_track_exact_order_statistics(
        samples in prop::collection::vec(1u64..10_000_000, 1..300)
    ) {
        let mut histogram = LatencyHistogram::new();
        for &sample in &samples {
            histogram.record(sample);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q_num, q_den) in [(1u64, 2u64), (9, 10), (99, 100), (999, 1000)] {
            let rank = (q_num * sorted.len() as u64)
                .div_ceil(q_den)
                .clamp(1, sorted.len() as u64);
            let exact = sorted[rank as usize - 1];
            let approx = histogram.quantile(q_num as f64 / q_den as f64);
            prop_assert!(approx <= exact, "quantile floor above exact: {approx} > {exact}");
            prop_assert!(
                exact <= approx + approx / 16 + 1,
                "relative error exceeded: exact {exact}, approx {approx}"
            );
        }
    }
}

/// The Metered layer's memory no longer grows with traffic: a million
/// operations land in a fixed bucket table instead of a sample vector.
#[test]
fn metered_memory_stays_flat_over_a_million_operations() {
    let stack = Metered::new(fleet());
    for i in 0..1_000_000u64 {
        // Unknown-resident releases: cheap, typed, and still metered.
        let _ = stack.release(u64::MAX - (i % 17));
    }
    let histogram = stack.histogram(ServiceOp::Release);
    assert_eq!(histogram.count(), 1_000_000);
    assert!(
        histogram.bucket_len() <= BUCKET_COUNT,
        "histogram grew beyond its fixed bucket table: {} > {BUCKET_COUNT}",
        histogram.bucket_len()
    );
}

fn drive(stack: &dyn AdmissionService, fleet: &FleetManager) {
    let stream = seeded_fleet_requests(&spec(), 2, 250, 17);
    let _ = run_fleet_stack(stack, fleet, stream, 1);
}

/// Renders a journal's entries with timestamps zeroed — the only field
/// that legitimately differs between two otherwise-identical runs (and the
/// one field the per-entry checksum deliberately excludes).
fn rendered_without_timestamps(journal: &Journal) -> Vec<String> {
    journal.with_entries(|entries| {
        entries
            .iter()
            .map(|entry| {
                let mut entry = entry.clone();
                entry.timestamp_micros = 0;
                serde_json::to_string(&entry).unwrap()
            })
            .collect()
    })
}

/// Wrapping a journaling stack in `Traced` changes nothing the journal
/// records: same events, same checksums, byte-identical rendering modulo
/// wall-clock timestamps.
#[test]
fn traced_layer_is_journal_transparent() {
    let plain_fleet = fleet();
    let plain = Journaled::new(plain_fleet.clone());
    drive(&plain, &plain_fleet);

    let traced_fleet = fleet();
    let traced = Traced::new(Journaled::new(traced_fleet.clone()), 1024);
    drive(&traced, &traced_fleet);

    assert_eq!(
        rendered_without_timestamps(plain.journal()),
        rendered_without_timestamps(traced.inner().journal()),
    );
    // The single-threaded seeded run is deterministic end to end, so the
    // two fleets' internal journals agree event-for-event too.
    assert_eq!(
        plain_fleet.journal().events(),
        traced_fleet.journal().events()
    );
    // ... and the recorder actually saw the run it did not perturb.
    assert!(traced.recorder().recorded() > 0);
}

/// The lock-free recorder's snapshot matches a directly-recorded histogram
/// and keeps its fixed footprint regardless of sample count.
#[test]
fn recorder_snapshot_is_bounded_and_faithful() {
    let recorder = HistogramRecorder::new();
    let mut direct = LatencyHistogram::new();
    for i in 0..100_000u64 {
        let sample = (i * 7919) % 3_000_000;
        recorder.record(sample);
        direct.record(sample);
    }
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot, direct);
    assert!(snapshot.bucket_len() <= BUCKET_COUNT);
}

/// The `autoscaler` status is a trailing skip-none field of
/// `TelemetrySnapshot`: a controller-less snapshot serializes WITHOUT it
/// (so historical consumers and recordings see identical bytes), an
/// autoscaled one round-trips it through the wire JSON, and old-format
/// JSON missing the field still parses.
#[test]
fn telemetry_snapshot_autoscaler_field_is_wire_compatible() {
    use runtime::{Autoscaled, Autoscaler, ScalePolicy, TelemetrySnapshot};
    use std::sync::Arc;

    let fleet = fleet();
    let bare = Metered::new(fleet.clone());
    let without = bare.telemetry();
    let json_without = serde_json::to_string(&without).expect("serializes");
    assert!(
        !json_without.contains("autoscaler"),
        "controller-less snapshots must omit the field: {json_without}"
    );

    // Old-format JSON (no `autoscaler` key) parses to None.
    let parsed: TelemetrySnapshot = serde_json::from_str(&json_without).expect("parses");
    assert_eq!(parsed, without);
    assert!(parsed.autoscaler.is_none());

    // An autoscaled stack stamps the status, and it survives the wire.
    let controller = Arc::new(Autoscaler::new(
        Arc::new(fleet.clone()),
        ScalePolicy::Manual,
    ));
    let stack = Autoscaled::new(Metered::new(fleet), controller);
    let with = stack.telemetry();
    let status = with
        .autoscaler
        .clone()
        .expect("autoscaled stack stamps status");
    assert_eq!(status.policy, "manual");
    let json_with = serde_json::to_string(&with).expect("serializes");
    let roundtrip: TelemetrySnapshot = serde_json::from_str(&json_with).expect("parses");
    assert_eq!(roundtrip, with);
    assert!(roundtrip.render().contains("autoscaler["));
}
