//! End-to-end validation of the stochastic execution-time extension —
//! and a demonstration of the independence caveat the paper states in
//! Section 3.1: "we have assumed that arrival of actors on a node is
//! independent. In practice, this assumption is not always valid. Resource
//! contention will inevitably make the independent actors dependent on each
//! other."
//!
//! The scenario: a blocker actor (`τ = 100`, `P = 1/2`) and a tiny victim
//! actor share a node. The model predicts the victim waits
//! `µ·P = 25` time units on average.
//!
//! * With **deterministic** execution times the coupled system phase-locks:
//!   the victim learns to arrive just after the blocker finishes and waits
//!   almost nothing — the independence assumption fails maximally.
//! * With **jittered** execution times the phases keep drifting, the
//!   independence assumption is restored, and the observed wait moves toward
//!   the stochastic model's prediction (`µ = E[X²]/2E[X]`).

use contention::{waiting_time, ActorLoad, ExecutionTime, Order};
use mpsoc_sim::{simulate, JitterConfig, SimConfig};
use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
use sdf::{ActorId, Rational, SdfGraphBuilder};

/// Blocker application: x (τ=100) on node 0 and x2 (τ=100) on node 1,
/// period 200 ⇒ P(x) = 1/2, µ(x) = 50 for constant times.
fn blocker() -> Application {
    let mut b = SdfGraphBuilder::new("blocker");
    let x = b.actor("x", 100);
    let x2 = b.actor("x2", 100);
    b.channel(x, x2, 1, 1, 0).unwrap();
    b.channel(x2, x, 1, 1, 1).unwrap();
    Application::new("blocker", b.build().unwrap()).unwrap()
}

/// Victim application: v (τ=2) on node 0, v2 (τ=188) on node 1 (period 190,
/// incommensurate with the blocker's 200).
fn victim() -> Application {
    let mut b = SdfGraphBuilder::new("victim");
    let v = b.actor("v", 2);
    let v2 = b.actor("v2", 188);
    b.channel(v, v2, 1, 1, 0).unwrap();
    b.channel(v2, v, 1, 1, 1).unwrap();
    Application::new("victim", b.build().unwrap()).unwrap()
}

fn spec() -> SystemSpec {
    SystemSpec::builder()
        .application(blocker())
        .application(victim())
        .mapping(Mapping::by_actor_index(2))
        .build()
        .unwrap()
}

fn observed_victim_wait(jitter: Option<JitterConfig>) -> f64 {
    let mut cfg = SimConfig::with_horizon(2_000_000);
    cfg.jitter = jitter;
    let result = simulate(&spec(), UseCase::full(2), cfg).expect("simulates");
    result
        .actor_stats(AppId(1), ActorId(0))
        .expect("victim active")
        .mean_wait()
        .expect("victim fired")
}

#[test]
fn deterministic_system_phase_locks_below_the_prediction() {
    // The model (independent arrivals): wait = µ(x)·P(x) = 50 · 1/2 = 25.
    let x =
        ActorLoad::from_constant_time(Rational::integer(100), 1, Rational::integer(200)).unwrap();
    let predicted = waiting_time(&[x], Order::Exact).to_f64();
    assert_eq!(predicted, 25.0);

    // The coupled deterministic system settles into a phase where the
    // victim almost never waits — the paper's dependence caveat, maximal.
    let observed = observed_victim_wait(None);
    assert!(
        observed < 5.0,
        "expected phase-locking far below the independent-arrival \
         prediction ({predicted}), observed {observed}"
    );
}

#[test]
fn jitter_restores_independence_and_the_stochastic_prediction() {
    // ±100% uniform jitter: X ~ U[~0, 200], E[X] = 100 (P unchanged),
    // µ = E[X²]/(2E[X]) ≈ 66.3 ⇒ predicted wait ≈ 33.2.
    let dist = ExecutionTime::uniform(Rational::integer(1), Rational::integer(199)).unwrap();
    let load = ActorLoad::from_distribution(&dist, 1, Rational::integer(200)).unwrap();
    let predicted_stochastic = waiting_time(&[load], Order::Exact).to_f64();
    assert!((predicted_stochastic - 33.2).abs() < 0.5);

    let deterministic = observed_victim_wait(None);
    let jittered = observed_victim_wait(Some(JitterConfig {
        spread_percent: 100,
        seed: 1234,
    }));

    // Randomness breaks the phase lock: waits jump by an order of magnitude
    // toward the model's prediction.
    assert!(
        jittered > deterministic * 10.0,
        "jittered {jittered} vs phase-locked {deterministic}"
    );
    // The prediction is the right order of magnitude (residual coupling
    // still biases the observation low — contention slows the victim's own
    // cycle whenever the blocker runs long, a negative feedback the
    // independence model cannot see).
    assert!(
        jittered > 0.3 * predicted_stochastic && jittered < 1.5 * predicted_stochastic,
        "jittered {jittered} vs stochastic prediction {predicted_stochastic}"
    );
}

#[test]
fn phase_lock_survives_small_jitter_then_breaks() {
    // The phase lock is an attractor: ±10% jitter cannot dislodge it (the
    // victim re-synchronises every cycle), while larger spreads break it
    // progressively. See `examples/phase_lock.rs` for the full sweep.
    let w10 = observed_victim_wait(Some(JitterConfig {
        spread_percent: 10,
        seed: 42,
    }));
    assert!(w10 < 1.0, "±10% jitter should stay locked, wait {w10}");

    let w50 = observed_victim_wait(Some(JitterConfig {
        spread_percent: 50,
        seed: 42,
    }));
    let w100 = observed_victim_wait(Some(JitterConfig {
        spread_percent: 100,
        seed: 42,
    }));
    assert!(
        w10 < w50 && w50 < w100,
        "waits must grow with spread: {w10} / {w50} / {w100}"
    );
}
