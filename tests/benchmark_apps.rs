//! The classic media benchmarks (`sdf::benchmarks`) run through the whole
//! pipeline: mapping onto a shared platform, analytical estimation,
//! simulation, admission control.

use contention::{estimate, Method};
use mpsoc_sim::{simulate, SimConfig};
use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
use sdf::benchmarks;

/// cd2dat + mp3 + modem on a five-node platform (by actor index).
fn media_spec() -> SystemSpec {
    SystemSpec::builder()
        .application(Application::new("cd2dat", benchmarks::cd2dat()).expect("valid"))
        .application(Application::new("mp3", benchmarks::mp3_decoder()).expect("valid"))
        .application(Application::new("modem", benchmarks::modem()).expect("valid"))
        .mapping(Mapping::by_actor_index(5))
        .build()
        .expect("valid spec")
}

#[test]
fn benchmarks_estimate_and_simulate_consistently() {
    let spec = media_spec();
    let uc = UseCase::full(3);
    let est = estimate(&spec, uc, Method::SECOND_ORDER).expect("estimates");
    let sim = simulate(&spec, uc, SimConfig::with_horizon(2_000_000)).expect("simulates");

    for (id, app) in spec.iter() {
        let iso = app.isolation_period().to_f64();
        let e = est.period(id).to_f64();
        let s = sim
            .app(id)
            .expect("active")
            .average_period()
            .expect("iterations");
        // Estimates and simulation both at or above isolation…
        assert!(e >= iso * 0.999, "{}: estimate below isolation", app.name());
        assert!(
            s >= iso * 0.999,
            "{}: simulated below isolation",
            app.name()
        );
        // …and within an order of magnitude of each other. These classic
        // graphs are the model's adversarial regime: cd2dat's bottleneck
        // actor saturates its node (P = 1), where per-firing waiting-time
        // inflation compounds across its 160 firings per iteration and the
        // estimate overshoots ~3x — far outside the paper's random-workload
        // setting but a useful documented stress bound.
        let ratio = e / s;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{}: estimate {e} vs simulated {s}",
            app.name()
        );
    }
}

#[test]
fn worst_case_dominates_for_benchmarks() {
    let spec = media_spec();
    let uc = UseCase::full(3);
    let prob = estimate(&spec, uc, Method::Exact).expect("estimates");
    let wc = estimate(&spec, uc, Method::WorstCaseRoundRobin).expect("estimates");
    for (id, _) in spec.iter() {
        assert!(wc.period(id) >= prob.period(id));
    }
}

#[test]
fn h263_runs_the_pipeline_alone() {
    // The H.263 decoder has q entries of 594 — a state-space and simulator
    // stress test.
    let spec = SystemSpec::builder()
        .application(Application::new("h263", benchmarks::h263_decoder()).expect("valid"))
        .mapping(Mapping::by_actor_index(4))
        .build()
        .expect("valid spec");
    let iso = spec.application(AppId(0)).isolation_period().to_f64();
    let sim = simulate(
        &spec,
        UseCase::single(AppId(0)),
        SimConfig::with_horizon(20_000_000),
    )
    .expect("simulates");
    let measured = sim
        .app(AppId(0))
        .unwrap()
        .average_period()
        .expect("iterations");
    assert!(
        (measured - iso).abs() / iso < 0.01,
        "simulated {measured} vs analytical {iso}"
    );
}

#[test]
fn admission_of_benchmarks_with_throughput_contracts() {
    use contention::{AdmissionController, AdmissionOutcome};
    use platform::NodeId;
    use sdf::Rational;

    let mut ctrl = AdmissionController::new();
    let apps = [
        Application::new("cd2dat", benchmarks::cd2dat()).expect("valid"),
        Application::new("mp3", benchmarks::mp3_decoder()).expect("valid"),
        Application::new("modem", benchmarks::modem()).expect("valid"),
    ];
    let mut admitted = 0;
    for app in apps {
        let nodes: Vec<NodeId> = (0..app.graph().actor_count()).map(NodeId).collect();
        // Demand 70% of isolation throughput.
        let required = app.isolation_period().recip() * Rational::new(7, 10);
        let outcome = ctrl
            .admit(app, &nodes, Some(required))
            .expect("no hard error");
        if matches!(outcome, AdmissionOutcome::Admitted { .. }) {
            admitted += 1;
        }
    }
    // At least the first application always fits; the controller never
    // over-admits past a violated contract.
    assert!(admitted >= 1);
    assert_eq!(ctrl.resident_count(), admitted);
    for id in ctrl.resident_ids().collect::<Vec<_>>() {
        let p = ctrl.predicted_period(id).expect("resident");
        assert!(p.is_positive());
    }
}
