//! `probcon` — command-line front-end for the library.
//!
//! ```text
//! probcon generate --seed 7 [--actors N] [--out graph.json] [--dot graph.dot]
//! probcon analyze  <graph.json>
//! probcon estimate --seed 2007 --apps 10 --use-case 1023 [--method order-2]
//! probcon simulate --seed 2007 --apps 10 --use-case 1023 [--horizon 500000]
//! probcon serve-bench --threads 4 --requests 1000 [--apps N] [--shards S]
//! probcon fleet-bench --requests 1000 [--groups 4] [--journal fleet.jsonl]
//! probcon serve    --listen unix:/tmp/probcon.sock [--once] [--wire json|binary]
//! probcon fleet-bench --connect unix:/tmp/probcon.sock --requests 1000 [--connections 64]
//! probcon top      [--connect unix:/tmp/probcon.sock] [--watch 2] [--prometheus] [--connections]
//! probcon trace    [--connect unix:/tmp/probcon.sock] [--tail 20] [--json] [--chrome out.json]
//! probcon replay   <journal.jsonl | wal-dir>
//! probcon plan     <journal.jsonl | wal-dir> [--capacity-scale 0.5] [--groups 2..6]
//! probcon journal  split <j.jsonl> | merge <a.jsonl> <b.jsonl> --out <f> | compact <wal-dir>
//! probcon paper    [--quick]
//! ```

use contention::{estimate, Method};
use experiments::{
    report::{render_fig5, render_fig6, render_table1, render_timing},
    runner::{evaluate, EvalOptions},
    workload::workload_with,
};
use mpsoc_sim::{simulate, SimConfig};
use platform::UseCase;
use sdf::{
    analyze_period, buffer_requirements, generate_graph, iteration_latency, repetition_vector,
    to_dot, GeneratorConfig, SdfGraph,
};
use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

const USAGE: &str = "\
probcon — probabilistic resource-contention performance estimation (DAC 2007 reproduction)

USAGE:
  probcon generate --seed <u64> [--actors <n>] [--out <file.json>] [--dot <file.dot>]
      Generate a random consistent, strongly connected, live SDF graph.

  probcon analyze <graph.json>
      Repetition vector, period, throughput, latency and buffer needs of a graph.

  probcon estimate --seed <u64> --apps <n> --use-case <mask> [--method <m>]
      Estimate per-application periods under contention for one use-case of a
      seeded random workload. Methods: exact, order-2, order-4, composability,
      worst-case-rr, worst-case-tdma.

  probcon simulate --seed <u64> --apps <n> --use-case <mask> [--horizon <cycles>]
      Simulate the same use-case (ground truth).

  probcon signoff --seed <u64> --apps <n> [--method <m>]
      Per-application worst/best predicted period over ALL 2^n - 1 use-cases.

  probcon serve-bench --threads <n> --requests <m> [--seed <u64>] [--apps <n>]
                      [--actors <n>] [--shards <n>] [--capacity <n>]
                      [--front-end <workers>]
      Hammer the admission-service stack (estimate cache over the sharded
      resource manager, optionally multiplexed through the async front-end)
      with a seeded stream of admit/release/query/estimate requests and
      print a throughput/latency/rejection metrics table with per-layer
      service metrics. Service admissions never wait for capacity (a full
      shard saturates); bounded FIFO/LIFO waiting is the ticket API's.

  probcon fleet-bench --requests <m> [--threads <n>] [--seed <u64>] [--apps <n>]
                      [--actors <n>] [--groups <n>] [--shards <n>] [--capacity <n>]
                      [--policy least-utilised|round-robin|affinity]
                      [--journal <file.jsonl>] [--journal-dir <dir>] [--warm-cache]
                      [--fsync always|every-N|on-rotate] [--segment-entries <n>]
                      [--telemetry <file.json>] [--telemetry-interval <ms>]
                      [--autoscale <policy.json>] [--autoscale-interval <ms>]
                      [--connect tcp:HOST:PORT|unix:PATH] [--client NAME]
                      [--wire json|binary] [--connections <n>]
      Drive a metered + cached service stack over a multi-group fleet manager
      with a seeded admit/release/rebalance/estimate stream, print per-group
      utilisation and per-layer service metrics, optionally pre-warm the
      estimate cache from the sign-off artefact (reporting warm-vs-cold hit
      rates), and optionally record every decision to an append-only
      checksummed journal. With --connect, drive a fleet served by `probcon
      serve` in another process instead: the workload spec arrives in the
      handshake, and --journal fetches the server-side decision journal for
      local replay. --client NAME announces an identity in the handshake:
      the server stamps it into every journaled decision this run drives,
      so multi-client recordings split per client (`probcon journal split`).
      --journal-dir records into a segmented write-ahead log directory
      instead of memory: appends stream to disk with bounded RSS, --fsync
      picks the durability policy (default every-256) and
      --segment-entries the rotation threshold (default 8192).
      --telemetry samples the stack's live telemetry (residents, outcome
      totals, admit p50/p99/p999) every --telemetry-interval ms (default
      250) and writes the trajectory as a JSON array; it works locally and
      with --connect alike. With --connect each sample also records
      per-connection fan-in counters (requests sent, responses,
      transport errors, in-flight) so the trajectory shows whether the
      round-robin spread across --connections stayed even. --autoscale runs the elastic capacity
      controller (see `probcon serve`) against the benched fleet for the
      duration of the run, ticking every --autoscale-interval ms (default
      50); every resize it makes is journaled alongside the admissions,
      so the recording replays and plans like any other. Local only — a
      remote fleet's shape is the server's to scale. --wire picks the
      frame encoding requested at handshake (default binary; json for
      greppable frames or pre-v4 servers — either way the negotiated mode
      is printed). --connections opens <n> client connections to the one
      server and round-robins the request stream across them — the fan-in
      shape the readiness-loop server serves at flat memory.

  probcon serve --listen tcp:HOST:PORT|unix:PATH [--seed <u64>] [--apps <n>]
                [--actors <n>] [--groups <n>] [--shards <n>] [--capacity <n>]
                [--policy least-utilised|round-robin|affinity] [--cache <n>]
                [--trace <events>] [--once] [--journal <file.jsonl>]
                [--journal-dir <dir>] [--fsync always|every-N|on-rotate]
                [--segment-entries <n>] [--checkpoint-every <n>]
                [--autoscale <policy.json>] [--autoscale-interval <ms>]
                [--wire json|binary]
      Serve a traced + metered + estimate-cached multi-group fleet manager
      over the remote admission protocol (TCP or Unix domain socket). Every
      decision lands in the fleet's header-stamped journal, served to
      clients over the wire, and in a --trace-event flight recorder
      (default 4096) that `probcon trace --connect` tails live. --once
      exits after the first client disconnects (for scripted drivers);
      --journal also writes the journal to a file at shutdown.
      --journal-dir makes the journal DURABLE: decisions stream to a
      segmented write-ahead log in <dir> (created on first start), a
      background checkpointer folds fleet state into a snapshot every
      --checkpoint-every entries (default 4096; segments fully covered by
      the snapshot are garbage-collected), and a restart on the same
      directory RECOVERS the fleet — snapshot first, then the entry tail,
      truncating any torn final write. --fsync picks the append durability
      policy (always | every-N | on-rotate, default every-256);
      --segment-entries the rotation threshold (default 8192).
      --autoscale loads a ScalePolicy from a JSON file and runs the
      elastic capacity controller in a background thread: it samples the
      stack's telemetry every --autoscale-interval ms (default 250),
      holds fleet utilisation inside the policy's target band by growing/
      shrinking group capacity (escalating to adding or draining whole
      groups when configured), and journals every resize as a first-class
      decision — an autoscaled run replays outcome-for-outcome and
      `probcon top --connect` shows the controller's live status line.
      --wire json forces greppable JSON-lines frames on every connection;
      the default negotiates compact binary frames with any v4 client
      that requests them (v3 clients always get JSON).

  probcon top [--connect tcp:HOST:PORT|unix:PATH] [--watch <secs>] [--prometheus]
              [--connections] [--wire json|binary]
      Live telemetry of an admission stack: per-layer operation latency
      distributions (count, ops/s, p50/p90/p99/p999), fleet utilisation,
      flight-recorder counters, per-tenant admit/reject breakdowns and —
      from a served stack — per-connection transport counters plus
      event-loop health (poll ticks, tick duration percentiles, ready-set
      sizes). With --connect, polls a `probcon serve` process over the
      wire without disturbing it; --watch re-renders every <secs> seconds
      (default 2) until interrupted. Without --connect, drives a seeded
      local demo stack and renders its telemetry once. --prometheus emits
      the Prometheus text exposition format instead of the human table.
      --connections (needs --connect) renders only the transport view:
      one row per live connection (client, wire mode, frames/bytes each
      way, write-buffer depth, in-flight requests, backpressure pauses)
      and the event-loop line.

  probcon trace [--connect tcp:HOST:PORT|unix:PATH] [--tail <n>] [--json]
                [--chrome <file.json>] [--wire json|binary]
      The newest <n> (default 20) structured decision events from a stack's
      flight recorder, oldest first: admit/reject/saturate/release/estimate
      with request ids, groups, durations, cache hit/miss attribution,
      client provenance and span identity (trace/span/parent ids linking
      each decision to the request that caused it, across the wire). With
      --connect, tails a live `probcon serve` process; without, a seeded
      local demo stack. --json emits the events as a JSON array. --chrome
      exports the events as a Chrome-trace/Perfetto JSON file instead
      (load at https://ui.perfetto.dev): spans nest per trace id, tracks
      map to server connections and worker threads, and each request tree
      gets a synthetic client-process slice so the cross-process handoff
      is visible; --tail defaults to the full 4096-event ring here.

  probcon replay <journal.jsonl | wal-dir>
      Rebuild the workload and fleet named in a journal's header, re-execute
      every recorded decision against a fresh fleet and verify
      outcome-for-outcome equivalence (exit code 1 on divergence, with every
      divergence detailed on stderr). A WAL directory replays from its
      newest snapshot checkpoint: the snapshotted residents are restored
      first, then the remaining entries verify outcome-for-outcome.

  probcon plan <journal.jsonl | wal-dir> [--groups <n|lo..hi>] [--capacity-scale <x|lo..hi>]
               [--scale-steps <k>] [--policy <p>] [--routing auto|recorded|replanned]
               [--sweep] [--workers <n>] [--flip-budget <n>]
               [--policy-file <policy.json>] [--policy-every <n>]
               [--fail-on-flips] [--json]
      Offline capacity planning: re-decide a recorded journal's admission
      stream against a HYPOTHETICAL fleet shape and report which decisions
      would have flipped (admitted-now-rejected regressions,
      rejected-now-admitted recoveries, reroutes), plus per-group peak/mean
      utilisation and saturation windows. Without options the recorded
      shape is replayed (zero flips by construction). With --sweep, ranges
      build a shape grid executed in parallel (--workers) and summarized by
      a frontier: the smallest shape with zero regressions and the cheapest
      within --flip-budget regressions. --fail-on-flips exits 1 when any
      flip is reported (CI identity check); --json emits the full report.
      --policy-file evaluates an autoscaling policy OFFLINE: recorded
      resizes are set aside and the policy re-decides scaling against the
      hypothetical fleet every --policy-every events (default 8); the
      report lists each action the policy would have taken and when —
      dry-run a policy against production history before serving it.

  probcon journal split <journal.jsonl> [--out-dir <dir>]
      Split a multi-client recording into one valid header-stamped journal
      per client id (see fleet-bench --client), preserving original
      positions for lossless re-merging. File journals only: on a WAL
      directory this fails fast with a typed error — export one first
      with `probcon journal compact <dir> --out <file.jsonl>`.

  probcon journal merge <a.jsonl> <b.jsonl> --out <file.jsonl>
      Interleave two compatible journals (same workload, shape and policy)
      by original sequence/timestamp into one replayable log; merging the
      files produced by `journal split` reconstructs the original exactly.
      File journals only (same WAL limitation and workaround as split).

  probcon journal compact <wal-dir> [--keep <k>] [--out <file.jsonl>]
      Fold a WAL directory's full history into a fresh snapshot checkpoint
      and garbage-collect every segment the snapshot covers. Replay output
      is unchanged — the snapshot restores the same resident state the
      dropped entries would have rebuilt — while the directory shrinks to
      the snapshot plus the uncovered tail. --keep retains the last <k>
      snapshot checkpoints (default 1) so older snapshots stay on disk as
      point-in-time recovery anchors; --out additionally exports the full
      logical journal as a single .jsonl file (the bridge to the
      file-journal tools: split, merge, plan on a plain file).

  probcon paper [--quick]
      Regenerate Table 1, Figure 5, Figure 6 and the timing comparison.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `args` into positional arguments and `--key value` options.
fn parse(args: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                options.insert(key, args[i + 1].as_str());
                i += 2;
            } else {
                options.insert(key, "true");
                i += 1;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    (positional, options)
}

fn opt_u64(options: &HashMap<&str, &str>, key: &str) -> Result<Option<u64>, String> {
    options
        .get(key)
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--{key}: expected a number, got '{v}'"))
        })
        .transpose()
}

fn require_u64(options: &HashMap<&str, &str>, key: &str) -> Result<u64, String> {
    opt_u64(options, key)?.ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_method(s: &str) -> Result<Method, String> {
    s.parse()
}

/// Dispatches one command. `Ok(code)` is a decided outcome (e.g. `replay`
/// reporting divergence exits 1 *without* re-printing the usage text);
/// `Err` is a usage/configuration error that does print it.
fn run(args: &[String]) -> Result<ExitCode, String> {
    let (positional, options) = parse(args);
    let Some(&command) = positional.first() else {
        return Err("no command given".into());
    };

    let done = |result: Result<(), String>| result.map(|()| ExitCode::SUCCESS);
    match command {
        "generate" => done(cmd_generate(&options)),
        "analyze" => done(cmd_analyze(positional.get(1).copied(), &options)),
        "estimate" => done(cmd_estimate(&options)),
        "simulate" => done(cmd_simulate(&options)),
        "signoff" => done(cmd_signoff(&options)),
        "serve-bench" => done(cmd_serve_bench(&options)),
        "fleet-bench" => done(cmd_fleet_bench(&options)),
        "serve" => done(cmd_serve(&options)),
        "top" => done(cmd_top(&options)),
        "trace" => done(cmd_trace(&options)),
        "replay" => cmd_replay(positional.get(1).copied(), &options),
        "plan" => cmd_plan(positional.get(1).copied(), &options),
        "journal" => done(cmd_journal(&positional[1..], &options)),
        "paper" => done(cmd_paper(&options)),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn cmd_generate(options: &HashMap<&str, &str>) -> Result<(), String> {
    let seed = require_u64(options, "seed")?;
    let config = match opt_u64(options, "actors")? {
        Some(n) => GeneratorConfig::with_actors(n as usize),
        None => GeneratorConfig::default(),
    };
    let graph = generate_graph(&config, seed);
    println!(
        "generated '{}': {} actors, {} channels",
        graph.name(),
        graph.actor_count(),
        graph.channel_count()
    );
    if let Some(path) = options.get("out") {
        let json = serde_json::to_string_pretty(&graph).map_err(|e| format!("serialize: {e}"))?;
        fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = options.get("dot") {
        fs::write(path, to_dot(&graph)).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_analyze(path: Option<&str>, _options: &HashMap<&str, &str>) -> Result<(), String> {
    let path = path.ok_or("analyze needs a graph file")?;
    let json = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let graph: SdfGraph = serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;

    let q = repetition_vector(&graph).map_err(|e| e.to_string())?;
    let analysis = analyze_period(&graph).map_err(|e| e.to_string())?;
    let latency = iteration_latency(&graph).map_err(|e| e.to_string())?;
    let buffers = buffer_requirements(&graph).map_err(|e| e.to_string())?;

    println!("graph '{}'", graph.name());
    println!("  actors            : {}", graph.actor_count());
    println!("  channels          : {}", graph.channel_count());
    println!("  repetition vector : {q}");
    println!(
        "  period            : {} (≈ {:.3})",
        analysis.period,
        analysis.period.to_f64()
    );
    println!(
        "  throughput        : {} (≈ {:.6})",
        analysis.throughput(),
        analysis.throughput().to_f64()
    );
    println!(
        "  iteration latency : {} (≈ {:.3})",
        latency,
        latency.to_f64()
    );
    println!("  buffer tokens     : {} total", buffers.total_tokens());
    for (cid, c) in graph.channels() {
        println!(
            "    {} {} -> {} : capacity {}",
            cid,
            graph.actor(c.src()).name(),
            graph.actor(c.dst()).name(),
            buffers.capacity(cid)
        );
    }
    Ok(())
}

fn workload_from(options: &HashMap<&str, &str>) -> Result<platform::SystemSpec, String> {
    let seed = require_u64(options, "seed")?;
    let apps = require_u64(options, "apps")? as usize;
    if apps == 0 || apps > 20 {
        return Err("--apps must be in 1..=20".into());
    }
    workload_with(seed, apps, &GeneratorConfig::default()).map_err(|e| e.to_string())
}

fn use_case_from(options: &HashMap<&str, &str>, apps: usize) -> Result<UseCase, String> {
    let mask = require_u64(options, "use-case")?;
    if mask == 0 {
        return Err("--use-case mask must be non-zero".into());
    }
    if mask >= (1u64 << apps) {
        return Err(format!("--use-case mask {mask} exceeds 2^{apps} - 1"));
    }
    Ok(UseCase::from_mask(mask))
}

fn cmd_estimate(options: &HashMap<&str, &str>) -> Result<(), String> {
    let spec = workload_from(options)?;
    let uc = use_case_from(options, spec.application_count())?;
    let method = parse_method(options.get("method").copied().unwrap_or("order-2"))?;

    let start = std::time::Instant::now();
    let est = estimate(&spec, uc, method).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();

    println!("use-case {uc}, method {method} ({elapsed:?}):");
    for (&app, period) in est.periods() {
        let iso = spec.application(app).isolation_period();
        println!(
            "  {:<6} period {:>10.1} ({:.2}x isolation {:.1})",
            spec.application(app).name(),
            period.to_f64(),
            (period.to_f64() / iso.to_f64()),
            iso.to_f64()
        );
    }
    Ok(())
}

fn cmd_simulate(options: &HashMap<&str, &str>) -> Result<(), String> {
    let spec = workload_from(options)?;
    let uc = use_case_from(options, spec.application_count())?;
    let horizon = opt_u64(options, "horizon")?.unwrap_or(500_000);

    let start = std::time::Instant::now();
    let result =
        simulate(&spec, uc, SimConfig::with_horizon(horizon)).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();

    println!(
        "use-case {uc}, horizon {horizon} ({} events, {elapsed:?}):",
        result.events_processed()
    );
    for m in result.apps() {
        let name = spec.application(m.app()).name();
        match (m.average_period(), m.worst_period()) {
            (Some(avg), Some(worst)) => println!(
                "  {:<6} period {:>10.1} (worst {:>8}) over {} iterations",
                name,
                avg,
                worst,
                m.iterations()
            ),
            _ => println!("  {name:<6} completed too few iterations"),
        }
    }
    Ok(())
}

fn cmd_signoff(options: &HashMap<&str, &str>) -> Result<(), String> {
    let spec = workload_from(options)?;
    let method = parse_method(options.get("method").copied().unwrap_or("composability"))?;
    let start = std::time::Instant::now();
    let report = experiments::signoff::sign_off(&spec, method, None).map_err(|e| e.to_string())?;
    println!("{}", report.render());
    println!("({:?} total)", start.elapsed());
    Ok(())
}

fn cmd_serve_bench(options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::{
        seeded_requests, AdmissionService, BatchExecutor, Cached, FrontEnd, FrontEndConfig,
        QueueMode, ResourceManager, ResourceManagerConfig,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let threads = require_u64(options, "threads")? as usize;
    let requests = require_u64(options, "requests")? as usize;
    if threads == 0 || requests == 0 {
        return Err("--threads and --requests must be positive".into());
    }
    let seed = opt_u64(options, "seed")?.unwrap_or(experiments::workload::DEFAULT_SEED);
    let apps = opt_u64(options, "apps")?.unwrap_or(6) as usize;
    if apps == 0 || apps > 20 {
        return Err("--apps must be in 1..=20".into());
    }
    let actors = opt_u64(options, "actors")?.unwrap_or(5) as usize;
    let shards = opt_u64(options, "shards")?.unwrap_or(4) as usize;
    let capacity = opt_u64(options, "capacity")?.unwrap_or(8) as usize;
    let front_end_workers = opt_u64(options, "front-end")?.map(|w| w as usize);
    if front_end_workers == Some(0) {
        return Err("--front-end workers must be positive".into());
    }

    let spec = workload_with(seed, apps, &GeneratorConfig::with_actors(actors))
        .map_err(|e| e.to_string())?;
    // Queue mode / admit timeout only govern the direct ticket API's
    // bounded waiting; the service path decides without waiting.
    let manager = ResourceManager::new(ResourceManagerConfig {
        shards,
        capacity_per_shard: capacity,
        queue_mode: QueueMode::Fifo,
        admit_timeout: Some(Duration::from_millis(100)),
    });
    manager.bind_workload(spec.clone());

    // The service stack: estimate caching over the sharded manager, with
    // the async front-end multiplexing on top when requested.
    let stack: Arc<dyn AdmissionService> = Arc::new(Cached::new(manager.clone(), 256));
    let stack: Arc<dyn AdmissionService> = match front_end_workers {
        Some(workers) => Arc::new(FrontEnd::new(
            Box::new(stack),
            FrontEndConfig {
                workers,
                queue_capacity: requests.max(1),
            },
        )),
        None => stack,
    };
    let executor = BatchExecutor::new(stack);
    let stream = seeded_requests(&spec, requests, seed);

    println!(
        "serve-bench: {apps} applications × {actors} actors, {shards} shards × \
         capacity {capacity}{}",
        match front_end_workers {
            Some(workers) => format!(", front-end with {workers} workers"),
            None => String::new(),
        }
    );
    let report = executor.run(stream, threads);
    print!("{}", report.render());
    manager.stop();
    Ok(())
}

fn cmd_fleet_bench(options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::{
        run_fleet_stack, run_fleet_stack_sampled, seeded_fleet_requests, Cached, FleetConfig,
        FleetManager, FleetRequest, JournalHeader, Metered, RoutingPolicy, JOURNAL_VERSION,
    };

    if let Some(&addr) = options.get("connect") {
        return cmd_fleet_bench_remote(addr, options);
    }
    if options.contains_key("client") {
        return Err(
            "--client announces an identity to a remote server and needs --connect \
             (local runs journal without provenance)"
                .into(),
        );
    }
    for flag in ["wire", "connections"] {
        if options.contains_key(flag) {
            return Err(format!(
                "--{flag} shapes the remote transport and needs --connect"
            ));
        }
    }

    let requests = require_u64(options, "requests")? as usize;
    if requests == 0 {
        return Err("--requests must be positive".into());
    }
    let threads = opt_u64(options, "threads")?.unwrap_or(1) as usize;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let seed = opt_u64(options, "seed")?.unwrap_or(experiments::workload::DEFAULT_SEED);
    let apps = opt_u64(options, "apps")?.unwrap_or(6) as usize;
    if apps == 0 || apps > 20 {
        return Err("--apps must be in 1..=20".into());
    }
    let actors = opt_u64(options, "actors")?.unwrap_or(5) as usize;
    let groups = opt_u64(options, "groups")?.unwrap_or(4) as usize;
    if groups == 0 {
        return Err("--groups must be positive".into());
    }
    let shards = opt_u64(options, "shards")?.unwrap_or(1) as usize;
    let capacity = opt_u64(options, "capacity")?.unwrap_or(4) as usize;
    let policy = options
        .get("policy")
        .copied()
        .unwrap_or("least-utilised")
        .parse::<RoutingPolicy>()?;

    let spec = workload_with(seed, apps, &GeneratorConfig::with_actors(actors))
        .map_err(|e| e.to_string())?;
    let header = JournalHeader {
        version: JOURNAL_VERSION,
        seed,
        apps: apps as u64,
        actors: actors as u64,
        groups: groups as u64,
        shards_per_group: shards as u64,
        capacity_per_shard: capacity as u64,
        policy: policy.to_string(),
        // The fleet stamps its actual per-group shapes on construction.
        group_shapes: Vec::new(),
    };
    let wal_dir = options.get("journal-dir").map(std::path::PathBuf::from);
    if wal_dir.is_none() {
        for flag in ["fsync", "segment-entries"] {
            if options.contains_key(flag) {
                return Err(format!(
                    "--{flag} tunes the write-ahead log and needs --journal-dir"
                ));
            }
        }
    }
    let config = FleetConfig::uniform(groups, shards, capacity, policy);
    let fleet = match &wal_dir {
        None => {
            FleetManager::with_header(spec.clone(), config, header).map_err(|e| e.to_string())?
        }
        Some(dir) => {
            if dir.join(runtime::MANIFEST_FILE).exists() {
                return Err(format!(
                    "--journal-dir {}: already a WAL; fleet-bench records fresh runs — \
                     replay or compact the existing log, or pick an empty directory",
                    dir.display()
                ));
            }
            let journal = runtime::Journal::create_wal(
                dir,
                FleetManager::stamped_header(&config, header),
                wal_config_from(options)?,
            )
            .map_err(|e| e.to_string())?;
            FleetManager::with_journal(spec.clone(), config, journal).map_err(|e| e.to_string())?
        }
    };

    println!(
        "fleet-bench: {apps} applications × {actors} actors, {groups} groups × \
         {shards} shards × capacity {capacity}, {policy} routing"
    );
    let stream = seeded_fleet_requests(&spec, groups, requests, seed);

    // --autoscale: run the elastic controller against the benched fleet
    // for the duration of the run; every resize it makes lands in the
    // same journal the bench records.
    let autoscaler = options
        .get("autoscale")
        .map(|path| -> Result<_, String> {
            let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let policy =
                runtime::ScalePolicy::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
            let interval = opt_u64(options, "autoscale-interval")?.unwrap_or(50);
            if interval == 0 {
                return Err("--autoscale-interval must be positive".into());
            }
            println!(
                "autoscaling with policy [{}] every {interval}ms",
                policy.label()
            );
            let controller = std::sync::Arc::new(runtime::Autoscaler::new(
                std::sync::Arc::new(fleet.clone()),
                policy,
            ));
            Ok((
                std::sync::Arc::clone(&controller),
                std::sync::Arc::clone(&controller)
                    .spawn(std::time::Duration::from_millis(interval)),
            ))
        })
        .transpose()?;
    if autoscaler.is_none() && options.contains_key("autoscale-interval") {
        return Err("--autoscale-interval needs --autoscale".into());
    }

    // The service stack: latency metering over estimate caching over the
    // fleet; admissions/releases/estimates flow through it, rebalances go
    // to the fleet directly.
    let cached = Cached::new(fleet.clone(), 256);
    let warm = options.contains_key("warm-cache");
    if warm {
        // 2^8 - 1 = 255 warmed entries fit the 256-slot LRU without
        // eviction — beyond that, warming would evict itself and the cold
        // baseline below would stop being exact.
        if apps > 8 {
            return Err("--warm-cache enumerates 2^apps - 1 use-cases; use --apps <= 8".into());
        }
        let report = experiments::signoff::sign_off(&spec, Method::Composability, None)
            .map_err(|e| e.to_string())?;
        let warmed = cached
            .warm_from_signoff(&report)
            .map_err(|e| e.to_string())?;
        println!("warmed {warmed} estimates from the sign-off artefact");
    }
    // Cold baseline for the warm-vs-cold comparison: without warming, every
    // first occurrence of an estimate key is a miss (the 256-entry cache
    // never evicts for apps <= 8 masks x 1 method).
    let estimate_lookups = stream
        .iter()
        .filter(|r| matches!(r, FleetRequest::Estimate { .. }))
        .count() as u64;
    let distinct_estimates = stream
        .iter()
        .filter_map(|r| match r {
            FleetRequest::Estimate { use_case, method } => Some((use_case.mask(), *method)),
            _ => None,
        })
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;

    let stack = Metered::new(cached);
    let (report, points) = match telemetry_interval(options)? {
        Some(interval) => run_fleet_stack_sampled(&stack, &fleet, stream, threads, interval),
        None => (run_fleet_stack(&stack, &fleet, stream, threads), Vec::new()),
    };
    if let Some((controller, handle)) = autoscaler {
        handle.stop();
        println!("{}", controller.status().render());
    }
    print!("{}", report.render());
    write_telemetry(options, &points)?;

    if estimate_lookups > 0 {
        let hits = report.stack.counter("cached", "hits").unwrap_or(0);
        let cold_hits = estimate_lookups - distinct_estimates.min(estimate_lookups);
        let rate = |h: u64| 100.0 * h as f64 / estimate_lookups as f64;
        if warm {
            println!(
                "estimate cache: {:.1}% hit rate warm vs {:.1}% cold baseline \
                 ({} lookups, {} distinct use-cases pre-warmed)",
                rate(hits),
                rate(cold_hits),
                estimate_lookups,
                distinct_estimates,
            );
        } else {
            println!(
                "estimate cache: {:.1}% hit rate cold ({} lookups, {} distinct use-cases; \
                 re-run with --warm-cache to pre-populate from the sign-off artefact)",
                rate(hits),
                estimate_lookups,
                distinct_estimates,
            );
        }
    }

    if let Some(path) = options.get("journal") {
        fleet.journal().write_to(path).map_err(|e| e.to_string())?;
        println!(
            "wrote {} decisions to {path} (replay with: probcon replay {path})",
            fleet.journal().len()
        );
    }
    if let Some(dir) = &wal_dir {
        fleet.journal().sync().map_err(|e| e.to_string())?;
        if let Some(stats) = fleet.journal().wal_stats() {
            println!(
                "wal: {} decisions in {} segment(s), {} bytes at {} \
                 (replay with: probcon replay {}; fold with: probcon journal compact {})",
                fleet.journal().len(),
                stats.segments,
                stats.disk_bytes,
                dir.display(),
                dir.display(),
                dir.display(),
            );
        }
    }
    fleet.stop();
    Ok(())
}

/// `fleet-bench --connect`: the same seeded driver, but against a fleet
/// served by `probcon serve` in another process. The workload spec and
/// domain count arrive in the protocol handshake, so the only knobs left
/// are the request stream's.
/// Parses `--telemetry` / `--telemetry-interval` into a sampling interval:
/// `Some` when a trajectory file was requested.
fn telemetry_interval(
    options: &HashMap<&str, &str>,
) -> Result<Option<std::time::Duration>, String> {
    if !options.contains_key("telemetry") {
        if options.contains_key("telemetry-interval") {
            return Err("--telemetry-interval needs --telemetry <file.json>".into());
        }
        return Ok(None);
    }
    let millis = opt_u64(options, "telemetry-interval")?.unwrap_or(250);
    if millis == 0 {
        return Err("--telemetry-interval must be positive".into());
    }
    Ok(Some(std::time::Duration::from_millis(millis)))
}

/// Writes the sampled telemetry trajectory where `--telemetry` points.
fn write_telemetry(
    options: &HashMap<&str, &str>,
    points: &[runtime::TelemetryPoint],
) -> Result<(), String> {
    let Some(path) = options.get("telemetry") else {
        return Ok(());
    };
    let json = serde_json::to_string_pretty(&points).map_err(|e| format!("serialize: {e}"))?;
    fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {} telemetry points to {path}", points.len());
    Ok(())
}

/// Round-robins requests across several client connections to one
/// server — the fan-in driver behind `fleet-bench --connections N`, and
/// the load shape the readiness-loop server is built for: many sockets,
/// one flat-size event loop.
struct FanInClient {
    clients: Vec<runtime::RemoteClient>,
    next: std::sync::atomic::AtomicUsize,
}

impl FanInClient {
    fn pick(&self) -> &runtime::RemoteClient {
        let i = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        &self.clients[i % self.clients.len()]
    }
}

impl runtime::AdmissionService for FanInClient {
    fn admit(
        &self,
        request: &runtime::AdmissionRequest,
    ) -> Result<runtime::AdmissionDecision, runtime::ServiceError> {
        self.pick().admit(request)
    }

    fn release(&self, resident: u64) -> Result<(), runtime::ServiceError> {
        self.pick().release(resident)
    }

    fn snapshot(&self) -> runtime::ServiceSnapshot {
        self.clients[0].snapshot()
    }

    fn workload(&self) -> Option<&platform::SystemSpec> {
        self.clients[0].workload()
    }

    fn estimate(
        &self,
        use_case: UseCase,
        method: Method,
    ) -> Result<std::sync::Arc<contention::Estimate>, runtime::ServiceError> {
        self.pick().estimate(use_case, method)
    }

    fn submit(&self, request: runtime::AdmissionRequest) -> runtime::Completion {
        self.pick().submit(request)
    }

    fn telemetry(&self) -> runtime::TelemetrySnapshot {
        self.clients[0].telemetry()
    }

    fn trace_tail(&self, limit: usize) -> Vec<runtime::TraceEvent> {
        self.clients[0].trace_tail(limit)
    }
}

fn cmd_fleet_bench_remote(addr: &str, options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::{
        run_service_requests, run_service_requests_sampled_with, seeded_fleet_requests,
        AdmissionService, ClientConfig, ConnectionPoint, Endpoint, Metered, RemoteClient, WireMode,
    };

    // Fleet shape, workload and journal durability are the server's to
    // decide.
    for flag in [
        "apps",
        "actors",
        "groups",
        "shards",
        "capacity",
        "policy",
        "warm-cache",
        "journal-dir",
        "fsync",
        "segment-entries",
        "autoscale",
        "autoscale-interval",
    ] {
        if options.contains_key(flag) {
            return Err(format!(
                "--{flag} configures a local fleet and is not valid with --connect \
                 (the server decides it; pass it to `probcon serve` instead)"
            ));
        }
    }
    let requests = require_u64(options, "requests")? as usize;
    if requests == 0 {
        return Err("--requests must be positive".into());
    }
    let threads = opt_u64(options, "threads")?.unwrap_or(1) as usize;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let seed = opt_u64(options, "seed")?.unwrap_or(experiments::workload::DEFAULT_SEED);
    let wire = match options.get("wire") {
        Some(&mode) => mode.parse::<WireMode>()?,
        None => WireMode::Binary,
    };
    let connections = opt_u64(options, "connections")?.unwrap_or(1) as usize;
    if connections == 0 {
        return Err("--connections must be positive".into());
    }

    let addr: Endpoint = addr.parse()?;
    let connect_one = || {
        RemoteClient::connect_config(
            &addr,
            ClientConfig {
                client: options.get("client").map(|&name| name.to_string()),
                wire,
                ..ClientConfig::default()
            },
        )
        .map_err(|e| e.to_string())
    };
    let clients = (0..connections)
        .map(|_| connect_one())
        .collect::<Result<Vec<_>, _>>()?;
    let spec = clients[0]
        .workload()
        .ok_or("server advertised no workload spec")?
        .clone();
    let groups = clients[0].domains();
    println!(
        "fleet-bench: {} applications across {groups} remote domains at {addr} \
         ({connections} connection(s), {} frames)",
        spec.application_count(),
        clients[0].wire_mode(),
    );

    let stream = seeded_fleet_requests(&spec, groups, requests, seed);
    let stack = Metered::new(FanInClient {
        clients,
        next: std::sync::atomic::AtomicUsize::new(0),
    });
    // Each telemetry sample also captures per-connection fan-in counters,
    // so a trajectory shows whether the round-robin spread stayed even.
    let sampler = {
        let fan_in: &FanInClient = stack.inner();
        move || {
            fan_in
                .clients
                .iter()
                .enumerate()
                .map(|(i, client)| {
                    let stats = client.stats();
                    ConnectionPoint {
                        conn: i as u64,
                        requests_sent: stats.requests_sent,
                        responses: stats.responses,
                        transport_errors: stats.transport_errors,
                        pending: stats.pending,
                    }
                })
                .collect()
        }
    };
    let (report, points) = match telemetry_interval(options)? {
        Some(interval) => {
            run_service_requests_sampled_with(&stack, stream, threads, interval, Some(&sampler))
        }
        None => (run_service_requests(&stack, stream, threads), Vec::new()),
    };
    print!("{}", report.render());
    write_telemetry(options, &points)?;

    if let Some(path) = options.get("journal") {
        let journal = stack.inner().clients[0]
            .fetch_journal()
            .map_err(|e| e.to_string())?;
        journal.write_to(path).map_err(|e| e.to_string())?;
        println!(
            "fetched {} server-side decisions to {path} (replay with: probcon replay {path})",
            journal.len()
        );
    }
    for client in &stack.inner().clients {
        client.close();
    }
    Ok(())
}

fn cmd_serve(options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::{
        Cached, Endpoint, FleetConfig, FleetManager, Journal, JournalHeader, Metered, RemoteServer,
        RemoteServerConfig, RoutingPolicy, TraceRecorder, Traced, WireMode, WirePolicy,
        JOURNAL_VERSION, MANIFEST_FILE,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let listen = options
        .get("listen")
        .ok_or("missing required option --listen")?;
    let addr: Endpoint = listen.parse()?;
    // --wire json forces greppable JSON-lines frames on every connection;
    // the default negotiates binary with any client that asks for it.
    let wire = match options.get("wire") {
        Some(&mode) => match mode.parse::<WireMode>()? {
            WireMode::Json => WirePolicy::JsonOnly,
            WireMode::Binary => WirePolicy::Auto,
        },
        None => WirePolicy::Auto,
    };
    let seed = opt_u64(options, "seed")?.unwrap_or(experiments::workload::DEFAULT_SEED);
    let apps = opt_u64(options, "apps")?.unwrap_or(6) as usize;
    if apps == 0 || apps > 20 {
        return Err("--apps must be in 1..=20".into());
    }
    let actors = opt_u64(options, "actors")?.unwrap_or(5) as usize;
    let groups = opt_u64(options, "groups")?.unwrap_or(4) as usize;
    if groups == 0 {
        return Err("--groups must be positive".into());
    }
    let shards = opt_u64(options, "shards")?.unwrap_or(1) as usize;
    let capacity = opt_u64(options, "capacity")?.unwrap_or(4) as usize;
    let cache = opt_u64(options, "cache")?.unwrap_or(256) as usize;
    if cache == 0 {
        return Err("--cache must be positive".into());
    }
    let trace_capacity = opt_u64(options, "trace")?.unwrap_or(4096) as usize;
    if trace_capacity == 0 {
        return Err("--trace capacity must be positive".into());
    }
    let policy = options
        .get("policy")
        .copied()
        .unwrap_or("least-utilised")
        .parse::<RoutingPolicy>()?;

    let autoscale_policy = options
        .get("autoscale")
        .map(|path| {
            let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            runtime::ScalePolicy::from_json(&json).map_err(|e| format!("{path}: {e}"))
        })
        .transpose()?;
    let autoscale_interval = opt_u64(options, "autoscale-interval")?.unwrap_or(250);
    if autoscale_interval == 0 {
        return Err("--autoscale-interval must be positive".into());
    }
    if autoscale_policy.is_none() && options.contains_key("autoscale-interval") {
        return Err("--autoscale-interval needs --autoscale".into());
    }

    let wal_dir = options.get("journal-dir").map(std::path::PathBuf::from);
    if wal_dir.is_none() {
        for flag in ["fsync", "segment-entries", "checkpoint-every"] {
            if options.contains_key(flag) {
                return Err(format!(
                    "--{flag} tunes the write-ahead log and needs --journal-dir"
                ));
            }
        }
    }
    let checkpoint_every = opt_u64(options, "checkpoint-every")?.unwrap_or(4096);
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be positive".into());
    }

    let spec = workload_with(seed, apps, &GeneratorConfig::with_actors(actors))
        .map_err(|e| e.to_string())?;
    // Stamp the workload parameters so the served journal is
    // self-contained: any client can fetch it and `probcon replay` it.
    let header = JournalHeader {
        version: JOURNAL_VERSION,
        seed,
        apps: apps as u64,
        actors: actors as u64,
        groups: groups as u64,
        shards_per_group: shards as u64,
        capacity_per_shard: capacity as u64,
        policy: policy.to_string(),
        group_shapes: Vec::new(),
    };
    let config = FleetConfig::uniform(groups, shards, capacity, policy);
    let fleet = match &wal_dir {
        None => FleetManager::with_header(spec, config, header).map_err(|e| e.to_string())?,
        // A manifest in the directory means a previous serve recorded
        // here: recover the fleet from it (snapshot checkpoint first,
        // then the entry tail). Otherwise start a fresh WAL.
        Some(dir) if dir.join(MANIFEST_FILE).exists() => {
            let (journal, recovery) =
                Journal::open_wal(dir, wal_config_from(options)?).map_err(|e| e.to_string())?;
            report_recovery(&dir.display().to_string(), &recovery);
            let fleet = FleetManager::recover(spec, config, journal).map_err(|e| e.to_string())?;
            println!(
                "recovered {} resident(s) from WAL {} ({} journaled decisions)",
                fleet.resident_count(),
                dir.display(),
                fleet.journal().len(),
            );
            fleet
        }
        Some(dir) => {
            let journal = Journal::create_wal(
                dir,
                FleetManager::stamped_header(&config, header),
                wal_config_from(options)?,
            )
            .map_err(|e| e.to_string())?;
            FleetManager::with_journal(spec, config, journal).map_err(|e| e.to_string())?
        }
    };

    // The served stack, outermost first: flight recording over latency
    // metering over estimate caching over the fleet. The cache layer
    // shares the outer recorder so estimate hits/misses land inline with
    // the decision trace `probcon trace --connect` tails.
    let recorder = Arc::new(TraceRecorder::new(trace_capacity));
    let cached = Cached::new(fleet.clone(), cache);
    cached.attach_trace(Arc::clone(&recorder));
    fleet.attach_trace(Arc::clone(&recorder));
    let stack = Traced::with_recorder(Metered::new(cached), Arc::clone(&recorder));

    // --autoscale: an elastic capacity controller ticks in the background,
    // resizing the served fleet through the journaled resize path, and an
    // Autoscaled layer stamps its status into the telemetry `probcon top`
    // polls.
    let autoscaler = autoscale_policy.map(|policy| {
        println!(
            "autoscaling with policy [{}] every {autoscale_interval}ms",
            policy.label()
        );
        let controller = Arc::new(runtime::Autoscaler::new(Arc::new(fleet.clone()), policy));
        let handle =
            Arc::clone(&controller).spawn(std::time::Duration::from_millis(autoscale_interval));
        (controller, handle)
    });
    let stack: Arc<dyn runtime::AdmissionService> = match &autoscaler {
        Some((controller, _)) => Arc::new(runtime::Autoscaled::new(stack, Arc::clone(controller))),
        None => Arc::new(stack),
    };

    let journal_fleet = fleet.clone();
    let server = RemoteServer::bind_with(
        &addr,
        stack,
        // Serve the journal in bounded pages: a long-running WAL-backed
        // journal never has to materialize as one string.
        Some(Box::new(move |from| {
            journal_fleet.journal().render_page(from, 4096).ok()
        })),
        RemoteServerConfig {
            once: options.contains_key("once"),
            wire,
            ..RemoteServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;

    // The checkpointer: every --checkpoint-every journaled decisions, fold
    // the fleet's resident state into a snapshot so recovery starts there
    // instead of seq 0 and fully covered segments are garbage-collected.
    let checkpointer = wal_dir.as_ref().map(|_| {
        let fleet = fleet.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut last = fleet.journal().base_seq();
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(200));
                let next = fleet.journal().next_seq();
                if next.saturating_sub(last) < checkpoint_every {
                    continue;
                }
                match fleet.checkpoint_and_install() {
                    Ok(checkpoint) => last = checkpoint.upto_seq,
                    Err(e) => eprintln!("checkpoint failed: {e}"),
                }
            }
        });
        (stop, handle)
    });

    println!(
        "serving {apps} applications × {actors} actors, {groups} groups × {shards} shards × \
         capacity {capacity}, {policy} routing, {cache}-entry estimate cache, \
         {trace_capacity}-event flight recorder"
    );
    println!("listening on {}", server.local_addr());
    println!(
        "connect with: probcon fleet-bench --connect {} --requests 1000",
        server.local_addr()
    );
    println!(
        "observe with: probcon top --connect {}  |  probcon trace --connect {}",
        server.local_addr(),
        server.local_addr()
    );

    // Blocks until shutdown: with --once, until the first client
    // disconnects; otherwise until the process is killed.
    server.wait();
    if let Some((controller, handle)) = autoscaler {
        handle.stop();
        println!("{}", controller.status().render());
    }
    if let Some((stop, handle)) = checkpointer {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    if wal_dir.is_some() {
        // Graceful shutdown: everything on disk, folded to a snapshot.
        if let Err(e) = fleet.journal().sync() {
            eprintln!("final WAL sync failed: {e}");
        }
        match fleet.checkpoint_and_install() {
            Ok(checkpoint) => println!(
                "checkpointed {} resident(s) at seq {}",
                checkpoint.residents.len(),
                checkpoint.upto_seq
            ),
            Err(e) => eprintln!("final checkpoint failed: {e}"),
        }
        if let Some(stats) = fleet.journal().wal_stats() {
            println!(
                "wal: {} segment(s), {} bytes on disk, {} append I/O error(s)",
                stats.segments,
                stats.disk_bytes,
                fleet.journal().io_errors(),
            );
        }
    }
    let stats = server.stats();
    println!(
        "served {} requests over {} connections ({} protocol errors, {} handshake rejects)",
        stats.requests, stats.connections, stats.protocol_errors, stats.handshake_rejects
    );
    let trace = recorder.stats();
    println!(
        "flight recorder: {} events recorded, {} dropped (capacity {})",
        trace.recorded, trace.dropped, trace.capacity
    );
    print!("{}", fleet.snapshot().render());
    if let Some(path) = options.get("journal") {
        fleet.journal().write_to(path).map_err(|e| e.to_string())?;
        println!(
            "wrote {} decisions to {path} (replay with: probcon replay {path})",
            fleet.journal().len()
        );
    }
    fleet.stop();
    Ok(())
}

/// Builds the full telemetry demo stack — traced + metered + cached over a
/// two-group fleet — and drives a seeded request stream through it, so
/// `probcon top` / `probcon trace` without --connect have live numbers to
/// show. Returns the still-assembled stack for rendering.
fn demo_telemetry_stack(
    options: &HashMap<&str, &str>,
) -> Result<runtime::Traced<runtime::Metered<runtime::Cached<runtime::FleetManager>>>, String> {
    use runtime::{
        run_fleet_stack, seeded_fleet_requests, Cached, FleetConfig, FleetManager, Metered,
        RoutingPolicy, TraceRecorder, Traced,
    };
    use std::sync::Arc;

    let seed = opt_u64(options, "seed")?.unwrap_or(experiments::workload::DEFAULT_SEED);
    let requests = opt_u64(options, "requests")?.unwrap_or(400) as usize;
    if requests == 0 {
        return Err("--requests must be positive".into());
    }
    let spec =
        workload_with(seed, 4, &GeneratorConfig::with_actors(4)).map_err(|e| e.to_string())?;
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(2, 1, 4, RoutingPolicy::LeastUtilised),
    )
    .map_err(|e| e.to_string())?;
    let recorder = Arc::new(TraceRecorder::new(4096));
    let cached = Cached::new(fleet.clone(), 64);
    cached.attach_trace(Arc::clone(&recorder));
    let stack = Traced::with_recorder(Metered::new(cached), recorder);
    let stream = seeded_fleet_requests(&spec, 2, requests, seed);
    let _ = run_fleet_stack(&stack, &fleet, stream, 2);
    Ok(stack)
}

fn cmd_top(options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::{AdmissionService, Endpoint};
    use std::time::Duration;

    let prometheus = options.contains_key("prometheus");
    let connections = options.contains_key("connections");
    if prometheus && connections {
        return Err("--connections renders the human table; drop --prometheus".into());
    }
    let watch = match options.get("watch").copied() {
        None => None,
        Some("true") => Some(2u64),
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--watch: expected seconds, got '{v}'"))?,
        ),
    };

    let Some(&addr) = options.get("connect") else {
        if watch.is_some() {
            return Err("--watch polls a live server and needs --connect".into());
        }
        if connections {
            return Err(
                "--connections shows a server's per-connection transport stats \
                 and needs --connect"
                    .into(),
            );
        }
        let stack = demo_telemetry_stack(options)?;
        let telemetry = AdmissionService::telemetry(&stack);
        print!(
            "{}",
            if prometheus {
                telemetry.render_prometheus()
            } else {
                telemetry.render()
            }
        );
        return Ok(());
    };

    let addr: Endpoint = addr.parse()?;
    let client = connect_observer(&addr, options)?;
    loop {
        let telemetry = client.remote_telemetry().map_err(|e| e.to_string())?;
        print!(
            "{}",
            if prometheus {
                telemetry.render_prometheus()
            } else if connections {
                telemetry.render_connections()
            } else {
                telemetry.render()
            }
        );
        let Some(secs) = watch else { break };
        println!();
        std::thread::sleep(Duration::from_secs(secs.max(1)));
    }
    client.close();
    Ok(())
}

/// Connects an observer command (`top`/`trace`), honouring `--wire`
/// (binary by default — observers move bulky telemetry frames).
fn connect_observer(
    addr: &runtime::Endpoint,
    options: &HashMap<&str, &str>,
) -> Result<runtime::RemoteClient, String> {
    let wire = match options.get("wire") {
        Some(&mode) => mode.parse::<runtime::WireMode>()?,
        None => runtime::WireMode::Binary,
    };
    runtime::RemoteClient::connect_config(
        addr,
        runtime::ClientConfig {
            wire,
            ..runtime::ClientConfig::default()
        },
    )
    .map_err(|e| e.to_string())
}

fn cmd_trace(options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::{AdmissionService, Endpoint};

    let chrome = options.get("chrome").copied();
    if chrome == Some("true") {
        return Err("--chrome needs an output path, e.g. --chrome trace.json".into());
    }
    // A Perfetto export wants whole request trees, not the last few
    // lines, so --chrome defaults to draining the full ring.
    let tail = match opt_u64(options, "tail")? {
        Some(n) => n as usize,
        None if chrome.is_some() => 4096,
        None => 20,
    };
    if tail == 0 {
        return Err("--tail must be positive".into());
    }
    let (events, anchor) = match options.get("connect") {
        Some(&addr) => {
            let addr: Endpoint = addr.parse()?;
            let client = connect_observer(&addr, options)?;
            let events = client.remote_trace(tail).map_err(|e| e.to_string())?;
            let anchor = if chrome.is_some() {
                let telemetry = client.remote_telemetry().map_err(|e| e.to_string())?;
                telemetry.trace.anchor_micros.unwrap_or(0)
            } else {
                0
            };
            client.close();
            (events, anchor)
        }
        None => {
            let stack = demo_telemetry_stack(options)?;
            let anchor = stack.recorder().anchor_micros();
            (AdmissionService::trace_tail(&stack, tail), anchor)
        }
    };

    if let Some(path) = chrome {
        let json = runtime::render_chrome_trace(&events, anchor);
        fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "wrote {} event(s) as Chrome trace to {path} \
             (open at https://ui.perfetto.dev → Open trace file)",
            events.len()
        );
        return Ok(());
    }
    if options.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&events).map_err(|e| format!("serialize: {e}"))?
        );
        return Ok(());
    }
    for event in &events {
        println!("{}", render_trace_event(event));
    }
    println!("{} event(s)", events.len());
    Ok(())
}

/// One flight-recorder event as a human-readable line.
fn render_trace_event(event: &runtime::TraceEvent) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "#{:<6} {:>10.3}ms {:<10} app={} domain={}",
        event.seq,
        event.at_micros as f64 / 1000.0,
        event.kind.name(),
        event.app_index,
        event.domain,
    );
    if let Some(resident) = event.resident {
        let _ = write!(out, " resident={resident}");
    }
    if event.duration_micros > 0 {
        let _ = write!(out, " {}µs", event.duration_micros);
    }
    if let Some(hit) = event.cache_hit {
        let _ = write!(out, " cache={}", if hit { "hit" } else { "miss" });
    }
    if let Some(client) = &event.client {
        let _ = write!(out, " client={client}");
    }
    out
}

/// Parses `--fsync` / `--segment-entries` into a [`runtime::WalConfig`].
fn wal_config_from(options: &HashMap<&str, &str>) -> Result<runtime::WalConfig, String> {
    let mut config = runtime::WalConfig::default();
    if let Some(n) = opt_u64(options, "segment-entries")? {
        if n == 0 {
            return Err("--segment-entries must be positive".into());
        }
        config.segment_max_entries = n;
    }
    if let Some(&policy) = options.get("fsync") {
        config.fsync = policy.parse()?;
    }
    Ok(config)
}

/// Surfaces a WAL recovery's torn-tail truncation on stderr — evidence of
/// an unclean shutdown that scripted drivers may want to capture.
fn report_recovery(path: &str, recovery: &runtime::WalRecovery) {
    if recovery.truncated_bytes > 0 {
        eprintln!(
            "recovered WAL {path}: truncated {} torn byte(s) off the active segment \
             ({} entries survive)",
            recovery.truncated_bytes, recovery.recovered_entries
        );
    }
}

/// Loads a journal — a single `.jsonl` file or a WAL directory — and
/// rebuilds the workload spec its header names.
fn journal_with_spec(path: &str) -> Result<(runtime::Journal, platform::SystemSpec), String> {
    let (journal, recovery) = runtime::Journal::load(path).map_err(|e| e.to_string())?;
    if let Some(recovery) = &recovery {
        report_recovery(path, recovery);
    }
    let header = journal.header();
    if header.apps == 0 {
        return Err(format!(
            "journal {path} records no workload parameters in its header \
             (recorded outside `probcon fleet-bench`?); drive it through the \
             runtime API against the original spec instead"
        ));
    }
    let spec = workload_with(
        header.seed,
        header.apps as usize,
        &GeneratorConfig::with_actors(header.actors as usize),
    )
    .map_err(|e| e.to_string())?;
    Ok((journal, spec))
}

fn cmd_replay(path: Option<&str>, _options: &HashMap<&str, &str>) -> Result<ExitCode, String> {
    use runtime::{FleetConfig, JournalReplayer};

    let path = path.ok_or("replay needs a journal file")?;
    let (journal, spec) = journal_with_spec(path)?;
    let header = journal.header().clone();
    println!(
        "replaying {}: {} decisions ({} applications × {} actors, {} groups, {} routing)",
        path,
        journal.len(),
        header.apps,
        header.actors,
        header.groups,
        header.policy,
    );

    let config = FleetConfig::from_header(&header).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let (report, fleet) = JournalReplayer::new(&spec)
        .replay(&journal, config)
        .map_err(|e| e.to_string())?;
    print!("{}", report.render());
    print!("{}", fleet.snapshot().render());
    println!("({:?} total)", start.elapsed());
    if report.is_equivalent() {
        Ok(ExitCode::SUCCESS)
    } else {
        // Divergence details go to stderr — in full, before the exit — so
        // scripted replays (CI) capture exactly which decisions flipped
        // even when stdout is discarded.
        for d in &report.divergences {
            eprintln!(
                "replay divergence at seq {}: expected `{}`, got `{}`",
                d.seq, d.expected, d.got
            );
        }
        eprintln!(
            "replay diverged from the recording in {} of {} decisions",
            report.divergences.len(),
            report.events
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Parses `lo..hi` (inclusive) or a single value into a range pair.
fn parse_range<T: std::str::FromStr + Copy>(value: &str, flag: &str) -> Result<(T, T), String> {
    let parse_one =
        |s: &str| -> Result<T, String> { s.parse().map_err(|_| format!("--{flag}: bad '{s}'")) };
    match value.split_once("..") {
        Some((lo, hi)) => Ok((parse_one(lo)?, parse_one(hi)?)),
        None => {
            let v = parse_one(value)?;
            Ok((v, v))
        }
    }
}

fn cmd_plan(path: Option<&str>, options: &HashMap<&str, &str>) -> Result<ExitCode, String> {
    use runtime::{FleetShape, PlanRun, PlanSweep, RouteMode, RoutingPolicy};

    let path = path.ok_or("plan needs a journal file")?;
    let (journal, spec) = journal_with_spec(path)?;
    let base = FleetShape::from_header(journal.header());

    let routing = match options.get("routing").copied() {
        None | Some("auto") => RouteMode::Auto,
        Some("recorded") => RouteMode::Recorded,
        Some("replanned") | Some("replan") => RouteMode::Replan,
        Some(other) => return Err(format!("--routing: unknown mode '{other}'")),
    };
    let policy = options
        .get("policy")
        .map(|p| p.parse::<RoutingPolicy>())
        .transpose()?;
    let json = options.contains_key("json");
    let fail_on_flips = options.contains_key("fail-on-flips");

    let (groups_lo, groups_hi) = match options.get("groups") {
        Some(value) => parse_range::<usize>(value, "groups")?,
        None => (base.groups.len(), base.groups.len()),
    };
    if groups_lo == 0 || groups_lo > groups_hi {
        return Err("--groups: range must be 1-based and ordered".into());
    }
    let (scale_lo, scale_hi) = match options.get("capacity-scale") {
        Some(value) => parse_range::<f64>(value, "capacity-scale")?,
        None => (1.0, 1.0),
    };
    if !(scale_lo > 0.0 && scale_hi >= scale_lo) {
        return Err("--capacity-scale: range must be positive and ordered".into());
    }

    // --policy-file evaluates an elastic scale policy against the
    // recorded stream (the policy decides capacity; recorded resizes are
    // skipped). One-shot only: a sweep already varies shape itself.
    let scale_policy = options
        .get("policy-file")
        .map(|path| {
            if options.contains_key("sweep") {
                return Err("--policy-file does not combine with --sweep".to_string());
            }
            let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            runtime::ScalePolicy::from_json(&json).map_err(|e| format!("{path}: {e}"))
        })
        .transpose()?;
    let policy_every = opt_u64(options, "policy-every")?.unwrap_or(8);
    if policy_every == 0 {
        return Err("--policy-every must be positive".into());
    }
    if scale_policy.is_none() && options.contains_key("policy-every") {
        return Err("--policy-every needs --policy-file".into());
    }

    if !options.contains_key("sweep") {
        for flag in ["workers", "flip-budget", "scale-steps"] {
            if options.contains_key(flag) {
                return Err(format!("--{flag} only applies with --sweep"));
            }
        }
        if groups_lo != groups_hi || (scale_lo - scale_hi).abs() > f64::EPSILON {
            return Err(
                "ranges need --sweep; pass single --groups / --capacity-scale values \
                 for a one-shot plan"
                    .into(),
            );
        }
        let mut shape = base
            .clone()
            .with_group_count(groups_lo)
            .scale_capacity(scale_lo);
        if let Some(policy) = policy {
            shape = shape.swap_policy(policy);
        }
        println!(
            "planning {path}: {} events against shape {} (recorded {})",
            journal.len(),
            shape.label(),
            base.label(),
        );
        let mut run = PlanRun::new(&spec, &journal, &shape).with_routing(routing);
        if let Some(policy) = scale_policy {
            run = run.with_scale_policy(policy, policy_every);
        }
        let report = run.execute().map_err(|e| e.to_string())?;
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        } else {
            print!("{}", report.render());
        }
        return Ok(exit_for_flips(fail_on_flips, report.flip_count()));
    }

    // Sweep: cross the requested axes into a shape grid.
    let workers = opt_u64(options, "workers")?.unwrap_or(8) as usize;
    if workers == 0 {
        return Err("--workers must be positive".into());
    }
    let scale_steps = opt_u64(options, "scale-steps")?.unwrap_or(4) as usize;
    if scale_steps == 0 {
        return Err("--scale-steps must be positive".into());
    }
    let group_counts: Vec<usize> = (groups_lo..=groups_hi).collect();
    let scales: Vec<f64> = if (scale_hi - scale_lo).abs() < f64::EPSILON {
        vec![scale_lo]
    } else {
        (0..scale_steps)
            .map(|i| scale_lo + (scale_hi - scale_lo) * i as f64 / (scale_steps - 1).max(1) as f64)
            .collect()
    };
    let policies: Vec<RoutingPolicy> = policy.into_iter().collect();
    let shapes = PlanSweep::grid(&base, &group_counts, &scales, &policies);
    // Default regression budget: 5% of the recorded admissions — "almost
    // everything still served" — unless the caller picks a number.
    let recorded_admissions = journal.with_entries(|entries| {
        entries
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    runtime::DecisionEvent::Admit {
                        outcome: runtime::JournalOutcome::Admitted { .. },
                        ..
                    }
                )
            })
            .count() as u64
    });
    let flip_budget = opt_u64(options, "flip-budget")?.unwrap_or(recorded_admissions / 20);

    println!(
        "sweeping {path}: {} events × {} shapes on {} workers (recorded {}, budget {})",
        journal.len(),
        shapes.len(),
        workers,
        base.label(),
        flip_budget,
    );
    let report = PlanSweep::new(&spec, &journal)
        .shapes(shapes)
        .routing(routing)
        .workers(workers)
        .flip_budget(flip_budget)
        .execute()
        .map_err(|e| e.to_string())?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render());
    }
    let flips: usize = report.reports.iter().map(|r| r.flip_count()).sum();
    Ok(exit_for_flips(fail_on_flips, flips))
}

fn exit_for_flips(fail_on_flips: bool, flips: usize) -> ExitCode {
    if fail_on_flips && flips > 0 {
        eprintln!("plan reported {flips} flips and --fail-on-flips is set");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_journal(positional: &[&str], options: &HashMap<&str, &str>) -> Result<(), String> {
    use runtime::Journal;

    match positional.first().copied() {
        Some("split") => {
            let path = positional
                .get(1)
                .copied()
                .ok_or("journal split needs a journal file")?;
            let journal = Journal::read_from(path).map_err(|e| e.to_string())?;
            let source = std::path::Path::new(path);
            let out_dir = options
                .get("out-dir")
                .map(std::path::PathBuf::from)
                .or_else(|| source.parent().map(std::path::Path::to_path_buf))
                .unwrap_or_else(|| std::path::PathBuf::from("."));
            std::fs::create_dir_all(&out_dir)
                .map_err(|e| format!("create {}: {e}", out_dir.display()))?;
            let stem = source
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("journal");
            let parts = journal.split_by_client().map_err(|e| e.to_string())?;
            println!(
                "splitting {path}: {} decisions across {} client(s)",
                journal.len(),
                parts.len()
            );
            let mut used_names: Vec<String> = Vec::new();
            for (client, part) in &parts {
                // Client ids arrive over the wire and are untrusted: keep
                // only filename-safe characters so a hostile id (path
                // separators, `..`) cannot steer the write outside
                // --out-dir, and suffix sanitized collisions so no part
                // silently overwrites another.
                let base = match client {
                    Some(client) => {
                        let safe: String = client
                            .chars()
                            .map(|c| {
                                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                                    c
                                } else {
                                    '_'
                                }
                            })
                            .collect();
                        let safe = safe.trim_matches('.');
                        if safe.is_empty() {
                            format!("{stem}.client-anon")
                        } else {
                            format!("{stem}.client-{safe}")
                        }
                    }
                    None => format!("{stem}.unattributed"),
                };
                let mut name = format!("{base}.jsonl");
                let mut suffix = 2;
                while used_names.contains(&name) {
                    name = format!("{base}-{suffix}.jsonl");
                    suffix += 1;
                }
                used_names.push(name.clone());
                let out = out_dir.join(name);
                part.write_to(&out).map_err(|e| e.to_string())?;
                println!(
                    "  {:<24} {} decisions -> {}",
                    client.as_deref().unwrap_or("(unattributed)"),
                    part.len(),
                    out.display()
                );
            }
            Ok(())
        }
        Some("merge") => {
            let (Some(a), Some(b)) = (positional.get(1).copied(), positional.get(2).copied())
            else {
                return Err("journal merge needs two journal files".into());
            };
            let out = options.get("out").ok_or("journal merge needs --out")?;
            let left = Journal::read_from(a).map_err(|e| e.to_string())?;
            let right = Journal::read_from(b).map_err(|e| e.to_string())?;
            let merged = Journal::merge(&left, &right).map_err(|e| e.to_string())?;
            merged.write_to(out).map_err(|e| e.to_string())?;
            println!(
                "merged {} + {} decisions -> {} ({} total; replay with: probcon replay {out})",
                left.len(),
                right.len(),
                out,
                merged.len()
            );
            Ok(())
        }
        Some("compact") => {
            let dir = positional
                .get(1)
                .copied()
                .ok_or("journal compact needs a WAL directory")?;
            // --keep K retains the last K snapshot checkpoints: segments
            // are only garbage-collected up to the OLDEST retained
            // snapshot, so any of the last K checkpoints is a valid
            // point-in-time replay base.
            let keep = opt_u64(options, "keep")?.unwrap_or(1) as usize;
            if keep == 0 {
                return Err("--keep must be at least 1".into());
            }
            let config = runtime::WalConfig {
                keep_snapshots: keep,
                ..runtime::WalConfig::default()
            };
            let (journal, recovery) = Journal::open_wal(dir, config).map_err(|e| e.to_string())?;
            report_recovery(dir, &recovery);
            let before = journal.wal_stats().expect("open_wal yields a WAL journal");
            // --out renders the whole WAL into one flat journal file — the
            // bridge `journal split`/`merge` point at when handed a WAL
            // directory. It must happen BEFORE the fold below: compaction
            // garbage-collects exactly the per-entry history (and client
            // attribution) the flat export preserves.
            if let Some(out) = options.get("out") {
                journal.write_to(out).map_err(|e| e.to_string())?;
                println!(
                    "rendered {} decision(s) to {out} (replay with: probcon replay {out})",
                    journal.len()
                );
            }
            let checkpoint = journal.compact().map_err(|e| e.to_string())?;
            let after = journal.wal_stats().expect("open_wal yields a WAL journal");
            println!(
                "compacted {dir}: snapshot at seq {}, {} -> {} segment(s), {} -> {} bytes, \
                 {} snapshot(s) retained",
                checkpoint.upto_seq,
                before.segments,
                after.segments,
                before.disk_bytes,
                after.disk_bytes,
                after.snapshots,
            );
            println!(
                "{} resident(s) folded into the snapshot; replay output is unchanged",
                checkpoint.residents.len()
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown journal subcommand '{other}'")),
        None => Err("journal needs a subcommand: split | merge | compact".into()),
    }
}

fn cmd_paper(options: &HashMap<&str, &str>) -> Result<(), String> {
    let horizon = if options.contains_key("quick") {
        50_000
    } else {
        500_000
    };
    let spec = workload_with(
        experiments::workload::DEFAULT_SEED,
        experiments::workload::PAPER_APP_COUNT,
        &GeneratorConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let all = UseCase::all(spec.application_count());
    let mut methods = Method::table1().to_vec();
    methods.push(Method::Exact);
    let eval = evaluate(
        &spec,
        &all,
        &EvalOptions {
            methods,
            sim: SimConfig::with_horizon(horizon),
        },
    )
    .map_err(|e| e.to_string())?;

    println!("===== Table 1 =====");
    println!("{}", render_table1(&experiments::table1::table1(&eval)));
    println!("===== Figure 5 =====");
    if let Some(rows) = experiments::fig5::figure5_from_eval(&spec, &eval) {
        println!("{}", render_fig5(&rows));
    }
    println!("===== Figure 6 =====");
    println!(
        "{}",
        render_fig6(&experiments::fig6::figure6(&eval, spec.application_count()))
    );
    println!("===== Timing =====");
    println!(
        "{}",
        render_timing(&experiments::timing::TimingSummary::from_evaluation(&eval))
    );
    Ok(())
}
