//! # probcon — probabilistic resource-contention performance estimation
//!
//! An open-source reproduction of *"A Probabilistic Approach to Model
//! Resource Contention for Performance Estimation of Multi-featured Media
//! Devices"* (Kumar, Mesman, Corporaal, Theelen, Ha — DAC 2007).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sdf`] — Synchronous Data Flow substrate: graphs, repetition vectors,
//!   exact self-timed period analysis, HSDF/MCR cross-validation, random
//!   graph generation, exact rational arithmetic.
//! * [`platform`] — processing nodes, mappings, applications, use-cases.
//! * [`contention`] — **the paper's contribution**: blocking probabilities,
//!   the exact and m-th order waiting-time formulae, the composability
//!   algebra with inverses, worst-case baselines, run-time admission
//!   control, stochastic execution times.
//! * [`mpsoc_sim`] — the deterministic discrete-event simulator used as
//!   ground truth (the reproduction's POOSL substitute).
//! * [`experiments`] — runners regenerating Figure 5, Table 1, Figure 6 and
//!   the timing comparison.
//! * [`runtime`] — the concurrent online resource manager: one unified
//!   `AdmissionService` trait implemented by the sharded ticket-based
//!   `ResourceManager` and the multi-platform `FleetManager`, composable
//!   middleware layers (`Cached` estimate memoization with sign-off
//!   warming, `Journaled` decision recording with deterministic replay,
//!   `Metered` latency/throughput counters), and the async `FrontEnd`
//!   event loop multiplexing thousands of queued admissions over a small
//!   worker pool (`probcon serve-bench` / `fleet-bench` / `replay`).
//!
//! # Example
//!
//! The paper's two-application worked example, end to end:
//!
//! ```
//! use probcon::contention::{estimate, Method};
//! use probcon::platform::{AppId, Application, Mapping, SystemSpec, UseCase};
//! use probcon::sdf::{figure2_graphs, Rational};
//!
//! let (a, b) = figure2_graphs();
//! let spec = SystemSpec::builder()
//!     .application(Application::new("A", a)?)
//!     .application(Application::new("B", b)?)
//!     .mapping(Mapping::by_actor_index(3))
//!     .build()?;
//! let est = estimate(&spec, UseCase::full(2), Method::SECOND_ORDER)?;
//! assert_eq!(est.period(AppId(0)), Rational::new(1075, 3)); // the paper's "359"
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use contention;
pub use experiments;
pub use mpsoc_sim;
pub use platform;
pub use runtime;
pub use sdf;
