//! Offline stand-in for `serde_json`: JSON text rendering and parsing for
//! the vendored `serde`'s [`Value`] model.

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for this stand-in's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, v, d| write_value(out, v, indent, d),
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("n".into(), Value::Int(-42)),
            ("x".into(), Value::Float(1.5)),
            (
                "items".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn parses_i128_and_floats() {
        let big = i128::MAX;
        let v: Value = from_str(&big.to_string()).unwrap();
        assert_eq!(v, Value::Int(big));
        let f: Value = from_str("2.0").unwrap();
        assert_eq!(f, Value::Float(2.0));
        let e: Value = from_str("1e3").unwrap();
        assert_eq!(e, Value::Float(1000.0));
    }
}
