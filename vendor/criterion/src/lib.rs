//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, `criterion_group!` /
//! `criterion_main!` — with a simple wall-clock measurement loop: warm up,
//! then time `sample_size` samples and report mean/min/max per iteration.
//! Under `--test` (as passed by `cargo test --benches`) each benchmark runs
//! a single iteration for a smoke check.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Measurement configuration and entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(500),
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(self, None, &id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks (mirrors criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(self.criterion, Some(&self.name), &id.into(), sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (output is flushed eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };

    if criterion.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{full_name}: ok (test mode)");
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample costs
    // at least measurement_time / sample_size.
    let target = criterion.measurement_time / sample_size.max(1) as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 8
        } else {
            let scale = target.as_secs_f64() / b.elapsed.as_secs_f64();
            ((iters as f64 * scale * 1.2).ceil() as u64).clamp(iters + 1, iters * 16)
        };
    }

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{full_name:<50} time: [{} {} {}]  ({} samples × {iters} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        samples.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group function (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
            test_mode: false,
        };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).label, "3");
    }
}
