//! `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! A hand-rolled token parser (no `syn`/`quote`): supports non-generic
//! structs (named, tuple, unit) and enums (unit, tuple and struct
//! variants), which covers every derive in this workspace. Attributes —
//! including doc comments and `#[default]` — are skipped, with one
//! exception: `#[serde(skip_none)]` on a named field omits the field from
//! the serialized object when its value serializes to `Null` (the stand-in
//! for upstream's `skip_serializing_if = "Option::is_none"`).
//!
//! Missing named fields deserialize from `Null` when the field type accepts
//! it (so `Option<T>` fields default to `None`, matching upstream serde's
//! ubiquitous `#[serde(default)]` on optional fields); types that reject
//! `Null` keep the original "missing field" error. Together with
//! `skip_none` this is what lets newer journal/wire schemas add optional
//! fields while still parsing — and, for checksummed artefacts,
//! re-serializing byte-for-byte — records written by older builds.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the deriving type.
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One named field and its serde options.
struct Field {
    name: String,
    /// `#[serde(skip_none)]`: omit the field when it serializes to `Null`.
    skip_none: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility until `struct` / `enum`.
    let mut is_enum = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if *id.to_string() == *"struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if *id.to_string() == *"enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic types ({name})");
    }

    if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body, found {other}"),
        };
        Input::Enum {
            name,
            variants: parse_variants(body),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            _ => Input::UnitStruct { name },
        }
    }
}

/// Splits a field/variant list on commas outside `<...>` nesting (parens,
/// brackets and braces arrive as opaque groups, so only angle-bracket depth
/// needs manual tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strips leading `#[...]` attributes from a token chunk.
fn strip_attributes(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut start = 0;
    while start + 1 < chunk.len() {
        match (&chunk[start], &chunk[start + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(_)) if p.as_char() == '#' => start += 2,
            _ => break,
        }
    }
    &chunk[start..]
}

/// True when the chunk's leading attributes contain `#[serde(skip_none)]`.
fn has_skip_none(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while i + 1 < chunk.len() {
        match (&chunk[i], &chunk[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(attr)) if p.as_char() == '#' => {
                let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde"
                        && args.stream().into_iter().any(
                            |tt| matches!(&tt, TokenTree::Ident(a) if a.to_string() == "skip_none"),
                        )
                    {
                        return true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    false
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let skip_none = has_skip_none(chunk);
            let chunk = strip_attributes(chunk);
            // Field name: the last ident before the first top-level ':'
            // (skips `pub` and `pub(...)` visibility).
            let mut name = None;
            for tt in chunk {
                match tt {
                    TokenTree::Ident(id) => name = Some(id.to_string()),
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    _ => {}
                }
            }
            Field {
                name: name.expect("field name"),
                skip_none,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attributes(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let kind = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                // `Variant` or `Variant = discr` (discriminant ignored).
                _ => VariantKind::Unit,
            };
            Variant { name, kind }
        })
        .collect()
}

/// Statement inserting one named field into object `map`, honouring
/// `skip_none`.
fn insert_field(map: &str, value: &str, f: &Field) -> String {
    if f.skip_none {
        format!(
            "match ::serde::Serialize::serialize({value}) {{\n\
             ::serde::Value::Null => {{}}\n\
             __field => {{ {map}.insert(\"{name}\", __field); }}\n}}\n",
            name = f.name
        )
    } else {
        format!(
            "{map}.insert(\"{name}\", ::serde::Serialize::serialize({value}));\n",
            name = f.name
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let mut body = String::from("let mut __m = ::serde::Value::object();\n");
            for f in fields {
                body.push_str(&insert_field("__m", &format!("&self.{}", f.name), f));
            }
            body.push_str("__m");
            impl_serialize(name, &body)
        }
        Input::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::serialize(&self.0)")
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Array(vec![{}])", items.join(", ")),
            )
        }
        Input::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __m = ::serde::Value::object();\n\
                             __m.insert(\"{vn}\", {payload});\n\
                             __m\n}}\n",
                            binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut payload = String::from("let mut __p = ::serde::Value::object();\n");
                        for f in fields {
                            payload.push_str(&insert_field("__p", &f.name, f));
                        }
                        payload.push_str("__p");
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __m = ::serde::Value::object();\n\
                             __m.insert(\"{vn}\", {{ {payload} }});\n\
                             __m\n}}\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let mut body = format!("::core::result::Result::Ok({name} {{\n");
            for f in fields {
                body.push_str(&format!("{}: {},\n", f.name, field_expr("__v", &f.name)));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Input::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"),
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(__v.get_index({i})?)?"))
                .collect();
            impl_deserialize(
                name,
                &format!("::core::result::Result::Ok({name}({}))", items.join(", ")),
            )
        }
        Input::UnitStruct { name } => {
            impl_deserialize(name, &format!("::core::result::Result::Ok({name})"))
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let ctor = if *arity == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::deserialize(__p)?)")
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(__p.get_index({i})?)?"
                                    )
                                })
                                .collect();
                            format!("{name}::{vn}({})", items.join(", "))
                        };
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({ctor}),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, field_expr("__p", &f.name)))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error(format!(\
                 \"unknown {name} variant {{__other}}\"))),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __p) = &__entries[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => ::core::result::Result::Err(::serde::Error(format!(\
                 \"unknown {name} variant {{__other}}\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::Error(\
                 \"expected {name} variant\".to_string())),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// Expression deserializing named field `f` of object value `v`: a present
/// field deserializes normally; a missing one falls back to deserializing
/// `Null` (so nullable types default) and re-raises the original
/// missing-field error when even `Null` is rejected.
fn field_expr(v: &str, f: &str) -> String {
    format!(
        "match {v}.get_field(\"{f}\") {{\n\
         ::core::result::Result::Ok(__f) => ::serde::Deserialize::deserialize(__f)?,\n\
         ::core::result::Result::Err(__e) => \
         match ::serde::Deserialize::deserialize(&::serde::Value::Null) {{\n\
         ::core::result::Result::Ok(__d) => __d,\n\
         ::core::result::Result::Err(_) => return ::core::result::Result::Err(__e),\n\
         }},\n}}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
