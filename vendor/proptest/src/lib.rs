//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait over integer/float ranges, tuples, `prop_map` and
//! `prop::collection::vec`; the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`); and `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`. Inputs are sampled randomly (no shrinking) from a
//! deterministic per-test RNG, so failures are reproducible; set
//! `PROPTEST_CASES` to override the case count.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG feeding strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG derived deterministically from a test's name.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, so every test has its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0, "cannot sample from an empty range");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.below(span) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = rng.below(span) as i128;
                ((start as i128) + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 spans can exceed u128/2 in principle; the workspace only uses spans
// far below that, which `below` handles exactly.
impl Strategy for Range<i128> {
    type Value = i128;

    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;

    fn sample(&self, rng: &mut TestRng) -> i128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let span = end.wrapping_sub(start) as u128 + 1;
        start.wrapping_add(rng.below(span) as i128)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy combinators namespace (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s with a length drawn from a [`SizeRange`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        /// `Vec<S::Value>` with a length sampled from `length`.
        pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                length: length.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = (self.length.min..=self.length.max).sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!` — resampled, not a failure.
    Reject(String),
    /// Assertion failure.
    Fail(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError::Fail(message)
    }

    /// A rejected (assume-filtered) case.
    pub fn reject(message: String) -> TestCaseError {
        TestCaseError::Reject(message)
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests (API-compatible subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(100),
                    "too many rejected inputs in {}",
                    stringify!($name)
                );
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            passed + 1, config.cases, message
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3i128..10, y in 0usize..=4, z in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn map_and_vec(v in prop::collection::vec((0u64..5).prop_map(|n| n * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in v {
                prop_assert!(x % 2 == 0 && x < 10);
            }
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_stable() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
