//! Offline stand-in for `rand`.
//!
//! Implements the subset this workspace uses: a seedable deterministic RNG
//! ([`rngs::StdRng`], SplitMix64 under the hood — *not* upstream's
//! ChaCha12, so seeded streams differ from an upstream build),
//! [`Rng::gen_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`].

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over a core RNG.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform in `[0, n)` via 128-bit multiply-shift
/// with rejection on the biased zone (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(n);
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, span + 1);
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG of this stand-in (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(3usize..17);
            assert_eq!(x, b.gen_range(3usize..17));
            assert!((3..17).contains(&x));
            let y = a.gen_range(5u64..=5);
            assert_eq!(y, 5);
            b.gen_range(5u64..=5);
        }
    }

    #[test]
    fn covers_inclusive_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_unit_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
