//! Offline stand-in for `serde`.
//!
//! Exposes the two traits the workspace derives — [`Serialize`] and
//! [`Deserialize`] — over an owned JSON-like [`Value`] model, plus the
//! derive macros (re-exported from the companion `serde_derive` crate).
//! `serde_json` (also vendored) renders/parses `Value` as JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON-like value: the serialization currency of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (wide enough for `i128`/`u64` fields).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts a key into an object value (no-op on other variants).
    pub fn insert(&mut self, key: &str, value: Value) {
        if let Value::Object(entries) = self {
            entries.push((key.to_string(), value));
        }
    }

    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// [`Error`] if `self` is not an object or the field is missing.
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{key}`"))),
            other => Err(Error(format!(
                "expected object with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Element of an array value.
    ///
    /// # Errors
    ///
    /// [`Error`] if `self` is not an array or the index is out of range.
    pub fn get_index(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(index)
                .ok_or_else(|| Error(format!("missing array element {index}"))),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes a value of this type.
    ///
    /// # Errors
    ///
    /// [`Error`] on shape or type mismatches.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range"))),
                    other => Err(Error(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        Value::Int(i128::try_from(*self).expect("u128 value fits i128"))
    }
}

impl Deserialize for u128 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| Error(format!("integer {i} out of range")))
            }
            other => Err(Error(format!("expected integer, got {}", other.kind()))),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// `&'static str` fields (complexity annotations in experiment artefacts)
// deserialize by leaking the parsed string. A few bytes per parse of an
// artefact file — acceptable for a stand-in; upstream serde rejects this
// shape outright.
impl Deserialize for &'static str {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        String::deserialize(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        let mut m = Value::object();
        m.insert("secs", Value::Int(i128::from(self.as_secs())));
        m.insert("nanos", Value::Int(i128::from(self.subsec_nanos())));
        m
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs = u64::deserialize(value.get_field("secs")?)?;
        let nanos = u32::deserialize(value.get_field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(Error(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok((
            A::deserialize(value.get_index(0)?)?,
            B::deserialize(value.get_index(1)?)?,
        ))
    }
}

// Maps serialize as arrays of [key, value] pairs so non-string keys
// round-trip losslessly through the vendored serde_json.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(|pair| pair.serialize()).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(<(K, V)>::deserialize)
                .collect::<Result<BTreeMap<K, V>, Error>>(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(|pair| pair.serialize()).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(<(K, V)>::deserialize)
                .collect::<Result<HashMap<K, V, S>, Error>>(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i128::deserialize(&42i128.serialize()).unwrap(), 42);
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_as_pair_array() {
        let mut m = BTreeMap::new();
        m.insert(1u32, "one".to_string());
        let v = m.serialize();
        assert!(matches!(&v, Value::Array(items) if items.len() == 1));
        let back: BTreeMap<u32, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn field_errors_are_descriptive() {
        let v = Value::object();
        let err = v.get_field("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
