//! The stochastic execution-time extension the paper's conclusions name:
//! "the approach can be easily extended to varying execution times … where
//! execution times are not fixed but follow a probabilistic distribution."
//!
//! A data-dependent decoder actor (fast skip-frames, slow I-frames) shares a
//! node with a constant-time actor. The example shows how execution-time
//! *variance* — at identical mean utilisation — lengthens the expected
//! waiting time through the inspection paradox (`µ = E[X²]/2E[X]` instead of
//! `τ/2`).
//!
//! Run with: `cargo run --release --example stochastic_loads`

use contention::{waiting_time, ActorLoad, ExecutionTime, Order};
use sdf::Rational;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let period = Rational::integer(1000);

    // Three decoders with the same mean execution time (200) but growing
    // variance.
    let constant = ExecutionTime::constant(Rational::integer(200))?;
    let uniform = ExecutionTime::uniform(Rational::integer(100), Rational::integer(300))?;
    let bimodal = ExecutionTime::discrete([
        (Rational::integer(50), Rational::new(3, 4)), // skip frames
        (Rational::integer(650), Rational::new(1, 4)), // I-frames
    ])?;

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12}",
        "decoder", "E[X]", "Var[X]", "µ (resid.)", "P (util.)"
    );
    println!("{}", "-".repeat(54));
    for (name, dist) in [
        ("constant", &constant),
        ("uniform", &uniform),
        ("bimodal", &bimodal),
    ] {
        let load = ActorLoad::from_distribution(dist, 1, period)?;
        println!(
            "{:<10} {:>8.0} {:>10.0} {:>10.1} {:>12.3}",
            name,
            dist.mean().to_f64(),
            dist.variance().to_f64(),
            load.blocking_time().to_f64(),
            load.probability().to_f64(),
        );
    }

    // A victim actor shares the node with one decoder: its expected waiting
    // time under each variant.
    println!("\nExpected waiting time inflicted on a co-mapped actor:");
    for (name, dist) in [
        ("constant", &constant),
        ("uniform", &uniform),
        ("bimodal", &bimodal),
    ] {
        let load = ActorLoad::from_distribution(dist, 1, period)?;
        let w = waiting_time(&[load], Order::Exact);
        println!("  vs {name:<9} {:.1} time units", w.to_f64());
    }

    println!(
        "\nSame utilisation, same mean — but the bimodal decoder makes others\n\
         wait ~{}x longer than the constant one: residual time is driven by\n\
         E[X²], which the paper's µ = τ/2 is the zero-variance special case of.",
        {
            let wc = waiting_time(
                &[ActorLoad::from_distribution(&constant, 1, period)?],
                Order::Exact,
            );
            let wb = waiting_time(
                &[ActorLoad::from_distribution(&bimodal, 1, period)?],
                Order::Exact,
            );
            format!("{:.1}", (wb / wc).to_f64())
        }
    );
    Ok(())
}
