//! Validating the model's *internals* against the instrumented simulator:
//! per-actor predicted waiting times vs observed request-to-grant delays,
//! and per-node blocking pressure vs observed utilisation.
//!
//! The paper validates end-to-end (estimated vs simulated period); this
//! example opens the box one level deeper.
//!
//! Run with: `cargo run --release --example model_validation`

use contention::Method;
use experiments::validation::validate_internals;
use experiments::workload::{paper_workload, DEFAULT_SEED};
use mpsoc_sim::SimConfig;
use platform::UseCase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_workload(DEFAULT_SEED)?;
    let use_case = UseCase::full(spec.application_count());

    let v = validate_internals(
        &spec,
        use_case,
        Method::Exact,
        SimConfig::with_horizon(500_000),
    )?;

    println!("Per-actor waiting times (all 10 applications concurrent):\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "actor", "predicted", "observed", "Δ"
    );
    println!("{}", "-".repeat(48));
    // Show the ten largest predictions; the CSV-minded can iterate all.
    let mut sorted = v.waiting.clone();
    sorted.sort_by(|a, b| b.predicted.total_cmp(&a.predicted));
    for s in sorted.iter().take(10) {
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>+9.1}",
            format!("{}/{}", spec.application(s.app).name(), s.actor.index()),
            s.predicted,
            s.observed,
            s.predicted - s.observed
        );
    }
    println!(
        "\n{} actors total; mean |error| {:.1} time units; correlation r = {:.3}",
        v.waiting.len(),
        v.mean_absolute_waiting_error(),
        v.waiting_correlation().unwrap_or(f64::NAN)
    );

    println!("\nPer-node pressure vs observed utilisation:\n");
    println!(
        "{:<8} {:>18} {:>12}",
        "node", "Σ P(a) (pressure)", "observed"
    );
    println!("{}", "-".repeat(40));
    for u in &v.utilization {
        println!(
            "node#{:<3} {:>18.2} {:>12.2}",
            u.node, u.predicted_pressure, u.observed_utilization
        );
    }
    println!(
        "\nPressure sums the isolation-period utilisations, so nodes with\n\
         pressure > 1 are over-subscribed: contention must stretch every\n\
         resident application's period until the node fits — which is what\n\
         the observed utilisation (≤ 1) shows."
    );
    Ok(())
}
