//! A multi-featured media device — the scenario the paper's title and
//! introduction motivate.
//!
//! A set-top box runs up to four features concurrently on four processing
//! nodes (RISC, DSP, VLIW, DMA): an H.263-style video decoder, an MP3-style
//! audio decoder, a JPEG photo viewer and the UI renderer. Each feature is a
//! hand-modelled SDF graph; features share nodes, so enabling one feature
//! degrades the others. The example estimates every feature combination
//! analytically (second order) and checks the interesting ones against
//! simulation — exactly the design-time question ("which use-cases still
//! meet their frame rates?") the paper's technique answers without
//! simulating all 2ⁿ combinations.
//!
//! Run with: `cargo run --release --example set_top_box`

use contention::{estimate, Method};
use mpsoc_sim::{simulate, SimConfig};
use platform::{AppId, Application, Mapping, NodeId, SystemSpec, UseCase};
use sdf::{ActorId, SdfGraph, SdfGraphBuilder};

/// H.263-style video decoder: vld → idct → mc → display with a feedback for
/// the reference frame. Times in µs-scale cycles; target ≈ one frame per
/// 1200 time units in isolation.
fn video_decoder() -> Result<SdfGraph, sdf::SdfError> {
    let mut b = SdfGraphBuilder::new("video");
    let vld = b.actor("vld", 300);
    let idct = b.actor("idct", 400);
    let mc = b.actor("mc", 350);
    let disp = b.actor("display", 150);
    b.channel(vld, idct, 1, 1, 0)?;
    b.channel(idct, mc, 1, 1, 0)?;
    b.channel(mc, disp, 1, 1, 0)?;
    b.channel(disp, vld, 1, 1, 1)?; // frame-buffer feedback
    b.channel(mc, vld, 1, 1, 1)?; // reference frame dependency
    for a in [vld, idct, mc, disp] {
        b.self_loop(a, 1);
    }
    b.build()
}

/// MP3-style audio decoder: huffman → subband synthesis (fires twice per
/// granule) → pcm output.
fn audio_decoder() -> Result<SdfGraph, sdf::SdfError> {
    let mut b = SdfGraphBuilder::new("audio");
    let huff = b.actor("huffman", 120);
    let synth = b.actor("synthesis", 180);
    let pcm = b.actor("pcm", 60);
    b.channel(huff, synth, 2, 1, 0)?;
    b.channel(synth, pcm, 1, 2, 0)?;
    b.channel(pcm, huff, 1, 1, 1)?;
    for a in [huff, synth, pcm] {
        b.self_loop(a, 1);
    }
    b.build()
}

/// JPEG photo viewer: parse → dequant/idct → scale.
fn photo_viewer() -> Result<SdfGraph, sdf::SdfError> {
    let mut b = SdfGraphBuilder::new("photo");
    let parse = b.actor("parse", 200);
    let idct = b.actor("jpeg-idct", 500);
    let scale = b.actor("scale", 250);
    b.channel(parse, idct, 1, 1, 0)?;
    b.channel(idct, scale, 1, 1, 0)?;
    b.channel(scale, parse, 1, 1, 1)?;
    for a in [parse, idct, scale] {
        b.self_loop(a, 1);
    }
    b.build()
}

/// UI renderer: events → layout → blit.
fn ui_renderer() -> Result<SdfGraph, sdf::SdfError> {
    let mut b = SdfGraphBuilder::new("ui");
    let events = b.actor("events", 80);
    let layout = b.actor("layout", 220);
    let blit = b.actor("blit", 120);
    b.channel(events, layout, 1, 1, 0)?;
    b.channel(layout, blit, 1, 1, 0)?;
    b.channel(blit, events, 1, 1, 1)?;
    for a in [events, layout, blit] {
        b.self_loop(a, 1);
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four nodes: RISC(0), DSP(1), VLIW(2), DMA(3). Heterogeneous explicit
    // mapping: compute-heavy actors share the DSP and VLIW — the contention
    // hot-spots.
    let mut mapping = Mapping::explicit();
    let assignments: [(usize, &[usize]); 4] = [
        (0, &[0, 2, 1, 3]), // video: vld→RISC, idct→VLIW, mc→DSP, display→DMA
        (1, &[0, 1, 3]),    // audio: huffman→RISC, synthesis→DSP, pcm→DMA
        (2, &[0, 2, 3]),    // photo: parse→RISC, idct→VLIW, scale→DMA
        (3, &[0, 2, 3]),    // ui: events→RISC, layout→VLIW, blit→DMA
    ];
    for (app, nodes) in assignments {
        for (actor, &node) in nodes.iter().enumerate() {
            mapping.assign(AppId(app), ActorId(actor), NodeId(node));
        }
    }

    let spec = SystemSpec::builder()
        .application(Application::new("video", video_decoder()?)?)
        .application(Application::new("audio", audio_decoder()?)?)
        .application(Application::new("photo", photo_viewer()?)?)
        .application(Application::new("ui", ui_renderer()?)?)
        .mapping(mapping)
        .build()?;

    println!("Feature set: video, audio, photo, ui on 4 nodes (RISC/DSP/VLIW/DMA)\n");
    println!("Isolation periods:");
    for (_, app) in spec.iter() {
        println!("  {:<6} {}", app.name(), app.isolation_period());
    }

    println!(
        "\n{:<22} {:>10} {:>10} {:>10} {:>10}",
        "use-case", "video", "audio", "photo", "ui"
    );
    println!("{}", "-".repeat(66));

    // All 15 feature combinations, estimated analytically.
    for uc in UseCase::all(4) {
        let est = estimate(&spec, uc, Method::SECOND_ORDER)?;
        let name: Vec<&str> = uc.app_ids().map(|a| spec.application(a).name()).collect();
        let mut cells = Vec::new();
        for id in [0, 1, 2, 3].map(AppId) {
            if uc.contains(id) {
                cells.push(format!("{:>10.0}", est.period(id).to_f64()));
            } else {
                cells.push(format!("{:>10}", "-"));
            }
        }
        println!("{:<22} {}", name.join("+"), cells.join(" "));
    }

    // Cross-check the maximum-contention use-case against simulation.
    let full = UseCase::full(4);
    let est = estimate(&spec, full, Method::SECOND_ORDER)?;
    let sim = simulate(&spec, full, SimConfig::with_horizon(500_000))?;
    println!("\nAll features on — estimate vs simulation:");
    for (id, app) in spec.iter() {
        let e = est.period(id).to_f64();
        let s = sim
            .app(id)
            .expect("active")
            .average_period()
            .expect("iterations");
        println!(
            "  {:<6} estimated {:>7.0}  simulated {:>7.1}  deviation {:>5.1}%",
            app.name(),
            e,
            s,
            (e - s).abs() / s * 100.0
        );
    }
    Ok(())
}
