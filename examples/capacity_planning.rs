//! Offline capacity planning — replaying a recorded admission journal
//! against hypothetical fleet shapes and reading the frontier.
//!
//! The flow mirrors how a designer would use the tool: record real traffic
//! once (`probcon fleet-bench --journal`), then ask "what if the fleet had
//! been smaller / bigger / shaped differently?" without ever re-running
//! the traffic (`probcon plan --sweep`).
//!
//! Run with: `cargo run --release --example capacity_planning`

use runtime::{
    run_fleet_requests, seeded_fleet_requests, FleetConfig, FleetManager, FleetShape, FlipKind,
    PlanRun, PlanSweep, RoutingPolicy,
};
use sdf::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A seeded 3-application workload, like `probcon fleet-bench` builds.
    let spec = experiments::workload::workload_with(2007, 3, &GeneratorConfig::with_actors(4))?;

    // Record reality: 300 seeded requests against a 2-group fleet of
    // capacity 3 per group. Every decision lands in the fleet's journal.
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
    )?;
    let stream = seeded_fleet_requests(&spec, 2, 300, 2007);
    run_fleet_requests(&fleet, stream, 1);
    let journal = fleet.journal();
    println!(
        "== recorded {} decisions on a {} fleet ==\n",
        journal.len(),
        FleetShape::from_header(journal.header()).label()
    );

    // Sanity anchor: against the recorded shape, the planner reproduces
    // every decision — zero flips, by construction.
    let recorded = FleetShape::from_header(journal.header());
    let identity = PlanRun::new(&spec, journal, &recorded).execute()?;
    assert!(identity.flips.is_empty(), "identity replay must not flip");
    println!("== identity shape ==");
    print!("{}", identity.render());

    // What if capacity had been halved? Admissions reality served start
    // bouncing — each one a recorded regression with its sequence number.
    let halved = recorded.clone().scale_capacity(0.5);
    let report = PlanRun::new(&spec, journal, &halved).execute()?;
    println!("\n== halved capacity ==");
    print!("{}", report.render());
    assert!(
        report.count(FlipKind::AdmittedNowRejected) > 0,
        "halving capacity must regress some admission"
    );

    // Sweep a grid: 1..=3 groups × three capacity scales, replayed in
    // parallel on 4 workers, summarized by the frontier.
    let grid = PlanSweep::grid(&recorded, &[1, 2, 3], &[0.5, 1.0, 1.5], &[]);
    let sweep = PlanSweep::new(&spec, journal)
        .shapes(grid)
        .workers(4)
        .flip_budget(3)
        .execute()?;
    println!("\n== sweep ==");
    print!("{}", sweep.render());
    let clean = sweep
        .smallest_clean_report()
        .expect("the recorded shape itself is clean");
    assert!(clean.shape.total_capacity() <= recorded.total_capacity());

    fleet.stop();
    Ok(())
}
