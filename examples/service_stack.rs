//! The layered admission-service stack, end to end: one `AdmissionService`
//! trait, composable middleware (`Metered<Cached<Journaled<FleetManager>>>`),
//! sign-off cache warming, and the async `FrontEnd` multiplexing hundreds
//! of queued admissions over a four-thread worker pool.
//!
//! Run with: `cargo run --release --example service_stack`

use contention::Method;
use experiments::signoff::sign_off;
use experiments::workload::workload_with;
use platform::UseCase;
use runtime::{
    AdmissionRequest, AdmissionService, Cached, Completion, FleetConfig, FleetManager, FrontEnd,
    FrontEndConfig, JournalReplayer, Journaled, Metered, RoutingPolicy,
};
use sdf::GeneratorConfig;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = workload_with(2007, 4, &GeneratorConfig::with_actors(4))?;

    // One fleet, three middleware layers, one front-end — all the same
    // AdmissionService, so each layer wraps any other. The layers we want
    // to inspect later are held behind Arcs.
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(3, 1, 4, RoutingPolicy::LeastUtilised),
    )?;
    let journaled = Arc::new(Journaled::with_header(
        fleet.clone(),
        fleet.journal().header().clone(),
    ));
    let cached = Arc::new(Cached::new(Arc::clone(&journaled), 64));

    println!("== cache warming from the sign-off artefact ==");
    let report = sign_off(&spec, Method::Composability, None)?;
    let warmed = cached.warm_from_signoff(&report)?;
    println!("warmed {warmed} estimates (all 2^4 - 1 use-cases) before traffic");

    let front = FrontEnd::new(
        Box::new(Metered::new(Arc::clone(&cached))),
        FrontEndConfig {
            workers: 4,
            queue_capacity: 1024,
        },
    );

    println!("\n== non-blocking submission: 200 queued admissions, 4 workers ==");
    let completions: Vec<Completion> = (0..200)
        .map(|i| front.submit(AdmissionRequest::new(i)))
        .collect();
    println!("peak queue depth: {}", front.peak_queue_depth());
    let mut residents = Vec::new();
    let mut saturated = 0usize;
    for completion in completions {
        let decision = completion.wait()?;
        match decision.resident() {
            Some(resident) => residents.push(resident),
            None => saturated += 1,
        }
    }
    println!(
        "{} admitted (fleet capacity 12), {} saturated, every completion resolved",
        residents.len(),
        saturated
    );

    // Estimates ride the same stack and hit the warmed cache.
    for mask in [1u64, 3, 7, 15, 15, 7] {
        front.estimate(UseCase::from_mask(mask), Method::Composability)?;
    }
    println!(
        "estimate cache after traffic: {} hits, {} misses (warmed entries serve)",
        cached.cache().hits(),
        cached.cache().misses()
    );

    // Release through the queue, then read the per-layer metrics table.
    let releases: Vec<Completion<()>> = residents
        .into_iter()
        .map(|resident| front.submit_release(resident))
        .collect();
    for release in releases {
        release.wait()?;
    }

    println!("\n== one consistent per-layer metrics table ==");
    print!("{}", AdmissionService::snapshot(&front).render());
    front.shutdown();

    println!("\n== the middleware journal replays outcome for outcome ==");
    let journal = runtime::Journal::parse(&journaled.journal().render())?;
    let (replay, _fleet) = JournalReplayer::new(&spec).replay(
        &journal,
        FleetConfig::uniform(3, 1, 4, RoutingPolicy::LeastUtilised),
    )?;
    print!("{}", replay.render());
    assert!(replay.is_equivalent());
    Ok(())
}
