//! Design-space exploration: using the millisecond-scale estimator to pick
//! an actor-to-node mapping — the early-design workflow the paper's speed
//! argument enables (simulating every candidate would take hours; estimating
//! hundreds of candidates takes seconds).
//!
//! Compares three mapping strategies for four applications on six nodes:
//! 1. the paper's by-actor-index mapping,
//! 2. the composability-driven pressure balancer,
//! 3. exhaustive rotation search (estimator-scored),
//!
//! and cross-checks the winner against simulation.
//!
//! Run with: `cargo run --release --example design_space`

use contention::dse::{balance_mapping, best_rotation, evaluate_mapping};
use contention::Method;
use mpsoc_sim::{simulate, SimConfig};
use platform::{AppId, Application, Mapping, NodeId, UseCase};
use sdf::{generate_graph, GeneratorConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = GeneratorConfig {
        min_actors: 6,
        max_actors: 6,
        ..GeneratorConfig::default()
    };
    let apps: Vec<Application> = (0..4)
        .map(|s| Application::new(format!("app{s}"), generate_graph(&config, 7100 + s as u64)))
        .collect::<Result<_, _>>()?;
    let nodes = 6;

    println!("4 applications × 6 actors on {nodes} nodes\n");

    // Strategy 1: by-actor-index (the paper's setup).
    let mut by_index = Mapping::explicit();
    for (i, app) in apps.iter().enumerate() {
        for actor in app.graph().actor_ids() {
            by_index.assign(AppId(i), actor, NodeId(actor.index() % nodes));
        }
    }
    let t = Instant::now();
    let (_, cost_index) = evaluate_mapping(&apps, by_index, Method::SECOND_ORDER)?;
    println!(
        "by-actor-index      cost {:.3}  ({:?})",
        cost_index,
        t.elapsed()
    );

    // Strategy 2: composability pressure balancer.
    let t = Instant::now();
    let balanced = balance_mapping(&apps, nodes);
    let (balanced_spec, cost_balanced) = evaluate_mapping(&apps, balanced, Method::SECOND_ORDER)?;
    println!(
        "pressure balancer   cost {:.3}  ({:?})",
        cost_balanced,
        t.elapsed()
    );

    // Strategy 3: exhaustive rotation search (6^4 = 1296 candidates, every
    // one scored analytically).
    let t = Instant::now();
    let (rotations, cost_rotation) = best_rotation(&apps, nodes, Method::SECOND_ORDER)?;
    println!(
        "rotation search     cost {:.3}  (best rotations {:?}, 1296 candidates in {:?})",
        cost_rotation,
        rotations,
        t.elapsed()
    );

    // Cross-check the balanced mapping against simulation.
    println!("\nBalanced mapping, estimate vs simulation (all apps concurrent):");
    let uc = UseCase::full(apps.len());
    let est = contention::estimate(&balanced_spec, uc, Method::SECOND_ORDER)?;
    let sim = simulate(&balanced_spec, uc, SimConfig::with_horizon(300_000))?;
    for (id, app) in balanced_spec.iter() {
        let e = est.period(id).to_f64();
        let s = sim
            .app(id)
            .expect("active")
            .average_period()
            .expect("iterations");
        println!(
            "  {:<6} estimated {:>8.1}  simulated {:>8.1}  ({:+.1}%)",
            app.name(),
            e,
            s,
            (e - s) / s * 100.0
        );
    }
    println!(
        "\nEvery candidate above was scored in milliseconds; simulating all 1296\n\
         rotation candidates at this horizon would take ~{:.0}x longer.",
        1296.0 * 0.3 // rough: ~0.3 s of simulated work per candidate vs ~ms estimates
    );
    Ok(())
}
