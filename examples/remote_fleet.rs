//! A fleet spanning processes: `runtime::remote` serving a
//! `Journaled<Cached<FleetManager>>` stack over a loopback socket, driven
//! by a `RemoteClient` that is itself just another `AdmissionService` —
//! and a server-side journal that replays deterministically.
//!
//! Run with: `cargo run --release --example remote_fleet`

use platform::{Application, Mapping, SystemSpec};
use runtime::{
    AdmissionRequest, AdmissionService, Cached, Completion, Endpoint, FleetConfig, FleetManager,
    JournalReplayer, Journaled, RemoteClient, RemoteServer, RoutingPolicy,
};
use sdf::figure2_graphs;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, b) = figure2_graphs();
    let spec = SystemSpec::builder()
        .application(Application::new("video", a)?)
        .application(Application::new("audio", b)?)
        .mapping(Mapping::by_actor_index(3))
        .build()?;

    // The served stack: journal recording and estimate caching layered
    // over a two-group fleet. The server drives it as a plain
    // `Arc<dyn AdmissionService>` — the layers are invisible to the wire.
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
    )?;
    let fleet_config = FleetConfig::from_header(fleet.journal().header())?;
    let stack = Arc::new(Journaled::new(Cached::new(fleet, 32)));

    // Loopback socket: a Unix domain socket where available, TCP otherwise
    // (port 0 = the OS picks an ephemeral port).
    let addr: Endpoint = if cfg!(unix) {
        let path = std::env::temp_dir().join(format!("remote_fleet_{}.sock", std::process::id()));
        format!("unix:{}", path.display()).parse()?
    } else {
        "tcp:127.0.0.1:0".parse()?
    };
    let journal_stack = Arc::clone(&stack);
    let server = RemoteServer::bind_with(
        &addr,
        Arc::clone(&stack) as Arc<dyn AdmissionService>,
        Some(Box::new(move |from_seq| {
            journal_stack.journal().render_page(from_seq, 4096).ok()
        })),
        runtime::RemoteServerConfig::default(),
    )?;
    println!("== server listening on {} ==", server.local_addr());

    // The client half runs on its own thread, as it would in another
    // process: it learns the workload spec from the handshake and drives
    // the remote fleet through the very same trait every local driver
    // uses, pipelining admissions over one connection.
    let client_addr = server.local_addr().clone();
    let client_thread = std::thread::spawn(move || -> Result<(), String> {
        let client = RemoteClient::connect(&client_addr).map_err(|e| e.to_string())?;
        let spec = client.workload().ok_or("no workload in handshake")?;
        println!(
            "client connected: {} applications, {} domains, {} frames",
            spec.application_count(),
            client.domains(),
            client.wire_mode(),
        );

        // Pipeline a burst of admissions without waiting in between.
        let burst: Vec<Completion> = (0..6)
            .map(|i| AdmissionService::submit(&client, AdmissionRequest::new(i)))
            .collect();
        let mut residents = Vec::new();
        for completion in burst {
            let decision = completion.wait().map_err(|e| e.to_string())?;
            println!("  {decision}");
            residents.extend(decision.resident());
        }
        for resident in residents {
            client.release(resident).map_err(|e| e.to_string())?;
        }

        // The server-side journal, fetched over the wire: checksummed,
        // parsed and verified on this side of the socket.
        let journal = client.fetch_journal().map_err(|e| e.to_string())?;
        journal.verify().map_err(|e| e.to_string())?;
        println!(
            "fetched the server-side journal: {} verified decisions",
            journal.len()
        );
        client.close();
        Ok(())
    });
    client_thread.join().expect("client thread")?;

    // Graceful shutdown: accepts stop first, live connections drain.
    server.shutdown();

    println!("\n== deterministic replay of the wire-recorded journal ==");
    let journal = runtime::Journal::parse(&stack.journal().render())?;
    let (report, _replayed) = JournalReplayer::new(&spec).replay(&journal, fleet_config)?;
    print!("{}", report.render());
    assert!(
        report.is_equivalent(),
        "a journal recorded over the wire must replay outcome-for-outcome"
    );
    Ok(())
}
