//! Multi-platform fleet management with an audited admission journal —
//! the `runtime` crate's `FleetManager` routing admissions across
//! heterogeneous platform groups, rebalancing residents, and recording
//! every decision for deterministic replay.
//!
//! Run with: `cargo run --release --example fleet_journal`

use platform::{AppId, Application, Mapping, SystemSpec};
use runtime::{
    AdmissionDecision, AdmissionRequest, AdmissionService, FleetConfig, FleetManager, GroupConfig,
    JournalReplayer, RoutingPolicy,
};
use sdf::{figure2_graphs, Rational};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, b) = figure2_graphs();
    let spec = SystemSpec::builder()
        .application(Application::new("video", a)?)
        .application(Application::new("audio", b)?)
        .mapping(Mapping::by_actor_index(3))
        .build()?;

    // A heterogeneous fleet: a big "video" group and a small "audio" one,
    // routed by affinity tag with least-utilised fallback.
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig {
            groups: vec![
                GroupConfig::new("video-nodes", 2, 3).with_tags(["video"]),
                GroupConfig::new("audio-nodes", 1, 2).with_tags(["audio"]),
            ],
            policy: RoutingPolicy::Affinity,
        },
    )?;

    println!("== affinity routing with throughput contracts ==");
    // Admissions go through the unified AdmissionService vocabulary — the
    // same requests could drive a single manager or a whole middleware
    // stack unchanged.
    let contract = spec.application(AppId(0)).isolation_throughput() * Rational::new(3, 5);
    let mut residents = Vec::new();
    for (app_index, affinity) in [(0, "video"), (1, "audio"), (0, "video"), (1, "audio")] {
        let request = AdmissionRequest::new(app_index)
            .with_contract(contract)
            .with_affinity(affinity);
        let decision = AdmissionService::admit(&fleet, &request)?;
        let group = fleet.group_name(decision.domain())?;
        match &decision {
            AdmissionDecision::Admitted {
                resident,
                predicted_period,
                ..
            } => {
                println!(
                    "{affinity:<6} -> {group} (resident #{resident}, \
                     predicted period {predicted_period})"
                );
                residents.push(*resident);
            }
            AdmissionDecision::Rejected { violations, .. } => {
                println!(
                    "{affinity:<6} -> {group}: rejected ({} violations)",
                    violations.len()
                );
            }
            AdmissionDecision::Saturated { .. } => {
                println!("{affinity:<6} -> {group}: saturated");
            }
        }
    }

    println!("\n== cross-group rebalancing ==");
    while let Some(mv) = fleet.rebalance() {
        println!(
            "moved resident #{} from {} to {} (predicted period {})",
            mv.resident,
            fleet.group_name(mv.from)?,
            fleet.group_name(mv.to)?,
            mv.predicted_period,
        );
    }
    print!("{}", fleet.snapshot().render());

    println!("\n== journal persistence and deterministic replay ==");
    for resident in residents.drain(..) {
        AdmissionService::release(&fleet, resident)?;
    }
    let path = std::env::temp_dir().join("fleet_journal_example.jsonl");
    fleet.journal().write_to(&path)?;
    println!(
        "wrote {} checksummed decisions to {}",
        fleet.journal().len(),
        path.display()
    );

    let journal = runtime::Journal::read_from(&path)?;
    // The header stamps every group's exact shape — heterogeneous fleets
    // included — so the journal alone rebuilds the fleet it was recorded
    // on, and every admit, rejection, release and rebalance must reproduce
    // its exact recorded outcome.
    let config = FleetConfig::from_header(journal.header())?;
    assert_eq!(config.groups[1].name, "audio-nodes");
    assert_eq!(config.groups[1].capacity(), 2);
    let (report, _replayed) = JournalReplayer::new(&spec).replay(&journal, config)?;
    print!("{}", report.render());
    assert!(
        report.is_equivalent(),
        "replay must reproduce the recording"
    );
    Ok(())
}
