//! Full reproduction of the paper's evaluation (Section 5): Figure 5,
//! Table 1, Figure 6 and the timing comparison, over all 1023 use-cases of
//! the ten-application workload at the paper's 500 000-cycle horizon.
//!
//! Prints every artefact and writes CSV series to `results/`.
//!
//! Run with: `cargo run --release --example paper_figures`
//! (use `-- --quick` for a 50 000-cycle horizon)

use contention::Method;
use experiments::{
    fig5::{figure5_from_eval, figure5_methods},
    fig6::figure6,
    report::{
        fig5_csv, fig6_csv, render_fig5, render_fig6, render_table1, render_timing, table1_csv,
    },
    runner::{evaluate, EvalOptions},
    table1::table1,
    timing::TimingSummary,
    workload::{paper_workload, DEFAULT_SEED},
};
use mpsoc_sim::SimConfig;
use platform::UseCase;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let horizon = if quick { 50_000 } else { 500_000 };

    let spec = paper_workload(DEFAULT_SEED)?;
    println!(
        "Workload: {} applications on {} nodes (seed {DEFAULT_SEED}), horizon {horizon}",
        spec.application_count(),
        spec.node_count()
    );

    // The paper's four methods plus the exact formula for reference.
    let mut methods = Method::table1().to_vec();
    methods.extend(
        figure5_methods()
            .into_iter()
            .filter(|m| !Method::table1().contains(m)),
    );

    let all = UseCase::all(spec.application_count());
    println!("Evaluating {} use-cases …", all.len());
    let eval = evaluate(
        &spec,
        &all,
        &EvalOptions {
            methods,
            sim: SimConfig::with_horizon(horizon),
        },
    )?;

    println!("\n===== Table 1: measured inaccuracy vs simulation =====");
    let rows = table1(&eval);
    println!("{}", render_table1(&rows));

    println!("===== Figure 5: normalized period, all 10 applications concurrent =====");
    let fig5 = figure5_from_eval(&spec, &eval).expect("full use-case evaluated");
    println!("{}", render_fig5(&fig5));

    println!("===== Figure 6: period inaccuracy vs number of concurrent applications =====");
    let fig6 = figure6(&eval, spec.application_count());
    println!("{}", render_fig6(&fig6));

    println!("===== Timing (paper: 23 h simulation vs ~10 min analysis) =====");
    let timing = TimingSummary::from_evaluation(&eval);
    println!("{}", render_timing(&timing));

    fs::create_dir_all("results")?;
    fs::write("results/table1.csv", table1_csv(&rows))?;
    fs::write("results/fig5.csv", fig5_csv(&fig5))?;
    fs::write("results/fig6.csv", fig6_csv(&fig6))?;
    println!("CSV series written to results/{{table1,fig5,fig6}}.csv");
    Ok(())
}
