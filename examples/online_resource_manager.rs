//! The concurrent online resource manager — the paper's admission
//! controller deployed as a thread-safe service (`runtime` crate).
//!
//! Three client threads race to admit applications with throughput
//! contracts onto a capacity-bounded shard; a fourth client serves
//! repeated use-case queries through the estimate cache. Demonstrates
//! ticket-based admit/release, contract rejections, bounded waiting,
//! driving the same manager through the unified `AdmissionService` stack,
//! and graceful stop.
//!
//! Run with: `cargo run --release --example online_resource_manager`

use contention::Method;
use platform::{Application, NodeId, SystemSpec, UseCase};
use runtime::{
    Admission, AdmissionRequest, AdmissionService, Cached, EstimateCache, QueueMode,
    ResourceManager, ResourceManagerConfig,
};
use sdf::{figure2_graphs, Rational};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (graph_a, graph_b) = figure2_graphs();
    let nodes = [NodeId(0), NodeId(1), NodeId(2)];

    let manager = ResourceManager::new(ResourceManagerConfig {
        shards: 1,
        capacity_per_shard: 3,
        queue_mode: QueueMode::Fifo,
        admit_timeout: Some(Duration::from_millis(250)),
    });

    println!("== concurrent admission with throughput contracts ==");
    // Three clients race onto one shard; each demands 70 % of its
    // isolation throughput (1/300). Two residents can satisfy that
    // (predicted period 1075/3 ≈ 358.3 < 300/0.7 ≈ 428.6) but a third
    // would break the contracts — it is rejected, consuming no capacity.
    let contract = Rational::new(7, 10) * Rational::new(1, 300);
    let tickets = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let manager = manager.clone();
                let graph = if i % 2 == 0 {
                    graph_a.clone()
                } else {
                    graph_b.clone()
                };
                scope.spawn(move || {
                    let app = Application::new(format!("client-{i}"), graph)
                        .expect("figure 2 graphs are valid");
                    manager.admit(0, app, &nodes, Some(contract))
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .filter_map(
                |(i, h)| match h.join().expect("client thread does not panic") {
                    Ok(Admission::Admitted(ticket)) => {
                        println!(
                            "client-{i}: admitted as {} (predicted period {}, waited {:?})",
                            ticket.app_id(),
                            ticket.predicted_period().expect("predicted"),
                            ticket.queue_wait(),
                        );
                        Some(ticket)
                    }
                    Ok(Admission::Rejected { violations }) => {
                        for v in &violations {
                            println!("client-{i}: rejected — {v}");
                        }
                        None
                    }
                    Err(e) => {
                        println!("client-{i}: no decision — {e}");
                        None
                    }
                },
            )
            .collect::<Vec<_>>()
    });
    println!(
        "residents: {} / capacity 3 (admitted {}, rejected {}, timed out {})",
        manager.resident_count(),
        manager.metrics().admitted(),
        manager.metrics().rejected(),
        manager.metrics().timeouts(),
    );

    println!("\n== estimate cache for repeated use-case queries ==");
    let spec = SystemSpec::builder()
        .application(Application::new("A", figure2_graphs().0)?)
        .application(Application::new("B", figure2_graphs().1)?)
        .mapping(platform::Mapping::by_actor_index(3))
        .build()?;
    let cache = Arc::new(EstimateCache::new(16));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let spec = &spec;
            scope.spawn(move || {
                for mask in [1u64, 2, 3, 3, 3, 1, 2, 3] {
                    let est = cache
                        .get_or_estimate(spec, UseCase::from_mask(mask), Method::SECOND_ORDER)
                        .expect("estimates");
                    assert_eq!(est.periods().len() as u32, mask.count_ones());
                }
            });
        }
    });
    println!(
        "32 concurrent queries over 3 distinct use-cases: {} hits, {} misses \
         ({:.0}% hit rate)",
        cache.hits(),
        cache.misses(),
        100.0 * cache.hit_rate(),
    );

    println!("\n== the same manager as an AdmissionService stack ==");
    // Bind the workload spec and the manager speaks the unified service
    // vocabulary: spec-relative requests, shared decisions, estimate
    // caching as middleware instead of a bolted-on cache.
    manager.bind_workload(spec.clone());
    let stack = Cached::new(manager.clone(), 16);
    let decision = stack.admit(&AdmissionRequest::new(1).on(0))?;
    println!("service admit: {decision}");
    stack.estimate(UseCase::full(2), Method::SECOND_ORDER)?;
    stack.estimate(UseCase::full(2), Method::SECOND_ORDER)?;
    if let Some(resident) = decision.resident() {
        stack.release(resident)?;
    }
    print!("{}", stack.snapshot().render());

    println!("\n== graceful stop ==");
    manager.stop();
    let (ga, _) = figure2_graphs();
    let refused = manager.admit(0, Application::new("late", ga)?, &nodes, None);
    println!("admission after stop: {}", refused.unwrap_err());
    drop(tickets); // resident tickets still release cleanly after stop
    println!("residents after drain: {}", manager.resident_count());
    Ok(())
}
