//! Ablation: accuracy and cost of the m-th order approximation (Equation 5)
//! as the order m grows — the design trade-off behind the paper's choice to
//! evaluate the second and fourth orders.
//!
//! Two views:
//! 1. a single node with n synthetic actors: waiting time per order vs the
//!    exact Equation 4 value;
//! 2. the full ten-application workload: period inaccuracy vs simulation per
//!    order.
//!
//! Run with: `cargo run --release --example order_sweep`

use contention::{estimate, waiting_time, ActorLoad, Method, Order};
use experiments::workload::{paper_workload, DEFAULT_SEED};
use mpsoc_sim::{simulate, SimConfig};
use platform::UseCase;
use sdf::Rational;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- View 1: convergence on one node -------------------------------
    // Nine co-mapped actors (the paper's 10-app workload puts up to nine
    // "others" on a node) with mixed utilisations.
    let loads: Vec<ActorLoad> = (0..9)
        .map(|i| {
            ActorLoad::new(
                Rational::new(1 + i % 3, 5 + i),
                Rational::integer(20 + 7 * i),
            )
            .expect("valid load")
        })
        .collect();
    let exact = waiting_time(&loads, Order::Exact);
    println!(
        "Nine co-mapped actors; exact waiting time = {:.4}\n",
        exact.to_f64()
    );
    println!("{:<8} {:>12} {:>12}", "order", "waiting", "error vs exact");
    println!("{}", "-".repeat(34));
    for m in 1..=9 {
        let w = waiting_time(&loads, Order::Truncated(m));
        let err = (w - exact).to_f64();
        println!("{:<8} {:>12.4} {:>+12.4}", m, w.to_f64(), err);
    }

    // --- View 2: end-to-end inaccuracy on the paper workload -----------
    let spec = paper_workload(DEFAULT_SEED)?;
    let full = UseCase::full(spec.application_count());
    let sim = simulate(&spec, full, SimConfig::with_horizon(200_000))?;

    println!("\nFull 10-application use-case, estimate vs simulation:");
    println!(
        "{:<10} {:>16} {:>14}",
        "method", "mean |dev| %", "analysis time"
    );
    println!("{}", "-".repeat(42));
    let mut methods: Vec<Method> = (1..=6).map(Method::Order).collect();
    methods.push(Method::Exact);
    methods.push(Method::Composability);
    for method in methods {
        let start = Instant::now();
        let est = estimate(&spec, full, method)?;
        let elapsed = start.elapsed();
        let mut total = 0.0;
        let mut count = 0;
        for m in sim.apps() {
            let s = m.average_period().expect("iterations");
            let e = est.period(m.app()).to_f64();
            total += ((e - s) / s).abs() * 100.0;
            count += 1;
        }
        println!(
            "{:<10} {:>15.2}% {:>14.2?}",
            method.to_string(),
            total / count as f64,
            elapsed
        );
    }
    println!(
        "\nEven orders over-estimate and odd orders under-estimate the exact\n\
         formula (alternating series); past order ~4 the change is negligible,\n\
         matching the paper's choice of the second/fourth orders."
    );
    Ok(())
}
