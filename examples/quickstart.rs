//! Quickstart: the paper's worked example (Figures 2 and 3, Section 3).
//!
//! Two three-actor applications `A` and `B` share three processors; actor
//! `i` of each application runs on processor `i`. We reproduce the paper's
//! numbers end to end — blocking probabilities, waiting times, estimated
//! periods — and then check the estimate against the discrete-event
//! simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use contention::{estimate, Method};
use mpsoc_sim::{simulate, SimConfig};
use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
use sdf::figure2_graphs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The SDFGs of the paper's Figure 2: τ(A) = [100, 50, 100] with
    // q = [1, 2, 1]; τ(B) = [50, 100, 100] with q = [2, 1, 1].
    let (graph_a, graph_b) = figure2_graphs();
    let spec = SystemSpec::builder()
        .application(Application::new("A", graph_a)?)
        .application(Application::new("B", graph_b)?)
        .mapping(Mapping::by_actor_index(3))
        .build()?;

    println!("== Applications in isolation ==");
    for (_, app) in spec.iter() {
        println!(
            "  {}: period {} (throughput {})",
            app.name(),
            app.isolation_period(),
            app.isolation_throughput()
        );
    }

    // Estimate the contended period with every method.
    let use_case = UseCase::full(2);
    println!("\n== Estimated period when A and B run concurrently ==");
    for method in [
        Method::Exact,
        Method::SECOND_ORDER,
        Method::FOURTH_ORDER,
        Method::Composability,
        Method::WorstCaseRoundRobin,
        Method::WorstCaseTdma,
    ] {
        let est = estimate(&spec, use_case, method)?;
        println!(
            "  {:<16} Per(A) = {} ≈ {:.1}, Per(B) = {} ≈ {:.1}",
            method.to_string(),
            est.period(AppId(0)),
            est.period(AppId(0)).to_f64(),
            est.period(AppId(1)),
            est.period(AppId(1)).to_f64(),
        );
    }

    // The per-actor waiting times of Section 3.1.
    let est = estimate(&spec, use_case, Method::Exact)?;
    println!("\n== Waiting times (paper: a = [25/3, 50/3, 50/3], b = [50/3, 25/3, 50/3]) ==");
    for (app_id, app) in spec.iter() {
        for actor in app.graph().actor_ids() {
            let w = est.waiting_time(app_id, actor).expect("actor analyzed");
            println!(
                "  twait({}{}) = {} ≈ {:.1}",
                app.name().to_lowercase(),
                actor.index(),
                w,
                w.to_f64()
            );
        }
    }

    // Ground truth: simulate the same use-case.
    let sim = simulate(&spec, use_case, SimConfig::with_horizon(100_000))?;
    println!("\n== Simulated (non-preemptive FCFS, horizon 100k) ==");
    for m in sim.apps() {
        println!(
            "  {}: average period {:.1}, worst {}, {} iterations",
            spec.application(m.app()).name(),
            m.average_period().expect("enough iterations"),
            m.worst_period().expect("enough iterations"),
            m.iterations()
        );
    }
    println!(
        "\nThe paper notes the probabilistic estimate (~359) lands between the\n\
         simulated periods of the two possible cyclic alignments (300 and 400)."
    );
    Ok(())
}
