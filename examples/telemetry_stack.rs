//! The fully-instrumented admission stack:
//! `Traced<Metered<Cached<Journaled<FleetManager>>>>` under concurrent
//! load, with the flight recorder shared between the `Traced` shell and
//! the cache layer (which owns estimate hit/miss events), a manual
//! rebalance span, Prometheus exposition of every layer's bounded
//! histograms, and the five slowest spans pulled from the recorder.
//!
//! Run with: `cargo run --release --example telemetry_stack`

use experiments::workload::workload_with;
use runtime::{
    run_fleet_stack, seeded_fleet_requests, AdmissionService, Cached, FleetConfig, FleetManager,
    Journaled, Metered, RoutingPolicy, TraceEvent, TraceKind, TraceRecorder, Traced,
};
use sdf::GeneratorConfig;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = workload_with(2007, 4, &GeneratorConfig::with_actors(4))?;
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(3, 1, 4, RoutingPolicy::LeastUtilised),
    )?;

    // One recorder, created first and threaded through the stack: the
    // cache layer records estimate spans with hit/miss flags, everything
    // else is recorded by the outermost `Traced` shell.
    let recorder = Arc::new(TraceRecorder::new(2048));
    let cached = Cached::new(Journaled::new(fleet.clone()), 64);
    cached.attach_trace(Arc::clone(&recorder));
    let stack = Traced::with_recorder(Metered::new(cached), Arc::clone(&recorder));

    println!("== 600 admissions through four instrumented layers, 4 threads ==");
    let stream = seeded_fleet_requests(&spec, 3, 600, 2007);
    let report = run_fleet_stack(&stack, &fleet, stream, 4);
    print!("{}", report.render());

    // Cross-group rebalancing is driven outside the service trait, so the
    // recorder API accepts hand-built spans for it: same ring, same tail.
    let rebalance_started = Instant::now();
    while let Some(step) = fleet.rebalance() {
        recorder.record(
            TraceEvent::new(TraceKind::Rebalance)
                .resident(step.resident)
                .duration(rebalance_started.elapsed()),
        );
    }

    println!("\n== Prometheus exposition (every layer, bounded histograms) ==");
    print!("{}", stack.telemetry().render_prometheus());

    println!("\n== five slowest spans in the flight recorder ==");
    for event in recorder.slowest(5) {
        println!(
            "  #{:<6} {:<10} {:>8}us  app={:?} resident={:?} cache_hit={:?}",
            event.seq,
            event.kind.name(),
            event.duration_micros,
            event.app_index,
            event.resident,
            event.cache_hit,
        );
    }
    let stats = recorder.stats();
    println!(
        "\nflight recorder: {} recorded, {} dropped (capacity {})",
        stats.recorded, stats.dropped, stats.capacity
    );

    // The journal four layers down saw every decision the tracer saw.
    let journal = stack.inner().inner().inner().journal();
    println!(
        "journal four layers down: {} events",
        journal.events().len()
    );
    assert!(stats.recorded > 0 && !journal.events().is_empty());
    Ok(())
}
