//! Run-time admission control — the application the paper's conclusions
//! propose for the composability approach.
//!
//! Applications arrive at a running media device one by one, each with a
//! minimum-throughput requirement. The [`contention::AdmissionController`]
//! decides in `O(actors)` per request — using the composability algebra's
//! inverse operators — whether admitting the newcomer would break any
//! resident application's contract.
//!
//! Run with: `cargo run --release --example admission_control`

use contention::{AdmissionController, AdmissionOutcome};
use platform::{Application, NodeId};
use sdf::{generate_graph, GeneratorConfig, Rational};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl = AdmissionController::new();
    let config = GeneratorConfig::default();

    // Ten candidate applications stream in; each demands at least 60 % of
    // its isolation throughput once admitted.
    let mut admitted = Vec::new();
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "app", "iso period", "min thr (1/t)", "decision"
    );
    println!("{}", "-".repeat(48));

    for seed in 0..10u64 {
        let graph = generate_graph(&config, 4200 + seed);
        let app = Application::new(format!("app-{seed}"), graph)?;
        let nodes: Vec<NodeId> = (0..app.graph().actor_count()).map(NodeId).collect();
        let iso = app.isolation_period();
        // Require ≥ 60 % of isolation throughput: period ≤ iso / 0.6.
        let required = iso.recip() * Rational::new(3, 5);

        let name = app.name().to_string();
        let outcome = ctrl.admit(app, &nodes, Some(required))?;
        match outcome {
            AdmissionOutcome::Admitted {
                id,
                ref predicted_periods,
            } => {
                admitted.push((id, name.clone()));
                println!(
                    "{:<8} {:>12} {:>14} {:>10}",
                    name,
                    iso.to_string(),
                    required
                        .to_f64()
                        .to_string()
                        .chars()
                        .take(9)
                        .collect::<String>(),
                    "ADMIT"
                );
                let worst = predicted_periods
                    .values()
                    .map(|p| p.to_f64())
                    .fold(0.0f64, f64::max);
                println!(
                    "         -> {} resident, worst predicted period {:.0}",
                    predicted_periods.len(),
                    worst
                );
            }
            AdmissionOutcome::Rejected { ref violations } => {
                println!(
                    "{:<8} {:>12} {:>14} {:>10}",
                    name,
                    iso.to_string(),
                    required
                        .to_f64()
                        .to_string()
                        .chars()
                        .take(9)
                        .collect::<String>(),
                    "REJECT"
                );
                for v in violations {
                    println!("         -> {v}");
                }
            }
        }
    }

    // Free capacity again: remove the first two residents and retry the mix.
    println!("\nRemoving the two oldest residents …");
    for (id, name) in admitted.drain(..2.min(admitted.len())) {
        ctrl.remove(id)?;
        println!("  removed {name}");
    }
    println!("Residents now: {}", ctrl.resident_count());

    // Predicted periods of the remaining residents after the removal —
    // updated incrementally, no re-analysis of the resident set.
    for id in ctrl.resident_ids().collect::<Vec<_>>() {
        println!(
            "  {id}: predicted period {:.0}",
            ctrl.predicted_period(id)?.to_f64()
        );
    }
    Ok(())
}
