//! The independence caveat, made visible.
//!
//! Section 3.1 of the paper: "we have assumed that arrival of actors on a
//! node is independent. In practice, this assumption is not always valid.
//! Resource contention will inevitably make the independent actors dependent
//! on each other."
//!
//! This example shows the extreme case. A blocker actor (`P = 1/2`,
//! `µ = 50`) shares a node with a tiny victim actor; the independent-arrival
//! model predicts the victim waits `µ·P = 25` time units on average. In the
//! *deterministic* coupled system, however, the victim phase-locks just
//! behind the blocker and waits essentially nothing — and the lock is an
//! attractor that survives execution-time jitter up to ~±30 % before the
//! prediction progressively re-emerges.
//!
//! Run with: `cargo run --release --example phase_lock`

use contention::{waiting_time, ActorLoad, ExecutionTime, Order};
use mpsoc_sim::{simulate, JitterConfig, SimConfig};
use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
use sdf::{ActorId, Rational, SdfGraphBuilder};

fn two_actor_app(name: &str, t0: u64, t1: u64) -> Application {
    let mut b = SdfGraphBuilder::new(name);
    let x = b.actor("x", t0);
    let y = b.actor("y", t1);
    b.channel(x, y, 1, 1, 0).expect("valid");
    b.channel(y, x, 1, 1, 1).expect("valid");
    Application::new(name, b.build().expect("valid")).expect("valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::builder()
        .application(two_actor_app("blocker", 100, 100)) // period 200, P = 1/2
        .application(two_actor_app("victim", 2, 188)) // period 190
        .mapping(Mapping::by_actor_index(2))
        .build()?;

    // Model predictions for the victim's waiting time on node 0.
    let constant =
        ActorLoad::from_constant_time(Rational::integer(100), 1, Rational::integer(200))?;
    let predicted_constant = waiting_time(&[constant], Order::Exact).to_f64();

    println!("Independent-arrival prediction (constant τ): µ·P = {predicted_constant:.1}\n");
    println!(
        "{:>7} {:>14} {:>22}",
        "jitter", "observed wait", "stochastic prediction"
    );
    println!("{}", "-".repeat(46));

    for spread in [0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let mut cfg = SimConfig::with_horizon(2_000_000);
        if spread > 0 {
            cfg.jitter = Some(JitterConfig {
                spread_percent: spread,
                seed: 42,
            });
        }
        let result = simulate(&spec, UseCase::full(2), cfg)?;
        let observed = result
            .actor_stats(AppId(1), ActorId(0))
            .expect("victim active")
            .mean_wait()
            .expect("victim fired");

        // Stochastic model with the same uniform spread.
        let s = spread as i128;
        let predicted = if spread == 0 {
            predicted_constant
        } else {
            let dist =
                ExecutionTime::uniform(Rational::integer(100 - s), Rational::integer(100 + s))
                    .or_else(|_| {
                        ExecutionTime::uniform(Rational::integer(1), Rational::integer(100 + s))
                    })?;
            let load = ActorLoad::from_distribution(&dist, 1, Rational::integer(200))?;
            waiting_time(&[load], Order::Exact).to_f64()
        };
        println!("{:>6}% {:>14.3} {:>22.1}", spread, observed, predicted);
    }

    println!(
        "\nAt 0-30% jitter the victim re-synchronises every cycle (wait ≈ 0):\n\
         resource contention has made the 'independent' actors dependent —\n\
         the caveat the paper states in Section 3.1. Larger jitter breaks the\n\
         lock and the probabilistic prediction becomes the right order of\n\
         magnitude again. Across many random applications these dependences\n\
         average out, which is why the paper's (and this reproduction's)\n\
         aggregate inaccuracy stays near 10%."
    );
    Ok(())
}
