//! Elastic fleet capacity — the `runtime::autoscaler` control loop
//! closing the plan→serve gap: a target-utilisation policy observes the
//! fleet, grows it under load, a drain rebalances a group empty before
//! retiring it, and the journaled run replays outcome-for-outcome,
//! resizes included.
//!
//! Run with: `cargo run --release --example elastic_fleet`

use std::sync::Arc;

use platform::{Application, Mapping, SystemSpec};
use runtime::{
    Autoscaler, FleetAdmission, FleetConfig, FleetManager, JournalReplayer, RoutingPolicy,
    ScalePolicy, TargetPolicy,
};
use sdf::figure2_graphs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, b) = figure2_graphs();
    let spec = SystemSpec::builder()
        .application(Application::new("video", a)?)
        .application(Application::new("audio", b)?)
        .mapping(Mapping::by_actor_index(3))
        .build()?;

    // Two small groups; the controller may raise per-shard capacity up to 6.
    let fleet = Arc::new(FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(2, 1, 2, RoutingPolicy::LeastUtilised),
    )?);

    println!("== a hot fleet under a target-utilisation policy ==");
    // Aggressive knobs so the demo converges in a handful of ticks: grow
    // on the first above-band sample, no cooldown between actions.
    let policy = TargetPolicy {
        low: 0.25,
        high: 0.75,
        grow_after: 1,
        shrink_after: 2,
        cooldown: 0,
        min_capacity_per_shard: 1,
        max_capacity_per_shard: 6,
        step: 1,
        add_group_at_max: false,
        drain_at_min: false,
    };
    let controller = Autoscaler::new(Arc::clone(&fleet), ScalePolicy::Target(policy));

    // Saturate the fleet: park residents (forgetting the RAII tickets so
    // they stay resident) until both groups are full.
    let mut parked = 0;
    for i in 0..4 {
        if let FleetAdmission::Admitted(ticket) = fleet.admit(i, None, None)? {
            ticket.forget();
            parked += 1;
        }
    }
    println!(
        "parked {parked} residents; {}",
        controller.status().render()
    );

    // Tick the control loop by hand (probcon serve --autoscale runs the
    // same loop in a background thread). Each applied grow is journaled.
    for tick in 0..4 {
        if let Some((action, outcome)) = controller.tick()? {
            println!("tick {tick}: {action:?} -> {outcome:?}");
        }
    }
    let snapshot = fleet.snapshot();
    println!(
        "fleet grew to capacity {} ({} resizes journaled)",
        snapshot.groups.iter().map(|g| g.capacity).sum::<usize>(),
        snapshot.resizes,
    );

    println!("\n== draining a group empty before retiring it ==");
    // A drain is all-or-nothing: it rebalances every resident out before
    // retiring the group, and refuses (journaled, fleet untouched) when
    // any resident cannot be placed. Right now group 0 lacks the headroom
    // for both of group 1's residents:
    let refused = fleet.drain_group(1)?;
    println!("drain group 1 -> {refused:?}");
    // Make room — the same resize API the controller drives (this is what
    // ScalePolicy::Manual leaves to the operator) — and drain again.
    fleet.grow_group(0, 5)?;
    let outcome = fleet.drain_group(1)?;
    println!("after growing group 0: drain group 1 -> {outcome:?}");
    print!("{}", fleet.snapshot().render());

    println!("\n== the autoscaled run replays outcome-for-outcome ==");
    let journal = runtime::Journal::parse(&fleet.journal().render())?;
    let config = FleetConfig::from_header(journal.header())?;
    let (report, _replayed) = JournalReplayer::new(&spec).replay(&journal, config)?;
    print!("{}", report.render());
    assert!(
        report.is_equivalent(),
        "replay must reproduce the recording, resizes included"
    );
    Ok(())
}
