//! Actor-to-processor mappings.

use crate::application::AppId;
use sdf::ActorId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a processing node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Dense index of this node.
    pub const fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// How actors are assigned to processing nodes.
///
/// Two forms are supported:
/// * **By actor index** (the paper's setup, Section 3.1: "actors `ai` and
///   `bi` are mapped on `Proci`"): actor `j` of any application goes to node
///   `j mod node_count`.
/// * **Explicit**: a per-`(application, actor)` table, for arbitrary
///   heterogeneous mappings.
///
/// # Examples
///
/// ```
/// use platform::{AppId, Mapping, NodeId};
/// use sdf::ActorId;
///
/// let m = Mapping::by_actor_index(3);
/// assert_eq!(m.node_of(AppId(0), ActorId(2)), NodeId(2));
/// assert_eq!(m.node_of(AppId(5), ActorId(4)), NodeId(1)); // 4 mod 3
///
/// let mut e = Mapping::explicit();
/// e.assign(AppId(0), ActorId(0), NodeId(7));
/// assert_eq!(e.node_of(AppId(0), ActorId(0)), NodeId(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mapping {
    /// Actor `j` of every application maps to node `j mod node_count`.
    ByActorIndex {
        /// Number of processing nodes.
        node_count: usize,
    },
    /// Explicit per-actor assignment.
    Explicit {
        /// `(application, actor) → node` table.
        table: BTreeMap<(AppId, ActorId), NodeId>,
    },
}

impl Mapping {
    /// The paper's mapping: actor `j` → node `j mod node_count`.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    pub fn by_actor_index(node_count: usize) -> Mapping {
        assert!(node_count > 0, "a platform needs at least one node");
        Mapping::ByActorIndex { node_count }
    }

    /// An empty explicit mapping; populate with [`Mapping::assign`].
    pub fn explicit() -> Mapping {
        Mapping::Explicit {
            table: BTreeMap::new(),
        }
    }

    /// Assigns one actor to a node (explicit mappings only).
    ///
    /// # Panics
    ///
    /// Panics when called on a [`Mapping::ByActorIndex`] mapping.
    pub fn assign(&mut self, app: AppId, actor: ActorId, node: NodeId) {
        match self {
            Mapping::Explicit { table } => {
                table.insert((app, actor), node);
            }
            Mapping::ByActorIndex { .. } => {
                panic!("cannot assign individual actors in a by-actor-index mapping")
            }
        }
    }

    /// The node actor `actor` of application `app` runs on.
    ///
    /// # Panics
    ///
    /// For explicit mappings, panics if the pair was never assigned (a
    /// mapping must be total over the actors it is used with; see
    /// [`crate::SystemSpec`] which validates totality at build time).
    pub fn node_of(&self, app: AppId, actor: ActorId) -> NodeId {
        match self {
            Mapping::ByActorIndex { node_count } => NodeId(actor.index() % node_count),
            Mapping::Explicit { table } => *table
                .get(&(app, actor))
                .unwrap_or_else(|| panic!("unmapped actor: {app}/{actor}")),
        }
    }

    /// Whether the pair has an assignment (always true for
    /// [`Mapping::ByActorIndex`]).
    pub fn is_mapped(&self, app: AppId, actor: ActorId) -> bool {
        match self {
            Mapping::ByActorIndex { .. } => true,
            Mapping::Explicit { table } => table.contains_key(&(app, actor)),
        }
    }

    /// Number of nodes referenced by the mapping.
    ///
    /// For explicit mappings this is `max(node index) + 1`, or 0 when empty.
    pub fn node_count(&self) -> usize {
        match self {
            Mapping::ByActorIndex { node_count } => *node_count,
            Mapping::Explicit { table } => table.values().map(|n| n.index() + 1).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_index_wraps() {
        let m = Mapping::by_actor_index(4);
        assert_eq!(m.node_of(AppId(0), ActorId(0)), NodeId(0));
        assert_eq!(m.node_of(AppId(1), ActorId(5)), NodeId(1));
        assert_eq!(m.node_count(), 4);
        assert!(m.is_mapped(AppId(9), ActorId(9)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        Mapping::by_actor_index(0);
    }

    #[test]
    fn explicit_assignment() {
        let mut m = Mapping::explicit();
        m.assign(AppId(0), ActorId(1), NodeId(2));
        m.assign(AppId(1), ActorId(0), NodeId(5));
        assert_eq!(m.node_of(AppId(1), ActorId(0)), NodeId(5));
        assert_eq!(m.node_count(), 6);
        assert!(!m.is_mapped(AppId(2), ActorId(2)));
    }

    #[test]
    #[should_panic(expected = "unmapped actor")]
    fn unmapped_lookup_panics() {
        Mapping::explicit().node_of(AppId(0), ActorId(0));
    }

    #[test]
    #[should_panic(expected = "cannot assign")]
    fn assign_on_by_index_panics() {
        Mapping::by_actor_index(2).assign(AppId(0), ActorId(0), NodeId(0));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "node#3");
        assert_eq!(NodeId::from(1).index(), 1);
    }
}
