//! Use-cases: subsets of applications running concurrently.
//!
//! "A use-case is defined as a possible set of concurrently running
//! applications" (paper, Section 1). With `n` applications there are
//! `2ⁿ − 1` non-empty use-cases; the paper's evaluation enumerates all 1023
//! of them for `n = 10`.

use crate::application::AppId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-empty set of concurrently active applications, stored as a bitmask
/// (so `n ≤ 64` applications — far beyond the paper's 20-application
/// horizon).
///
/// # Examples
///
/// ```
/// use platform::{AppId, UseCase};
///
/// let uc = UseCase::of(&[AppId(0), AppId(2)]);
/// assert!(uc.contains(AppId(0)));
/// assert!(!uc.contains(AppId(1)));
/// assert_eq!(uc.len(), 2);
/// assert_eq!(uc.app_ids().collect::<Vec<_>>(), vec![AppId(0), AppId(2)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UseCase {
    mask: u64,
}

impl UseCase {
    /// Builds a use-case from explicit application ids.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or any id is ≥ 64.
    pub fn of(apps: &[AppId]) -> UseCase {
        assert!(!apps.is_empty(), "a use-case must contain an application");
        let mut mask = 0u64;
        for a in apps {
            assert!(a.index() < 64, "use-cases support at most 64 applications");
            mask |= 1 << a.index();
        }
        UseCase { mask }
    }

    /// Builds a use-case from a raw bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `mask == 0`.
    pub fn from_mask(mask: u64) -> UseCase {
        assert!(mask != 0, "a use-case must contain an application");
        UseCase { mask }
    }

    /// A single-application use-case.
    pub fn single(app: AppId) -> UseCase {
        UseCase::of(&[app])
    }

    /// The use-case containing applications `0..n` (maximum contention).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn full(n: usize) -> UseCase {
        assert!((1..=64).contains(&n), "1..=64 applications supported");
        UseCase {
            mask: if n == 64 { u64::MAX } else { (1u64 << n) - 1 },
        }
    }

    /// All `2ⁿ − 1` non-empty use-cases over `n` applications, in mask
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 20` (enumeration beyond 2²⁰ use-cases is
    /// certainly a bug — the paper's point is that this set explodes).
    ///
    /// # Examples
    ///
    /// ```
    /// use platform::UseCase;
    /// assert_eq!(UseCase::all(10).len(), 1023);
    /// ```
    pub fn all(n: usize) -> Vec<UseCase> {
        assert!(
            (1..=20).contains(&n),
            "refusing to enumerate > 2^20 use-cases"
        );
        (1..(1u64 << n)).map(|mask| UseCase { mask }).collect()
    }

    /// Iterator over all non-empty use-cases without materialising them.
    pub fn iter_all(n: usize) -> UseCaseIter {
        assert!((1..=63).contains(&n), "1..=63 applications supported");
        UseCaseIter {
            next: 1,
            end: 1u64 << n,
        }
    }

    /// Whether `app` participates in this use-case.
    pub fn contains(&self, app: AppId) -> bool {
        app.index() < 64 && (self.mask >> app.index()) & 1 == 1
    }

    /// Number of active applications.
    pub fn len(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Always `false`: use-cases are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw bitmask.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Iterator over the active application ids, ascending.
    pub fn app_ids(&self) -> impl Iterator<Item = AppId> + '_ {
        (0..64).filter(|i| (self.mask >> i) & 1 == 1).map(AppId)
    }

    /// This use-case with `app` added.
    #[must_use]
    pub fn with(&self, app: AppId) -> UseCase {
        assert!(
            app.index() < 64,
            "use-cases support at most 64 applications"
        );
        UseCase {
            mask: self.mask | (1 << app.index()),
        }
    }

    /// This use-case with `app` removed, or `None` if that would empty it.
    #[must_use]
    pub fn without(&self, app: AppId) -> Option<UseCase> {
        let mask = self.mask & !(1 << app.index());
        (mask != 0).then_some(UseCase { mask })
    }
}

impl fmt::Display for UseCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.app_ids().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.index())?;
        }
        write!(f, "}}")
    }
}

/// Iterator over all non-empty use-case masks; see [`UseCase::iter_all`].
#[derive(Debug, Clone)]
pub struct UseCaseIter {
    next: u64,
    end: u64,
}

impl Iterator for UseCaseIter {
    type Item = UseCase;

    fn next(&mut self) -> Option<UseCase> {
        if self.next >= self.end {
            return None;
        }
        let uc = UseCase { mask: self.next };
        self.next += 1;
        Some(uc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.end - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for UseCaseIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let uc = UseCase::of(&[AppId(1), AppId(3)]);
        assert!(uc.contains(AppId(1)));
        assert!(uc.contains(AppId(3)));
        assert!(!uc.contains(AppId(0)));
        assert_eq!(uc.len(), 2);
        assert_eq!(uc.mask(), 0b1010);
        assert!(!uc.is_empty());
    }

    #[test]
    fn full_and_single() {
        assert_eq!(UseCase::full(10).len(), 10);
        assert_eq!(UseCase::single(AppId(7)).mask(), 1 << 7);
        assert_eq!(UseCase::full(64).len(), 64);
    }

    #[test]
    fn paper_enumeration_count() {
        // "over a thousand use-cases (2^10)" — exactly 1023 non-empty ones.
        assert_eq!(UseCase::all(10).len(), 1023);
        assert_eq!(UseCase::iter_all(10).count(), 1023);
    }

    #[test]
    fn iter_all_matches_all() {
        let a = UseCase::all(5);
        let b: Vec<_> = UseCase::iter_all(5).collect();
        assert_eq!(a, b);
        assert_eq!(UseCase::iter_all(5).len(), 31);
    }

    #[test]
    fn with_and_without() {
        let uc = UseCase::single(AppId(0));
        let bigger = uc.with(AppId(4));
        assert_eq!(bigger.len(), 2);
        assert_eq!(bigger.without(AppId(4)), Some(uc));
        assert_eq!(uc.without(AppId(0)), None);
        assert_eq!(bigger.without(AppId(63)), Some(bigger));
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn empty_rejected() {
        UseCase::of(&[]);
    }

    #[test]
    #[should_panic(expected = "2^20")]
    fn huge_enumeration_rejected() {
        UseCase::all(21);
    }

    #[test]
    fn display() {
        assert_eq!(UseCase::of(&[AppId(0), AppId(2)]).to_string(), "{0,2}");
        assert_eq!(UseCase::single(AppId(9)).to_string(), "{9}");
    }

    #[test]
    fn cardinality_buckets() {
        // Used by the Figure 6 reproduction: use-cases grouped by |uc|.
        let by_len = |k: usize| UseCase::all(10).iter().filter(|u| u.len() == k).count();
        assert_eq!(by_len(1), 10);
        assert_eq!(by_len(2), 45);
        assert_eq!(by_len(10), 1);
    }
}
