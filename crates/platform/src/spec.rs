//! The complete system specification: applications + mapping.

use crate::application::{AppId, Application};
use crate::mapping::{Mapping, NodeId};
use crate::usecase::UseCase;
use sdf::{ActorId, SdfError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while assembling or querying a [`SystemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// An application's graph failed validation or analysis.
    Graph(SdfError),
    /// The spec has no applications.
    NoApplications,
    /// The spec has no mapping.
    NoMapping,
    /// An explicit mapping misses an actor.
    UnmappedActor {
        /// Application owning the unmapped actor.
        app: AppId,
        /// The unmapped actor.
        actor: ActorId,
    },
    /// A use-case references an application id outside the spec.
    UnknownApplication(AppId),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Graph(e) => write!(f, "graph error: {e}"),
            PlatformError::NoApplications => write!(f, "system has no applications"),
            PlatformError::NoMapping => write!(f, "system has no mapping"),
            PlatformError::UnmappedActor { app, actor } => {
                write!(f, "actor {actor} of {app} is not mapped")
            }
            PlatformError::UnknownApplication(a) => write!(f, "unknown application {a}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for PlatformError {
    fn from(e: SdfError) -> Self {
        PlatformError::Graph(e)
    }
}

/// A validated multiprocessor system: applications plus a total mapping.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    applications: Vec<Application>,
    mapping: Mapping,
    node_count: usize,
}

impl SystemSpec {
    /// Starts building a spec.
    pub fn builder() -> SystemSpecBuilder {
        SystemSpecBuilder::default()
    }

    /// The applications, indexable by [`AppId`].
    pub fn applications(&self) -> &[Application] {
        &self.applications
    }

    /// Number of applications.
    pub fn application_count(&self) -> usize {
        self.applications.len()
    }

    /// The application with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn application(&self, id: AppId) -> &Application {
        &self.applications[id.index()]
    }

    /// Iterator over `(AppId, &Application)`.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &Application)> {
        self.applications
            .iter()
            .enumerate()
            .map(|(i, a)| (AppId(i), a))
    }

    /// The actor-to-node mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Number of processing nodes the mapping uses.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Node hosting actor `actor` of application `app`.
    pub fn node_of(&self, app: AppId, actor: ActorId) -> NodeId {
        self.mapping.node_of(app, actor)
    }

    /// All `(app, actor)` pairs mapped on `node`, restricted to applications
    /// active in `use_case`.
    ///
    /// This is the "set of other actors on my node" that the paper's
    /// waiting-time computation consumes.
    ///
    /// # Examples
    ///
    /// ```
    /// use platform::{Application, Mapping, NodeId, SystemSpec, UseCase};
    /// use sdf::figure2_graphs;
    ///
    /// let (a, b) = figure2_graphs();
    /// let spec = SystemSpec::builder()
    ///     .application(Application::new("A", a)?)
    ///     .application(Application::new("B", b)?)
    ///     .mapping(Mapping::by_actor_index(3))
    ///     .build()?;
    /// let on0 = spec.actors_on_node(NodeId(0), UseCase::full(2));
    /// assert_eq!(on0.len(), 2); // a0 and b0
    /// # Ok::<(), platform::PlatformError>(())
    /// ```
    pub fn actors_on_node(&self, node: NodeId, use_case: UseCase) -> Vec<(AppId, ActorId)> {
        let mut out = Vec::new();
        for (app_id, app) in self.iter() {
            if !use_case.contains(app_id) {
                continue;
            }
            for actor in app.graph().actor_ids() {
                if self.mapping.node_of(app_id, actor) == node {
                    out.push((app_id, actor));
                }
            }
        }
        out
    }

    /// Validates that `use_case` only references applications in this spec.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownApplication`] otherwise.
    pub fn validate_use_case(&self, use_case: UseCase) -> Result<(), PlatformError> {
        for a in use_case.app_ids() {
            if a.index() >= self.applications.len() {
                return Err(PlatformError::UnknownApplication(a));
            }
        }
        Ok(())
    }
}

/// Builder for [`SystemSpec`]; see [`SystemSpec::builder`].
#[derive(Debug, Default)]
pub struct SystemSpecBuilder {
    applications: Vec<Application>,
    mapping: Option<Mapping>,
}

impl SystemSpecBuilder {
    /// Adds an application; its id is its insertion index.
    #[must_use]
    pub fn application(mut self, app: Application) -> Self {
        self.applications.push(app);
        self
    }

    /// Adds every application from an iterator.
    #[must_use]
    pub fn applications(mut self, apps: impl IntoIterator<Item = Application>) -> Self {
        self.applications.extend(apps);
        self
    }

    /// Sets the mapping.
    #[must_use]
    pub fn mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// Validates totality of the mapping and finalises the spec.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::NoApplications`] / [`PlatformError::NoMapping`] on
    ///   missing parts;
    /// * [`PlatformError::UnmappedActor`] if an explicit mapping misses an
    ///   actor of any application.
    pub fn build(self) -> Result<SystemSpec, PlatformError> {
        if self.applications.is_empty() {
            return Err(PlatformError::NoApplications);
        }
        let mapping = self.mapping.ok_or(PlatformError::NoMapping)?;
        for (i, app) in self.applications.iter().enumerate() {
            for actor in app.graph().actor_ids() {
                if !mapping.is_mapped(AppId(i), actor) {
                    return Err(PlatformError::UnmappedActor {
                        app: AppId(i),
                        actor,
                    });
                }
            }
        }
        let node_count = mapping.node_count();
        Ok(SystemSpec {
            applications: self.applications,
            mapping,
            node_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf::figure2_graphs;

    fn figure2_spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_queries() {
        let spec = figure2_spec();
        assert_eq!(spec.application_count(), 2);
        assert_eq!(spec.node_count(), 3);
        assert_eq!(spec.node_of(AppId(1), ActorId(2)), NodeId(2));
        assert_eq!(spec.application(AppId(0)).name(), "A");
    }

    #[test]
    fn actors_on_node_respects_use_case() {
        let spec = figure2_spec();
        let full = spec.actors_on_node(NodeId(1), UseCase::full(2));
        assert_eq!(full, vec![(AppId(0), ActorId(1)), (AppId(1), ActorId(1))]);
        let only_b = spec.actors_on_node(NodeId(1), UseCase::single(AppId(1)));
        assert_eq!(only_b, vec![(AppId(1), ActorId(1))]);
    }

    #[test]
    fn missing_parts_rejected() {
        assert_eq!(
            SystemSpec::builder().build().unwrap_err(),
            PlatformError::NoApplications
        );
        let (a, _) = figure2_graphs();
        let err = SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .build()
            .unwrap_err();
        assert_eq!(err, PlatformError::NoMapping);
    }

    #[test]
    fn partial_explicit_mapping_rejected() {
        let (a, _) = figure2_graphs();
        let mut m = Mapping::explicit();
        m.assign(AppId(0), ActorId(0), NodeId(0));
        // actors 1 and 2 unmapped
        let err = SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .mapping(m)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnmappedActor { .. }));
    }

    #[test]
    fn use_case_validation() {
        let spec = figure2_spec();
        assert!(spec.validate_use_case(UseCase::full(2)).is_ok());
        assert_eq!(
            spec.validate_use_case(UseCase::single(AppId(5)))
                .unwrap_err(),
            PlatformError::UnknownApplication(AppId(5))
        );
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = PlatformError::Graph(SdfError::Deadlocked);
        assert!(e.to_string().contains("deadlock"));
        assert!(e.source().is_some());
        assert!(PlatformError::NoMapping.source().is_none());
    }
}
