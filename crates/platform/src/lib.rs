//! # platform — multiprocessor platform and use-case model
//!
//! The paper's system model: a heterogeneous multiprocessor with
//! *processing nodes*, a set of *applications* (SDF graphs), a *mapping*
//! assigning every actor of every application to a node, and *use-cases* —
//! "a possible set of concurrently running applications" (Section 1).
//!
//! This crate owns the vocabulary types shared by the analytical estimator
//! (crate `contention`) and the discrete-event simulator (crate
//! `mpsoc-sim`).
//!
//! # Quick start
//!
//! ```
//! use platform::{Application, Mapping, NodeId, SystemSpec, UseCase};
//! use sdf::figure2_graphs;
//!
//! let (graph_a, graph_b) = figure2_graphs();
//! // Map actor i of both applications onto node i (paper, Section 3.1).
//! let spec = SystemSpec::builder()
//!     .application(Application::new("A", graph_a)?)
//!     .application(Application::new("B", graph_b)?)
//!     .mapping(Mapping::by_actor_index(3))
//!     .build()?;
//!
//! assert_eq!(spec.node_count(), 3);
//! let all = UseCase::all(spec.application_count());
//! assert_eq!(all.len(), 3); // {A}, {B}, {A,B}
//! # Ok::<(), platform::PlatformError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod application;
pub mod mapping;
pub mod spec;
pub mod usecase;

pub use application::{AppId, Application};
pub use mapping::{Mapping, NodeId};
pub use spec::{PlatformError, SystemSpec, SystemSpecBuilder};
pub use usecase::{UseCase, UseCaseIter};
