//! Applications: named SDF graphs with pre-computed analysis metadata.

use sdf::{analyze_period, repetition_vector, Rational, RepetitionVector, SdfError, SdfGraph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an application within a [`crate::SystemSpec`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AppId(pub usize);

impl AppId {
    /// Dense index of this application.
    pub const fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

impl From<usize> for AppId {
    fn from(i: usize) -> Self {
        AppId(i)
    }
}

/// An application: an SDF graph plus the analysis results every consumer
/// needs (repetition vector and isolation period).
///
/// Constructing an `Application` validates the graph (consistent, strongly
/// connected, live) and computes its period in isolation — `Per(A)` of the
/// paper's Definition 3 — once, so downstream analyses never repeat the
/// state-space exploration for the unloaded graph.
///
/// # Examples
///
/// ```
/// use platform::Application;
/// use sdf::{figure2_graphs, Rational};
///
/// let (graph_a, _) = figure2_graphs();
/// let app = Application::new("A", graph_a)?;
/// assert_eq!(app.isolation_period(), Rational::integer(300));
/// assert_eq!(app.repetition_vector().as_slice(), &[1, 2, 1]);
/// # Ok::<(), platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    graph: SdfGraph,
    repetition: RepetitionVector,
    isolation_period: Rational,
}

impl Application {
    /// Wraps and validates `graph` under the given display name.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SdfError`] (wrapped in
    /// [`crate::PlatformError::Graph`]) if the graph is inconsistent, not
    /// strongly connected, deadlocked, or its period analysis diverges.
    pub fn new(
        name: impl Into<String>,
        graph: SdfGraph,
    ) -> Result<Application, crate::PlatformError> {
        let repetition = repetition_vector(&graph).map_err(crate::PlatformError::Graph)?;
        let analysis = analyze_period(&graph).map_err(crate::PlatformError::Graph)?;
        Ok(Application {
            name: name.into(),
            graph,
            repetition,
            isolation_period: analysis.period,
        })
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying SDF graph.
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// The repetition vector `q`.
    pub fn repetition_vector(&self) -> &RepetitionVector {
        &self.repetition
    }

    /// Period achieved when the application runs alone on the platform
    /// (`Per(A)`, Definition 3).
    pub fn isolation_period(&self) -> Rational {
        self.isolation_period
    }

    /// Throughput in isolation (`1 / Per(A)`).
    pub fn isolation_throughput(&self) -> Rational {
        self.isolation_period.recip()
    }

    /// Re-analyzes the application with replaced execution times (the
    /// estimator's response-time inflation step) and returns the resulting
    /// period.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures as [`SdfError`].
    pub fn period_with_times(&self, times: &[Rational]) -> Result<Rational, SdfError> {
        sdf::period(&self.graph.with_execution_times(times))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf::figure2_graphs;

    #[test]
    fn validates_and_precomputes() {
        let (a, _) = figure2_graphs();
        let app = Application::new("A", a).unwrap();
        assert_eq!(app.name(), "A");
        assert_eq!(app.isolation_period(), Rational::integer(300));
        assert_eq!(app.isolation_throughput(), Rational::new(1, 300));
        assert_eq!(app.repetition_vector().total_firings(), 4);
    }

    #[test]
    fn rejects_invalid_graph() {
        let mut b = sdf::SdfGraphBuilder::new("dead");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        assert!(Application::new("dead", b.build().unwrap()).is_err());
    }

    #[test]
    fn period_with_times() {
        let (a, _) = figure2_graphs();
        let app = Application::new("A", a).unwrap();
        let p = app
            .period_with_times(&[
                Rational::integer(100) + Rational::new(25, 3),
                Rational::integer(50) + Rational::new(50, 3),
                Rational::integer(100) + Rational::new(50, 3),
            ])
            .unwrap();
        assert_eq!(p, Rational::new(1075, 3));
    }

    #[test]
    fn app_id_display() {
        assert_eq!(AppId(4).to_string(), "app#4");
        assert_eq!(AppId::from(2).index(), 2);
    }
}
