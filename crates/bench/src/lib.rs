//! Shared helpers for the benchmark harness.
//!
//! Every bench in `benches/` regenerates one artefact of the paper
//! (printing the same rows/series the paper reports) and then measures the
//! computational kernel behind it with Criterion. See `DESIGN.md` §4 for the
//! experiment index.

use contention::{ActorLoad, Method};
use experiments::runner::{evaluate, EvalOptions, Evaluation};
use experiments::workload::{paper_workload, DEFAULT_SEED};
use mpsoc_sim::SimConfig;
use platform::{SystemSpec, UseCase};
use sdf::Rational;

/// The paper workload used by all benches (fixed seed → identical artefacts
/// on every run).
pub fn bench_workload() -> SystemSpec {
    paper_workload(DEFAULT_SEED).expect("paper workload is valid")
}

/// Runs the full 1023-use-case evaluation once, at a configurable horizon.
pub fn full_evaluation(spec: &SystemSpec, methods: Vec<Method>, horizon: u64) -> Evaluation {
    let all = UseCase::all(spec.application_count());
    evaluate(
        spec,
        &all,
        &EvalOptions {
            methods,
            sim: SimConfig::with_horizon(horizon),
        },
    )
    .expect("paper workload evaluates cleanly")
}

/// `n` synthetic co-mapped actor loads with mixed utilisations, for the
/// waiting-time complexity benches.
pub fn synthetic_loads(n: usize) -> Vec<ActorLoad> {
    (0..n)
        .map(|i| {
            ActorLoad::new(
                Rational::new(1 + (i as i128 % 3), 5 + (i as i128 % 7)),
                Rational::integer(10 + (i as i128 * 13) % 90),
            )
            .expect("valid synthetic load")
        })
        .collect()
}
