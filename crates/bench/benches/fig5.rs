//! Figure 5 — normalized period of every application under maximum
//! contention (all ten applications concurrent), per analysis technique and
//! simulated.
//!
//! Prints the reproduced figure series, then benchmarks the two ways of
//! obtaining the full-contention period: analytical estimation vs
//! simulation.

use bench::bench_workload;
use contention::{estimate, Method};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig5::{figure5, figure5_methods};
use experiments::report::render_fig5;
use experiments::runner::EvalOptions;
use mpsoc_sim::{simulate, SimConfig};
use platform::UseCase;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let spec = bench_workload();

    // Regenerate the artefact once at the paper's 500k-cycle horizon.
    let rows = figure5(
        &spec,
        &EvalOptions {
            methods: figure5_methods(),
            sim: SimConfig::with_horizon(500_000),
        },
    )
    .expect("figure 5 evaluates");
    println!("\n===== Figure 5 (reproduced; periods normalized to isolation) =====");
    println!("{}", render_fig5(&rows));

    let full = UseCase::full(spec.application_count());

    let mut group = c.benchmark_group("fig5");
    group.sample_size(20);
    group.bench_function("estimate_second_order", |b| {
        b.iter(|| {
            estimate(black_box(&spec), black_box(full), Method::SECOND_ORDER).expect("estimates")
        })
    });
    group.bench_function("simulate_50k", |b| {
        b.iter(|| {
            simulate(
                black_box(&spec),
                black_box(full),
                SimConfig::with_horizon(50_000),
            )
            .expect("simulates")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
