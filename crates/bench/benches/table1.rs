//! Table 1 — measured inaccuracy of every estimation method vs simulation,
//! over all 1023 use-cases.
//!
//! Prints the reproduced table (the same rows the paper reports), then
//! benchmarks the per-use-case cost of each estimation method.

use bench::{bench_workload, full_evaluation};
use contention::{estimate, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::report::render_table1;
use experiments::table1::table1;
use platform::UseCase;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let spec = bench_workload();

    // Regenerate the artefact once (100k-cycle horizon keeps the bench
    // under a minute; the paper-scale 500k run lives in
    // `examples/paper_figures.rs`).
    let eval = full_evaluation(&spec, Method::table1().to_vec(), 100_000);
    println!("\n===== Table 1 (reproduced, 1023 use-cases) =====");
    println!("{}", render_table1(&table1(&eval)));

    // Kernel: one estimation of the maximum-contention use-case per method.
    let full = UseCase::full(spec.application_count());
    let mut group = c.benchmark_group("table1/estimate_full_usecase");
    for method in [
        Method::WorstCaseRoundRobin,
        Method::Composability,
        Method::FOURTH_ORDER,
        Method::SECOND_ORDER,
        Method::Exact,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method),
            &method,
            |b, &method| {
                b.iter(|| estimate(black_box(&spec), black_box(full), method).expect("estimates"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
