//! Ablation: the complexity column of Table 1 — how each waiting-time
//! computation scales with the number of actors on a node.
//!
//! The paper assigns O(n) to the worst case and composability, O(n²) to the
//! second order and O(n⁴) to the fourth order. This bench measures the
//! kernels over n = 2…256 co-mapped actors and prints the per-n timings so
//! the growth rates are visible, then registers Criterion measurements.
//!
//! Also covers the incremental-add claim of Section 4.2: composing one more
//! actor into a node is O(1) versus recomputing the full second-order sum.

use bench::synthetic_loads;
use contention::{composability_waiting_time, waiting_time, Composite, Order};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn print_growth_table() {
    println!("\n===== Waiting-time kernel scaling (complexity column of Table 1) =====");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "n", "composability", "order-2", "order-4", "exact"
    );
    println!("{}", "-".repeat(68));
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let loads = synthetic_loads(n);
        let reps = (4096 / n).max(1) as u32;
        let time = |f: &dyn Fn() -> sdf::Rational| {
            let start = Instant::now();
            for _ in 0..reps {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / reps as f64 * 1e6
        };
        let compos = time(&|| composability_waiting_time(&loads));
        let second = time(&|| waiting_time(&loads, Order::SECOND));
        let fourth = time(&|| waiting_time(&loads, Order::FOURTH));
        // The full-order series holds elementary symmetric polynomials whose
        // *values* grow like C(n, j) — the combinatorial blow-up the paper's
        // truncations exist to avoid. Past n ≈ 128 they exceed any
        // fixed-width arithmetic; the bench reports the truncated methods
        // only, which is exactly the paper's scalability argument.
        let exact = (n <= 128).then(|| time(&|| waiting_time(&loads, Order::Exact)));
        match exact {
            Some(e) => println!(
                "{:<8} {:>12.2}µs {:>12.2}µs {:>12.2}µs {:>12.2}µs",
                n, compos, second, fourth, e
            ),
            None => println!(
                "{:<8} {:>12.2}µs {:>12.2}µs {:>12.2}µs {:>14}",
                n, compos, second, fourth, "(overflows)"
            ),
        }
    }
}

fn bench_scaling(c: &mut Criterion) {
    print_growth_table();

    let mut group = c.benchmark_group("scaling/waiting_time");
    for n in [8usize, 32, 128] {
        let loads = synthetic_loads(n);
        group.bench_with_input(BenchmarkId::new("composability", n), &loads, |b, loads| {
            b.iter(|| composability_waiting_time(black_box(loads)))
        });
        group.bench_with_input(BenchmarkId::new("order-2", n), &loads, |b, loads| {
            b.iter(|| waiting_time(black_box(loads), Order::SECOND))
        });
        group.bench_with_input(BenchmarkId::new("order-4", n), &loads, |b, loads| {
            b.iter(|| waiting_time(black_box(loads), Order::FOURTH))
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &loads, |b, loads| {
            b.iter(|| waiting_time(black_box(loads), Order::Exact))
        });
    }
    group.finish();

    // Incremental add (Section 4.2): one ⊗ against a full recompute.
    let loads = synthetic_loads(64);
    let folded = Composite::from_actors(loads.iter().copied());
    let newcomer = Composite::from_actor(synthetic_loads(65)[64]);
    let mut group = c.benchmark_group("scaling/incremental_add");
    group.bench_function("compose_one_more_O1", |b| {
        b.iter(|| black_box(folded).compose(black_box(newcomer)))
    });
    group.bench_function("recompute_second_order_On", |b| {
        b.iter(|| waiting_time(black_box(&loads), Order::SECOND))
    });
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
