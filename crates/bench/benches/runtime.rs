//! Concurrent admission throughput of the `runtime::ResourceManager` —
//! how the paper's O(actors) admit/remove scales when hammered from many
//! threads against a sharded front-end.
//!
//! Each sample performs a fixed batch of admit+release round-trips split
//! evenly across client threads (figure-2 applications, no contention for
//! capacity), so the measured quantity is lock + analysis cost per
//! admission as parallelism grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, NodeId};
use runtime::{QueueMode, ResourceManager, ResourceManagerConfig};
use sdf::figure2_graphs;
use std::time::Duration;

const OPS_PER_SAMPLE: usize = 64;

fn admit_release_batch(manager: &ResourceManager, threads: usize) {
    let (graph_a, _) = figure2_graphs();
    let nodes = [NodeId(0), NodeId(1), NodeId(2)];
    std::thread::scope(|scope| {
        for t in 0..threads {
            let manager = manager.clone();
            let graph = graph_a.clone();
            scope.spawn(move || {
                let app = Application::new(format!("bench-{t}"), graph).expect("valid graph");
                // One private shard per client thread (shards == threads),
                // so the measurement isolates lock + analysis cost.
                let shard = t % manager.shard_count();
                for _ in 0..OPS_PER_SAMPLE / threads {
                    let ticket = manager
                        .admit(shard, app.clone(), &nodes, None)
                        .expect("no analysis error")
                        .ticket()
                        .expect("no contract set");
                    ticket.release();
                }
            });
        }
    });
}

fn bench_concurrent_admission(c: &mut Criterion) {
    println!("\n===== Concurrent admission throughput (runtime crate) =====");
    println!("{OPS_PER_SAMPLE} admit+release round-trips per sample, split across client threads:");

    let mut group = c.benchmark_group("runtime_admission");
    group.sample_size(15);
    for threads in [1usize, 2, 4, 8] {
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards: threads,
            capacity_per_shard: 16,
            queue_mode: QueueMode::Fifo,
            admit_timeout: Some(Duration::from_secs(5)),
        });
        group.bench_with_input(
            BenchmarkId::new("admit_release_64ops", threads),
            &threads,
            |b, &threads| b.iter(|| admit_release_batch(&manager, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_admission);
criterion_main!(benches);
