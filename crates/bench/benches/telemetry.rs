//! Telemetry-subsystem cost: what instrumentation adds to the hot path.
//!
//! Measures (a) the full admission stack with and without the `Traced`
//! flight-recorder shell at 8 worker threads — the acceptance bar is
//! traced staying within ~10% of untraced — and (b) the raw record
//! primitives underneath it (bounded histogram, atomic recorder, trace
//! ring), which bound the per-event cost every layer pays.

use criterion::{criterion_group, criterion_main, Criterion};
use platform::{Application, Mapping, SystemSpec};
use runtime::{
    run_fleet_stack, seeded_fleet_requests, Cached, FleetConfig, FleetManager, HistogramRecorder,
    LatencyHistogram, Metered, RoutingPolicy, TraceEvent, TraceKind, TraceRecorder, Traced,
};
use sdf::figure2_graphs;
use std::hint::black_box;
use std::time::Duration;

const GROUPS: usize = 4;
const REQUESTS: usize = 200;
const THREADS: usize = 8;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

fn fleet() -> FleetManager {
    FleetManager::new(
        spec(),
        FleetConfig::uniform(GROUPS, 1, 8, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet")
}

fn bench_traced_overhead(c: &mut Criterion) {
    println!("\n===== Traced flight-recorder overhead at {THREADS} threads =====");
    println!("{REQUESTS} seeded admissions through Metered<Cached<FleetManager>> per sample;");
    println!("traced adds the ring-buffer shell and must stay within ~10% of untraced:");

    let spec = spec();
    let mut group = c.benchmark_group("traced_overhead");
    group.sample_size(15);

    let untraced_fleet = fleet();
    let untraced = Metered::new(Cached::new(untraced_fleet.clone(), 64));
    group.bench_function("untraced_8threads", |b| {
        b.iter(|| {
            let stream = seeded_fleet_requests(&spec, GROUPS, REQUESTS, 7);
            black_box(run_fleet_stack(&untraced, &untraced_fleet, stream, THREADS));
        });
    });

    let traced_fleet = fleet();
    let traced = Traced::new(Metered::new(Cached::new(traced_fleet.clone(), 64)), 4096);
    group.bench_function("traced_8threads", |b| {
        b.iter(|| {
            let stream = seeded_fleet_requests(&spec, GROUPS, REQUESTS, 7);
            black_box(run_fleet_stack(&traced, &traced_fleet, stream, THREADS));
        });
    });
    group.finish();
}

fn bench_record_primitives(c: &mut Criterion) {
    println!("\n===== Record-path primitives (per 1024 samples) =====");

    let mut group = c.benchmark_group("telemetry_primitives");
    group.sample_size(60);

    group.bench_function("histogram_record_1024", |b| {
        b.iter(|| {
            let mut histogram = LatencyHistogram::new();
            for i in 0u64..1024 {
                histogram.record(black_box((i * 7919) % 2_000_000));
            }
            black_box(histogram.p999())
        });
    });

    let recorder = HistogramRecorder::new();
    group.bench_function("atomic_recorder_record_1024", |b| {
        b.iter(|| {
            for i in 0u64..1024 {
                recorder.record(black_box((i * 7919) % 2_000_000));
            }
            black_box(recorder.count())
        });
    });

    let ring = TraceRecorder::new(4096);
    group.bench_function("trace_ring_record_1024", |b| {
        b.iter(|| {
            for i in 0u64..1024 {
                ring.record(
                    TraceEvent::new(TraceKind::Admit)
                        .app((i % 4) as usize)
                        .resident(i)
                        .duration(Duration::from_micros(i % 500)),
                );
            }
            black_box(ring.recorded())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_traced_overhead, bench_record_primitives);
criterion_main!(benches);
