//! Figure 6 — period inaccuracy as a function of the number of concurrently
//! executing applications (1–10), per method.
//!
//! Prints the reproduced series, then benchmarks how estimation cost scales
//! with use-case cardinality (the paper's scalability argument).

use bench::{bench_workload, full_evaluation};
use contention::{estimate, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::fig6::figure6;
use experiments::report::render_fig6;
use platform::UseCase;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let spec = bench_workload();

    let eval = full_evaluation(&spec, Method::table1().to_vec(), 100_000);
    println!("\n===== Figure 6 (reproduced; mean |period deviation| %) =====");
    println!("{}", render_fig6(&figure6(&eval, spec.application_count())));

    // Kernel: estimation cost vs number of concurrent applications.
    let mut group = c.benchmark_group("fig6/estimate_vs_cardinality");
    for k in [1usize, 2, 5, 10] {
        let uc = UseCase::full(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &uc, |b, &uc| {
            b.iter(|| {
                estimate(black_box(&spec), black_box(uc), Method::SECOND_ORDER).expect("estimates")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
