//! Ablation: run-time admission control (Section 4.2 + conclusions) — the
//! O(n) incremental add/remove of the composability approach versus a full
//! O(n²) re-estimation of the system, plus the cost of one complete
//! admission decision (which includes period re-prediction for every
//! resident).

use bench::bench_workload;
use contention::{estimate_with, AdmissionController, EstimatorOptions, Method};
use criterion::{criterion_group, criterion_main, Criterion};
use platform::{Application, NodeId, UseCase};
use std::hint::black_box;

fn bench_admission(c: &mut Criterion) {
    let spec = bench_workload();

    // Pre-admit nine of the ten applications.
    let assignments: Vec<Vec<NodeId>> = spec
        .iter()
        .map(|(_, app)| (0..app.graph().actor_count()).map(NodeId).collect())
        .collect();
    let mut ctrl = AdmissionController::new();
    let mut last_id = None;
    for (i, (_, app)) in spec.iter().enumerate().take(9) {
        let outcome = ctrl
            .admit(
                Application::new(app.name(), app.graph().clone()).expect("valid"),
                &assignments[i],
                None,
            )
            .expect("admits");
        last_id = outcome.admitted_id();
    }
    let resident = last_id.expect("nine admitted");
    let tenth = spec.iter().nth(9).expect("ten applications").1;

    println!("\n===== Admission control (reproduced) =====");
    println!("9 residents; admitting #10 incrementally vs re-estimating the whole system:");

    let mut group = c.benchmark_group("admission");
    group.bench_function("incremental_admit_remove", |b| {
        b.iter(|| {
            let outcome = ctrl
                .admit(
                    Application::new(tenth.name(), tenth.graph().clone()).expect("valid"),
                    &assignments[9],
                    None,
                )
                .expect("admits");
            let id = outcome.admitted_id().expect("no requirements set");
            ctrl.remove(id).expect("removes");
        })
    });
    group.bench_function("full_reestimate_composability", |b| {
        b.iter(|| {
            estimate_with(
                black_box(&spec),
                UseCase::full(10),
                Method::Composability,
                &EstimatorOptions::default(),
            )
            .expect("estimates")
        })
    });
    group.bench_function("predict_one_resident", |b| {
        b.iter(|| {
            ctrl.predicted_period(black_box(resident))
                .expect("resident")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
