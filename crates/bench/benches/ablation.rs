//! Ablations of DESIGN.md §5: single-pass vs fixed-point estimation, and
//! arbitration-policy sensitivity of the simulated ground truth.
//!
//! Prints both ablation tables, then benchmarks the estimator's cost as a
//! function of the pass count.

use bench::bench_workload;
use contention::{estimate_with, EstimatorOptions, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::ablation::{arbitration_sensitivity, fixed_point_sweep};
use mpsoc_sim::SimConfig;
use platform::UseCase;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let spec = bench_workload();
    let full = UseCase::full(spec.application_count());

    // Artefact 1: fixed-point sweep.
    let sweep = fixed_point_sweep(
        &spec,
        full,
        Method::SECOND_ORDER,
        5,
        SimConfig::with_horizon(200_000),
    )
    .expect("sweep evaluates");
    println!("\n===== Ablation: single-pass vs fixed-point (2nd order, full use-case) =====");
    println!(
        "{:<12} {:>22} {:>16}",
        "iterations", "mean period (× iso)", "inaccuracy %"
    );
    println!("{}", "-".repeat(52));
    for s in &sweep {
        println!(
            "{:<12} {:>22.3} {:>16.1}",
            s.iterations, s.mean_normalized_period, s.inaccuracy_pct
        );
    }

    // Artefact 2: arbitration sensitivity.
    let sens =
        arbitration_sensitivity(&spec, full, SimConfig::with_horizon(200_000)).expect("simulates");
    println!("\n===== Ablation: arbitration policy sensitivity (simulated truth) =====");
    println!(
        "FCFS mean period {:.3}× iso | static-priority {:.3}× iso | per-app spread {:.1}%",
        sens.fcfs_mean_normalized, sens.priority_mean_normalized, sens.policy_spread_pct
    );

    // Kernel: estimator cost vs pass count.
    let mut group = c.benchmark_group("ablation/fixed_point_passes");
    for passes in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(passes),
            &passes,
            |b, &passes| {
                b.iter(|| {
                    estimate_with(
                        black_box(&spec),
                        black_box(full),
                        Method::SECOND_ORDER,
                        &EstimatorOptions {
                            iterations: passes,
                            ..Default::default()
                        },
                    )
                    .expect("estimates")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
