//! The Section 5 timing comparison — "23 hours of simulation vs about 10
//! minutes of analysis" on the authors' hardware; here, the wall-clock of
//! the two pipelines on identical use-case sets.
//!
//! Prints the reproduced timing summary over all 1023 use-cases, then
//! benchmarks one use-case of each pipeline so Criterion tracks the ratio.

use bench::{bench_workload, full_evaluation};
use contention::{estimate, Method};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::report::render_timing;
use experiments::timing::TimingSummary;
use mpsoc_sim::{simulate, SimConfig};
use platform::UseCase;
use std::hint::black_box;

fn bench_timing(c: &mut Criterion) {
    let spec = bench_workload();

    let eval = full_evaluation(&spec, Method::table1().to_vec(), 500_000);
    println!("\n===== Timing (reproduced; 1023 use-cases, 500k-cycle horizon) =====");
    println!("{}", render_timing(&TimingSummary::from_evaluation(&eval)));

    let full = UseCase::full(spec.application_count());
    let mut group = c.benchmark_group("timing/one_usecase");
    group.sample_size(10);
    group.bench_function("simulation_500k", |b| {
        b.iter(|| {
            simulate(
                black_box(&spec),
                black_box(full),
                SimConfig::with_horizon(500_000),
            )
            .expect("simulates")
        })
    });
    group.bench_function("analysis_all_four_methods", |b| {
        b.iter(|| {
            for method in Method::table1() {
                estimate(black_box(&spec), black_box(full), method).expect("estimates");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
