//! Elastic-controller overhead: what one autoscaler tick costs, and what
//! a journaled resize costs the fleet.
//!
//! Three layers, separated so regressions attribute cleanly:
//! (a) [`evaluate`] — the pure policy decision over an N-group
//! observation, the cost paid even when nothing fires; (b) a full
//! [`Autoscaler::tick`] against a live in-band fleet — telemetry
//! sampling plus evaluation, the steady-state background cost of
//! `probcon serve --autoscale`; (c) a grow+shrink [`FleetManager::resize`]
//! round-trip — the journaled mutation path a firing action takes.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, Mapping, SystemSpec};
use runtime::{
    evaluate, Autoscaler, ControllerState, FleetConfig, FleetManager, GroupObservation,
    Observation, RoutingPolicy, ScaleAction, ScalePolicy, TargetPolicy,
};
use sdf::figure2_graphs;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

/// An in-band observation: utilisation 0.5 sits inside the default
/// 0.3–0.85 target band, so `evaluate` walks every group yet fires
/// nothing — the common steady-state case.
fn in_band_observation(groups: usize) -> Observation {
    Observation {
        groups: (0..groups)
            .map(|g| GroupObservation {
                group: g as u64,
                residents: 4,
                capacity: 8,
                capacity_per_shard: 8,
                shards: 1,
                retired: false,
            })
            .collect(),
        utilisation: 0.5,
    }
}

fn bench_evaluate(c: &mut Criterion) {
    println!("\n===== Autoscaler: pure policy evaluation =====");
    let policy = TargetPolicy::default().normalized();

    let mut group = c.benchmark_group("autoscaler_evaluate");
    for groups in [4usize, 64] {
        let observation = in_band_observation(groups);
        group.bench_with_input(
            BenchmarkId::new("in_band_groups", groups),
            &observation,
            |b, observation| {
                let mut state = ControllerState::default();
                b.iter(|| evaluate(&policy, observation, &mut state));
            },
        );
    }
    group.finish();
}

fn bench_tick(c: &mut Criterion) {
    println!("\n===== Autoscaler: full tick against a live fleet =====");
    let spec = spec();
    let fleet = FleetManager::new(
        spec,
        FleetConfig::uniform(2, 1, 8, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet");
    // Park residents at half capacity so the target band holds and every
    // tick is a no-action sample — the steady-state serve overhead.
    for i in 0..8 {
        if let Ok(runtime::FleetAdmission::Admitted(ticket)) = fleet.admit(i, None, None) {
            ticket.forget();
        }
    }
    let controller = Autoscaler::new(
        Arc::new(fleet),
        ScalePolicy::Target(TargetPolicy::default()),
    );

    let mut group = c.benchmark_group("autoscaler_tick");
    group.sample_size(10);
    group.bench_function("in_band_no_action", |b| {
        b.iter(|| controller.tick().expect("ticks"));
    });
    group.finish();
}

fn bench_resize(c: &mut Criterion) {
    println!("\n===== Autoscaler: journaled resize round-trip =====");
    let spec = spec();
    let fleet = FleetManager::new(
        spec,
        FleetConfig::uniform(2, 1, 8, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet");

    let mut group = c.benchmark_group("autoscaler_resize");
    // Each iteration appends two journal entries; keep the in-memory
    // journal bounded by keeping samples short.
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(200));
    group.bench_function("grow_then_shrink", |b| {
        b.iter(|| {
            fleet
                .resize(ScaleAction::Grow {
                    group: 0,
                    capacity_per_shard: 9,
                })
                .expect("grows");
            fleet
                .resize(ScaleAction::Shrink {
                    group: 0,
                    capacity_per_shard: 8,
                })
                .expect("shrinks");
        });
    });
    group.finish();
    fleet.stop();
}

criterion_group!(benches, bench_evaluate, bench_tick, bench_resize);
criterion_main!(benches);
