//! Capacity-planner throughput: one counterfactual replay, and sweep
//! scaling with worker count.
//!
//! Measures (a) a single [`PlanRun`] over a recorded journal — the cost of
//! one what-if answer — and (b) a fixed 8-shape [`PlanSweep`] grid executed
//! on 1/2/4/8 workers, showing how sweep wall-clock scales when shapes are
//! replayed in parallel (`probcon plan --sweep --workers N`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, Mapping, SystemSpec};
use runtime::{
    run_fleet_requests, seeded_fleet_requests, FleetConfig, FleetManager, FleetShape, Journal,
    PlanRun, PlanSweep, RoutingPolicy,
};
use sdf::figure2_graphs;

const GROUPS: usize = 2;
const REQUESTS: usize = 300;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

/// Records the seeded journal every benchmark replays.
fn recorded_journal(spec: &SystemSpec) -> Journal {
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(GROUPS, 1, 3, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet");
    let stream = seeded_fleet_requests(spec, GROUPS, REQUESTS, 2026);
    run_fleet_requests(&fleet, stream, 1);
    Journal::parse(&fleet.journal().render()).expect("round-trips")
}

fn bench_plan_run(c: &mut Criterion) {
    println!("\n===== Capacity planner: one counterfactual replay =====");
    let spec = spec();
    let journal = recorded_journal(&spec);
    let recorded = FleetShape::from_header(journal.header());
    println!(
        "replaying {} recorded decisions per iteration:",
        journal.len()
    );

    let mut group = c.benchmark_group("planner_run");
    group.sample_size(10);
    for (label, shape) in [
        ("identity", recorded.clone()),
        ("halved_capacity", recorded.clone().scale_capacity(0.5)),
        ("extra_group", recorded.clone().with_group_count(GROUPS + 1)),
    ] {
        group.bench_with_input(BenchmarkId::new("what_if", label), &shape, |b, shape| {
            b.iter(|| {
                let report = PlanRun::new(&spec, &journal, shape)
                    .execute()
                    .expect("plans");
                assert_eq!(report.events, journal.len());
            });
        });
    }
    group.finish();
}

fn bench_sweep_workers(c: &mut Criterion) {
    println!("\n===== Capacity planner: sweep throughput vs worker count =====");
    let spec = spec();
    let journal = recorded_journal(&spec);
    let base = FleetShape::from_header(journal.header());
    let grid = PlanSweep::grid(&base, &[1, 2, 3, 4], &[0.5, 1.0], &[]);
    println!(
        "sweeping {} shapes × {} decisions per iteration:",
        grid.len(),
        journal.len()
    );

    let mut group = c.benchmark_group("planner_sweep");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("grid8_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = PlanSweep::new(&spec, &journal)
                        .shapes(grid.clone())
                        .workers(workers)
                        .execute()
                        .expect("sweeps");
                    assert_eq!(report.reports.len(), grid.len());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan_run, bench_sweep_workers);
criterion_main!(benches);
