//! Fleet-manager throughput: routed admissions across platform groups
//! (with journaling on every decision) and deterministic journal replay.
//!
//! Measures (a) admit+release round-trips through each routing policy —
//! the per-decision cost of routing + analysis + journal append — and
//! (b) end-to-end replay of a recorded decision stream, the regression
//! oracle `probcon replay` runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, Mapping, SystemSpec};
use runtime::{
    run_fleet_requests, seeded_fleet_requests, FleetConfig, FleetManager, JournalReplayer,
    RoutingPolicy,
};
use sdf::figure2_graphs;

const GROUPS: usize = 4;
const OPS_PER_SAMPLE: usize = 32;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

fn bench_routed_admission(c: &mut Criterion) {
    println!("\n===== Fleet admission throughput by routing policy =====");
    println!(
        "{OPS_PER_SAMPLE} journaled admit+release round-trips across {GROUPS} groups per sample:"
    );

    let mut group = c.benchmark_group("fleet_admission");
    group.sample_size(15);
    for policy in [
        RoutingPolicy::LeastUtilised,
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Affinity,
    ] {
        let fleet = FleetManager::new(spec(), FleetConfig::uniform(GROUPS, 1, 8, policy))
            .expect("valid fleet");
        group.bench_with_input(
            BenchmarkId::new("admit_release_32ops", policy),
            &policy,
            |b, _| {
                b.iter(|| {
                    for i in 0..OPS_PER_SAMPLE {
                        let affinity = format!("uc{}", i % GROUPS);
                        let admission = fleet
                            .admit(i, None, Some(&affinity))
                            .expect("no analysis error");
                        if let Some(ticket) = admission.ticket() {
                            ticket.release();
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_journal_replay(c: &mut Criterion) {
    println!("\n===== Journal replay (deterministic re-execution) =====");

    // Record once: a seeded 200-request stream across 4 groups.
    let spec = spec();
    let fleet = FleetManager::new(
        spec.clone(),
        FleetConfig::uniform(GROUPS, 1, 4, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet");
    let stream = seeded_fleet_requests(&spec, GROUPS, 200, 2026);
    run_fleet_requests(&fleet, stream, 1);
    let journal = runtime::Journal::parse(&fleet.journal().render()).expect("round-trips");
    println!(
        "replaying {} recorded decisions per iteration:",
        journal.len()
    );

    let mut group = c.benchmark_group("fleet_replay");
    group.sample_size(10);
    group.bench_function("replay_200req_journal", |b| {
        b.iter(|| {
            let (report, _fleet) = JournalReplayer::new(&spec)
                .replay(
                    &journal,
                    FleetConfig::uniform(GROUPS, 1, 4, RoutingPolicy::LeastUtilised),
                )
                .expect("replays");
            assert!(report.is_equivalent());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_routed_admission, bench_journal_replay);
criterion_main!(benches);
