//! Front-end vs direct-manager admission throughput.
//!
//! Measures the cost of the unified service stack: the same
//! admit+release round-trip batch executed (a) directly against a
//! `ResourceManager`'s ticket API, (b) through its `AdmissionService`
//! implementation, and (c) submitted through the async `FrontEnd` event
//! loop (queued, decided by the worker pool, completion-waited). The
//! deltas are the prices of the trait dispatch and of queue + wakeup,
//! respectively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, Mapping, NodeId, SystemSpec};
use runtime::{
    AdmissionRequest, AdmissionService, Completion, FrontEnd, FrontEndConfig, QueueMode,
    ResourceManager, ResourceManagerConfig,
};
use sdf::figure2_graphs;
use std::time::Duration;

const OPS_PER_SAMPLE: usize = 64;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

fn manager() -> ResourceManager {
    // Capacity covers a whole sample: the front-end case queues every
    // admission of a batch before the first release is submitted.
    let manager = ResourceManager::new(ResourceManagerConfig {
        shards: 1,
        capacity_per_shard: OPS_PER_SAMPLE,
        queue_mode: QueueMode::Fifo,
        admit_timeout: Some(Duration::from_secs(5)),
    });
    manager.bind_workload(spec());
    manager
}

fn bench_front_end_vs_direct(c: &mut Criterion) {
    println!("\n===== Front-end vs direct-manager admission throughput =====");
    println!("{OPS_PER_SAMPLE} admit+release round-trips per sample:");

    let mut group = c.benchmark_group("frontend");
    group.sample_size(15);

    // (a) Direct ticket API — the baseline.
    let direct = manager();
    let (graph_a, _) = figure2_graphs();
    let nodes = [NodeId(0), NodeId(1), NodeId(2)];
    group.bench_function(BenchmarkId::new("direct_manager", "tickets"), |b| {
        let app = Application::new("bench", graph_a.clone()).expect("valid graph");
        b.iter(|| {
            for _ in 0..OPS_PER_SAMPLE {
                let ticket = direct
                    .admit(0, app.clone(), &nodes, None)
                    .expect("no analysis error")
                    .ticket()
                    .expect("no contract set");
                ticket.release();
            }
        });
    });

    // (b) The same manager through the AdmissionService trait.
    let service = manager();
    group.bench_function(BenchmarkId::new("service_trait", "decisions"), |b| {
        b.iter(|| {
            for _ in 0..OPS_PER_SAMPLE {
                let decision = AdmissionService::admit(&service, &AdmissionRequest::new(0).on(0))
                    .expect("no analysis error");
                let resident = decision.resident().expect("fits");
                AdmissionService::release(&service, resident).expect("live resident");
            }
        });
    });

    // (c) Queued through the async front-end, batched submissions.
    for workers in [1usize, 4] {
        let front = FrontEnd::new(
            Box::new(manager()),
            FrontEndConfig {
                workers,
                queue_capacity: OPS_PER_SAMPLE * 2,
            },
        );
        group.bench_with_input(
            BenchmarkId::new("front_end_workers", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let completions: Vec<Completion> = (0..OPS_PER_SAMPLE)
                        .map(|_| front.submit(AdmissionRequest::new(0).on(0)))
                        .collect();
                    let releases: Vec<Completion<()>> = completions
                        .into_iter()
                        .map(|completion| {
                            let resident = completion
                                .wait()
                                .expect("no analysis error")
                                .resident()
                                .expect("fits");
                            front.submit_release(resident)
                        })
                        .collect();
                    for release in releases {
                        release.wait().expect("live resident");
                    }
                });
            },
        );
        front.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_front_end_vs_direct);
criterion_main!(benches);
