//! Local vs UDS vs TCP admission throughput/latency.
//!
//! Measures what the wire costs: the same admit+release round-trip batch
//! executed (a) against an in-process fleet service, (b) through a
//! `RemoteClient` over a Unix domain socket and (c) over loopback TCP —
//! synchronously (one request in flight, the latency view) and pipelined
//! (the whole batch in flight on one connection, the throughput view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, Mapping, SystemSpec};
use runtime::{
    AdmissionRequest, AdmissionService, Completion, FleetConfig, FleetManager, RemoteAddr,
    RemoteClient, RemoteServer, RoutingPolicy,
};
use sdf::figure2_graphs;
use std::sync::Arc;

const OPS_PER_SAMPLE: usize = 32;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

fn fleet() -> FleetManager {
    // Capacity covers a whole pipelined batch: every admission of a sample
    // can be in flight before the first release.
    FleetManager::new(
        spec(),
        FleetConfig::uniform(1, 1, OPS_PER_SAMPLE, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet")
}

/// One synchronous admit+release round-trip batch against any service.
fn round_trips(service: &dyn AdmissionService) {
    for i in 0..OPS_PER_SAMPLE {
        let decision = service
            .admit(&AdmissionRequest::new(i))
            .expect("decision arrives");
        let resident = decision.resident().expect("capacity covers the batch");
        service.release(resident).expect("release lands");
    }
}

/// The whole batch pipelined: every admission in flight before the first
/// completion is reaped, then all releases.
fn pipelined(service: &dyn AdmissionService) {
    let burst: Vec<Completion> = (0..OPS_PER_SAMPLE)
        .map(|i| service.submit(AdmissionRequest::new(i)))
        .collect();
    let residents: Vec<u64> = burst
        .iter()
        .map(|c| {
            c.wait()
                .expect("decision arrives")
                .resident()
                .expect("capacity covers the batch")
        })
        .collect();
    for resident in residents {
        service.release(resident).expect("release lands");
    }
}

fn uds_addr() -> RemoteAddr {
    let dir = std::env::temp_dir().join("probcon-remote-bench");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    RemoteAddr::Unix(dir.join(format!("bench-{}.sock", std::process::id())))
}

fn bench_remote_transports(c: &mut Criterion) {
    println!("\n===== Local vs UDS vs TCP admission transport =====");
    println!("{OPS_PER_SAMPLE} admit+release round-trips per sample:");

    let mut group = c.benchmark_group("remote");
    group.sample_size(12);

    // (a) In-process baseline: the fleet's own AdmissionService impl.
    let local = fleet();
    group.bench_function(BenchmarkId::new("sync", "local"), |b| {
        b.iter(|| round_trips(&local));
    });
    group.bench_function(BenchmarkId::new("pipelined", "local"), |b| {
        b.iter(|| pipelined(&local));
    });

    // (b) Unix domain socket.
    #[cfg(unix)]
    {
        let server = RemoteServer::bind(&uds_addr(), Arc::new(fleet())).expect("uds server");
        let client = RemoteClient::connect(server.local_addr()).expect("uds client");
        group.bench_function(BenchmarkId::new("sync", "uds"), |b| {
            b.iter(|| round_trips(&client));
        });
        group.bench_function(BenchmarkId::new("pipelined", "uds"), |b| {
            b.iter(|| pipelined(&client));
        });
        client.close();
        server.shutdown();
    }

    // (c) Loopback TCP.
    {
        let server = RemoteServer::bind(
            &"tcp:127.0.0.1:0".parse().expect("tcp addr"),
            Arc::new(fleet()),
        )
        .expect("tcp server");
        let client = RemoteClient::connect(server.local_addr()).expect("tcp client");
        group.bench_function(BenchmarkId::new("sync", "tcp"), |b| {
            b.iter(|| round_trips(&client));
        });
        group.bench_function(BenchmarkId::new("pipelined", "tcp"), |b| {
            b.iter(|| pipelined(&client));
        });
        client.close();
        server.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_remote_transports);
criterion_main!(benches);
