//! What the wire costs — and what the readiness loop buys.
//!
//! Three views of the remote transport:
//!
//! 1. **Transport** — the same admit+release batch against an in-process
//!    fleet, over a Unix domain socket and over loopback TCP, both
//!    synchronously (latency view) and pipelined (throughput view).
//! 2. **Wire mode** — JSON-lines vs length-prefixed binary frames on the
//!    same pipelined batch, so the codec's share of the round-trip is
//!    visible in isolation.
//! 3. **Fan-in** — one readiness server holding hundreds of live
//!    connections: server-side thread growth stays flat (the event loop
//!    plus a fixed worker pool) where a thread-per-connection design
//!    spends a stack per socket, and pipelined throughput through one of
//!    those connections is unchanged by the hundreds idling beside it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::{Application, Mapping, SystemSpec};
use runtime::{
    AdmissionRequest, AdmissionService, ClientConfig, Completion, Endpoint, FleetConfig,
    FleetManager, RemoteClient, RemoteServer, RoutingPolicy, WireMode,
};
use sdf::figure2_graphs;
use std::sync::Arc;

const OPS_PER_SAMPLE: usize = 32;

/// Connections held open concurrently in the fan-in group. A
/// thread-per-connection server would spend this many stacks; the
/// readiness server spends one event loop and a fixed worker pool.
const FAN_IN: usize = 512;

fn spec() -> SystemSpec {
    let (a, b) = figure2_graphs();
    SystemSpec::builder()
        .application(Application::new("A", a).expect("valid"))
        .application(Application::new("B", b).expect("valid"))
        .mapping(Mapping::by_actor_index(3))
        .build()
        .expect("valid spec")
}

fn fleet() -> FleetManager {
    // Capacity covers a whole pipelined batch: every admission of a sample
    // can be in flight before the first release.
    FleetManager::new(
        spec(),
        FleetConfig::uniform(1, 1, OPS_PER_SAMPLE, RoutingPolicy::LeastUtilised),
    )
    .expect("valid fleet")
}

/// One synchronous admit+release round-trip batch against any service.
fn round_trips(service: &dyn AdmissionService) {
    for i in 0..OPS_PER_SAMPLE {
        let decision = service
            .admit(&AdmissionRequest::new(i))
            .expect("decision arrives");
        let resident = decision.resident().expect("capacity covers the batch");
        service.release(resident).expect("release lands");
    }
}

/// The whole batch pipelined: every admission in flight before the first
/// completion is reaped, then all releases.
fn pipelined(service: &dyn AdmissionService) {
    let burst: Vec<Completion> = (0..OPS_PER_SAMPLE)
        .map(|i| service.submit(AdmissionRequest::new(i)))
        .collect();
    let residents: Vec<u64> = burst
        .iter()
        .map(|c| {
            c.wait()
                .expect("decision arrives")
                .resident()
                .expect("capacity covers the batch")
        })
        .collect();
    for resident in residents {
        service.release(resident).expect("release lands");
    }
}

/// A service answering from canned payloads at near-zero compute, so the
/// wire-mode group measures the codecs rather than admission analysis
/// (whose cost grows with the resident set and dwarfs the frames).
struct CannedService {
    decision: runtime::AdmissionDecision,
    snapshot: runtime::ServiceSnapshot,
    spec: SystemSpec,
}

impl CannedService {
    fn driven() -> CannedService {
        let fleet = fleet();
        let decision =
            AdmissionService::admit(&fleet, &AdmissionRequest::new(0)).expect("decision arrives");
        CannedService {
            snapshot: AdmissionService::snapshot(&fleet),
            spec: spec(),
            decision,
        }
    }
}

impl AdmissionService for CannedService {
    fn admit(
        &self,
        _request: &AdmissionRequest,
    ) -> Result<runtime::AdmissionDecision, runtime::ServiceError> {
        Ok(self.decision.clone())
    }

    fn release(&self, _resident: u64) -> Result<(), runtime::ServiceError> {
        Ok(())
    }

    fn snapshot(&self) -> runtime::ServiceSnapshot {
        self.snapshot.clone()
    }

    fn workload(&self) -> Option<&SystemSpec> {
        Some(&self.spec)
    }
}

fn uds_addr() -> Endpoint {
    let dir = std::env::temp_dir().join("probcon-remote-bench");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    Endpoint::Unix(dir.join(format!("bench-{}.sock", std::process::id())))
}

/// Live thread count of this process (Linux), else 0.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Resident set size of this process in KiB (Linux), else 0.
fn resident_kib() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn bench_remote_transports(c: &mut Criterion) {
    println!("\n===== Local vs UDS vs TCP admission transport =====");
    println!("{OPS_PER_SAMPLE} admit+release round-trips per sample:");

    let mut group = c.benchmark_group("remote");
    group.sample_size(12);

    // (a) In-process baseline: the fleet's own AdmissionService impl.
    let local = fleet();
    group.bench_function(BenchmarkId::new("sync", "local"), |b| {
        b.iter(|| round_trips(&local));
    });
    group.bench_function(BenchmarkId::new("pipelined", "local"), |b| {
        b.iter(|| pipelined(&local));
    });

    // (b) Unix domain socket.
    #[cfg(unix)]
    {
        let server = RemoteServer::bind(&uds_addr(), Arc::new(fleet())).expect("uds server");
        let client = RemoteClient::connect(server.local_addr()).expect("uds client");
        group.bench_function(BenchmarkId::new("sync", "uds"), |b| {
            b.iter(|| round_trips(&client));
        });
        group.bench_function(BenchmarkId::new("pipelined", "uds"), |b| {
            b.iter(|| pipelined(&client));
        });
        client.close();
        server.shutdown();
    }

    // (c) Loopback TCP.
    {
        let server = RemoteServer::bind(
            &"tcp:127.0.0.1:0".parse().expect("tcp addr"),
            Arc::new(fleet()),
        )
        .expect("tcp server");
        let client = RemoteClient::connect(server.local_addr()).expect("tcp client");
        group.bench_function(BenchmarkId::new("sync", "tcp"), |b| {
            b.iter(|| round_trips(&client));
        });
        group.bench_function(BenchmarkId::new("pipelined", "tcp"), |b| {
            b.iter(|| pipelined(&client));
        });
        client.close();
        server.shutdown();
    }

    group.finish();
}

fn bench_wire_modes(c: &mut Criterion) {
    println!("\n===== JSON-lines vs binary frames (same TCP connection) =====");
    println!("{OPS_PER_SAMPLE} admissions per sample against a canned service,");
    println!("so the codec is the only variable:");

    let mut group = c.benchmark_group("wire");
    group.sample_size(12);

    let server = RemoteServer::bind(
        &"tcp:127.0.0.1:0".parse().expect("tcp addr"),
        Arc::new(CannedService::driven()),
    )
    .expect("tcp server");

    for mode in [WireMode::Json, WireMode::Binary] {
        let client = RemoteClient::connect_config(
            server.local_addr(),
            ClientConfig {
                wire: mode,
                ..ClientConfig::default()
            },
        )
        .expect("client connects");
        assert_eq!(client.wire_mode(), mode, "server grants the asked mode");
        group.bench_function(BenchmarkId::new("sync", mode.name()), |b| {
            b.iter(|| round_trips(&client));
        });
        group.bench_function(BenchmarkId::new("pipelined", mode.name()), |b| {
            b.iter(|| pipelined(&client));
        });
        client.close();
    }

    server.shutdown();
    group.finish();
}

fn bench_connection_fan_in(c: &mut Criterion) {
    println!("\n===== Connection fan-in: {FAN_IN} live connections, one server =====");

    let mut group = c.benchmark_group("fan_in");
    group.sample_size(12);

    let config = runtime::RemoteServerConfig {
        max_connections: FAN_IN + 8,
        ..Default::default()
    };
    let server = RemoteServer::bind_with(
        &"tcp:127.0.0.1:0".parse().expect("tcp addr"),
        Arc::new(fleet()),
        None,
        config,
    )
    .expect("tcp server");

    let threads_before = thread_count();
    let rss_before = resident_kib();
    let clients: Vec<RemoteClient> = (0..FAN_IN)
        .map(|_| RemoteClient::connect(server.local_addr()).expect("client connects"))
        .collect();
    let threads_after = thread_count();
    let rss_after = resident_kib();

    // Every RemoteClient owns one reader thread in *this* process; anything
    // beyond those belongs to the server. A thread-per-connection server
    // would add FAN_IN more.
    let server_added = threads_after
        .saturating_sub(threads_before)
        .saturating_sub(FAN_IN);
    println!(
        "  {FAN_IN} handshaken connections: server added {server_added} threads \
         (thread-per-connection would add {FAN_IN}), process RSS grew {} KiB",
        rss_after.saturating_sub(rss_before),
    );
    assert_eq!(
        server.stats().active as usize,
        FAN_IN,
        "all connections stay live"
    );
    assert!(
        threads_before == 0 || server_added <= FAN_IN / 10,
        "readiness server must hold {FAN_IN} connections at >=10x fewer \
         threads than thread-per-connection (added {server_added})"
    );

    // Throughput through one connection while the rest idle beside it:
    // flat, because idle sockets cost the event loop nothing but a pollfd.
    group.bench_function(
        BenchmarkId::new("pipelined", format!("{FAN_IN}-live")),
        |b| {
            b.iter(|| pipelined(&clients[0]));
        },
    );

    for client in clients {
        client.close();
    }
    server.shutdown();
    group.finish();
}

criterion_group!(
    benches,
    bench_remote_transports,
    bench_wire_modes,
    bench_connection_fan_in
);
criterion_main!(benches);
