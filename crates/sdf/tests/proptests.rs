//! Property-based tests over the SDF substrate: generated graphs satisfy
//! their structural contract, the two period analyses agree, and rational
//! arithmetic behaves like ℚ.

use proptest::prelude::*;
use sdf::{
    analyze_period, buffer_requirements, generate_graph, is_live, is_strongly_connected,
    iteration_latency, maximum_cycle_ratio, repetition_vector, GeneratorConfig, HsdfGraph,
    Rational,
};

fn small_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..=6, 1u64..=3, 1u64..=40, 0.0f64..1.0).prop_map(|(actors, max_rep, max_tau, extra)| {
        GeneratorConfig {
            min_actors: actors,
            max_actors: actors,
            min_repetition: 1,
            max_repetition: max_rep,
            min_execution_time: 1,
            max_execution_time: max_tau,
            extra_channel_fraction: extra,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_satisfy_contract(config in small_config(), seed in 0u64..10_000) {
        let g = generate_graph(&config, seed);
        prop_assert!(is_strongly_connected(&g));
        prop_assert!(is_live(&g).expect("consistent"));
        let q = repetition_vector(&g).expect("consistent");
        // Balance equations hold on every channel.
        for (_, c) in g.channels() {
            prop_assert_eq!(
                c.production() * q.get(c.src()),
                c.consumption() * q.get(c.dst())
            );
        }
    }

    #[test]
    fn period_analyses_agree(config in small_config(), seed in 0u64..2_000) {
        let g = generate_graph(&config, seed);
        let state_space = analyze_period(&g).expect("analyzes").period;
        let mcr = maximum_cycle_ratio(&HsdfGraph::expand(&g).expect("expands"))
            .expect("solves");
        prop_assert_eq!(state_space, mcr);
    }

    #[test]
    fn period_bounds(config in small_config(), seed in 0u64..2_000) {
        let g = generate_graph(&config, seed);
        let q = repetition_vector(&g).expect("consistent");
        let analysis = analyze_period(&g).expect("analyzes");
        // Lower bound: the busiest actor (one-token self-loops serialise
        // each actor's q firings).
        let mut lower = Rational::ZERO;
        for a in g.actor_ids() {
            lower = lower.max(g.execution_time(a) * Rational::integer(q.get(a) as i128));
        }
        // Upper bound: fully serialised iteration.
        let mut upper = Rational::ZERO;
        for a in g.actor_ids() {
            upper += g.execution_time(a) * Rational::integer(q.get(a) as i128);
        }
        prop_assert!(analysis.period >= lower, "{} < {}", analysis.period, lower);
        prop_assert!(analysis.period <= upper, "{} > {}", analysis.period, upper);
    }

    #[test]
    fn latency_between_period_and_serial(config in small_config(), seed in 0u64..2_000) {
        let g = generate_graph(&config, seed);
        let q = repetition_vector(&g).expect("consistent");
        let latency = iteration_latency(&g).expect("live");
        let mut serial = Rational::ZERO;
        let mut longest = Rational::ZERO;
        for a in g.actor_ids() {
            serial += g.execution_time(a) * Rational::integer(q.get(a) as i128);
            longest = longest.max(g.execution_time(a));
        }
        prop_assert!(latency >= longest);
        prop_assert!(latency <= serial);
    }

    #[test]
    fn hsdf_node_count_is_total_firings(config in small_config(), seed in 0u64..2_000) {
        let g = generate_graph(&config, seed);
        let q = repetition_vector(&g).expect("consistent");
        let h = HsdfGraph::expand(&g).expect("expands");
        prop_assert_eq!(h.node_count() as u64, q.total_firings());
    }

    #[test]
    fn buffers_cover_initial_tokens(config in small_config(), seed in 0u64..2_000) {
        let g = generate_graph(&config, seed);
        let report = buffer_requirements(&g).expect("analyzes");
        for (cid, c) in g.channels() {
            prop_assert!(report.capacity(cid) >= c.initial_tokens());
        }
    }

    #[test]
    fn scaling_execution_times_scales_period(seed in 0u64..500, factor in 2i128..5) {
        // Period is 1-homogeneous in the execution times.
        let g = generate_graph(&GeneratorConfig::with_actors(4), seed);
        let base = analyze_period(&g).expect("analyzes").period;
        let scaled_times: Vec<Rational> = g
            .actor_ids()
            .map(|a| g.execution_time(a) * Rational::integer(factor))
            .collect();
        let scaled = analyze_period(&g.with_execution_times(&scaled_times))
            .expect("analyzes")
            .period;
        prop_assert_eq!(scaled, base * Rational::integer(factor));
    }

    #[test]
    fn rational_quantize_idempotent(n in -10_000i128..10_000, d in 1i128..10_000, g in 1i128..100_000) {
        let x = Rational::new(n, d);
        let q = x.quantize(g);
        prop_assert_eq!(q.quantize(g), q);
        prop_assert!(q.denom() <= g);
    }

    #[test]
    fn rational_cmp_consistent_with_sub(a in -100_000i128..100_000, b in 1i128..10_000,
                                        c in -100_000i128..100_000, d in 1i128..10_000) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x < y, (x - y).is_negative());
        prop_assert_eq!(x == y, (x - y).is_zero());
    }
}
