//! Maximum cycle ratio (MCR) analysis of HSDF graphs.
//!
//! For a strongly connected HSDF graph with vertex durations `τ(v)` and edge
//! delays `d(e)`, the self-timed period equals the *maximum cycle ratio*
//!
//! ```text
//! λ* = max over cycles C of  Σ_{v ∈ C} τ(v) / Σ_{e ∈ C} d(e)
//! ```
//!
//! (Dasdan \[4\] surveys the algorithm family the paper cites.) This module
//! computes λ* **exactly**: a bisection over λ with integer-scaled
//! Bellman-Ford positive-cycle detection narrows an interval around λ*, after
//! which the unique simplest rational in the interval (Stern–Brocot descent)
//! is the answer — exact because λ* is a ratio of a cycle-duration sum to a
//! cycle-token count, both bounded integers.
//!
//! This is the classical exponential-in-the-SDF-size path (expand, then solve
//! the expansion) that the paper's probabilistic method sidesteps; here it
//! serves to cross-validate [`crate::state_space`].
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, HsdfGraph, maximum_cycle_ratio, Rational};
//!
//! let (a, _) = figure2_graphs();
//! let h = HsdfGraph::expand(&a)?;
//! assert_eq!(maximum_cycle_ratio(&h)?, Rational::integer(300));
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::SdfError;
use crate::hsdf::HsdfGraph;
use crate::rational::Rational;

/// Computes the exact maximum cycle ratio of `hsdf`.
///
/// # Errors
///
/// * [`SdfError::Deadlocked`] if the graph contains a cycle with zero total
///   delay (such a graph cannot execute).
/// * [`SdfError::Empty`] if the graph has no nodes or no cycle at all.
///
/// # Examples
///
/// See the [module documentation](self).
pub fn maximum_cycle_ratio(hsdf: &HsdfGraph) -> Result<Rational, SdfError> {
    let n = hsdf.node_count();
    if n == 0 {
        return Err(SdfError::Empty);
    }

    // Scale all durations to integers: common denominator L.
    let l = hsdf
        .durations()
        .iter()
        .fold(1i128, |acc, r| lcm(acc, r.denom()));
    let tau: Vec<i128> = hsdf
        .durations()
        .iter()
        .map(|r| r.numer() * (l / r.denom()))
        .collect();

    // Zero-delay cycles make execution impossible.
    if zero_delay_cycle_exists(hsdf) {
        return Err(SdfError::Deadlocked);
    }

    let total_tau: i128 = tau.iter().map(|t| t.max(&0)).sum();
    if hsdf.edges().is_empty() {
        return Err(SdfError::Empty);
    }

    // λ* ∈ (0, total_tau]; denominator of λ* divides L and its token count
    // is ≤ total delay, so denominator(λ*) ≤ L · D.
    let d_total = (hsdf.total_delay() as i128).max(1);
    let max_denom = l.saturating_mul(d_total);

    // Bisection until the interval is narrower than 1/(2·max_denom²), at
    // which point it contains exactly one rational with denominator
    // ≤ max_denom, namely λ*.
    let mut lo = Rational::ZERO; // positive cycle exists at lo (λ* > lo)
    let mut hi = Rational::integer(total_tau) + Rational::ONE; // none at hi
    if !has_positive_cycle_at(hsdf, &tau, l, lo) {
        // Acyclic expansion: no cycle, no ratio.
        return Err(SdfError::Empty);
    }
    let gap = Rational::new(1, 2) / (Rational::integer(max_denom) * Rational::integer(max_denom));

    let mut guard = 0;
    while hi - lo > gap {
        guard += 1;
        assert!(guard < 256, "MCR bisection failed to converge");
        let mid = (lo + hi) / Rational::integer(2);
        if has_positive_cycle_at(hsdf, &tau, l, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    // λ* is the unique rational in (lo, hi] with denominator ≤ max_denom;
    // the simplest rational in the interval has the smallest denominator, so
    // it is λ*.
    Ok(simplest_in_half_open(lo, hi))
}

fn lcm(a: i128, b: i128) -> i128 {
    fn gcd(mut a: i128, mut b: i128) -> i128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a.abs()
    }
    a / gcd(a, b) * b
}

fn zero_delay_cycle_exists(hsdf: &HsdfGraph) -> bool {
    // DFS cycle detection over zero-delay edges only.
    let n = hsdf.node_count();
    let mut adj = vec![Vec::new(); n];
    for e in hsdf.edges() {
        if e.delay == 0 {
            adj[e.src].push(e.dst);
        }
    }
    // 0 = unvisited, 1 = in progress, 2 = done.
    let mut colour = vec![0u8; n];
    for start in 0..n {
        if colour[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        colour[start] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                match colour[w] {
                    0 => {
                        colour[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                colour[v] = 2;
                stack.pop();
            }
        }
    }
    false
}

/// Positive-cycle detection for edge weights `τ(src) − λ·d(e)` with
/// `λ = p/q`, scaled by `q` (the `τ` array is already scaled by `l`).
fn has_positive_cycle_at(hsdf: &HsdfGraph, tau: &[i128], l: i128, lambda: Rational) -> bool {
    // Scaled integer weight: w(e) = τ_scaled(src)·qλ − pλ·d(e)·l
    let p = lambda.numer();
    let q = lambda.denom();
    let n = hsdf.node_count();
    let mut dist = vec![0i128; n];

    // Bellman-Ford longest-path relaxation; if any distance still improves
    // after n iterations, a positive cycle exists.
    for _ in 0..n {
        let mut improved = false;
        for e in hsdf.edges() {
            let w = tau[e.src]
                .checked_mul(q)
                .expect("MCR weight overflow")
                .checked_sub(
                    p.checked_mul(e.delay as i128)
                        .and_then(|x| x.checked_mul(l))
                        .expect("MCR weight overflow"),
                )
                .expect("MCR weight overflow");
            if dist[e.src] + w > dist[e.dst] {
                dist[e.dst] = dist[e.src] + w;
                improved = true;
            }
        }
        if !improved {
            return false;
        }
    }
    true
}

/// The simplest rational `x` with `lo < x <= hi` (Stern–Brocot descent).
fn simplest_in_half_open(lo: Rational, hi: Rational) -> Rational {
    debug_assert!(lo < hi);
    // Work on the open/closed interval by continued-fraction recursion:
    // simplest x in (a, b]:
    //   if floor(a) + 1 <= b  -> floor(a) + 1   (an integer fits)
    //   else both in same unit interval: x = floor(a) + 1/(simplest in
    //   [1/(b - floor(a)), 1/(a - floor(a)) ) mirrored)
    fn go(lo: Rational, hi: Rational) -> Rational {
        let f = lo.floor();
        let candidate = Rational::integer(f + 1);
        if candidate <= hi {
            return candidate;
        }
        // lo and hi share the integer part f; recurse on reciprocals.
        let fl = Rational::integer(f);
        let a = lo - fl;
        let b = hi - fl;
        if a.is_zero() {
            // Interval (f, f+b] with 0 < b < 1: simplest offset is 1/⌈1/b⌉.
            return fl + Rational::integer(b.recip().ceil()).recip();
        }
        // simplest x in (a, b] with 0 < a < b < 1:
        // x = 1 / y where y is simplest in [1/b, 1/a).
        let inner = go_half_open_lower(b.recip(), a.recip());
        fl + inner.recip()
    }
    // simplest y in [lo, hi)
    fn go_half_open_lower(lo: Rational, hi: Rational) -> Rational {
        let f = lo.floor();
        let fr = Rational::integer(f);
        if fr == lo {
            return lo; // integer lower bound included
        }
        let candidate = Rational::integer(f + 1);
        if candidate < hi {
            return candidate;
        }
        let a = lo - fr;
        let b = hi - fr;
        let inner = go(b.recip(), a.recip());
        fr + inner.recip()
    }
    go(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};
    use crate::hsdf::HsdfGraph;
    use crate::state_space::period;

    fn mcr_of(b: SdfGraphBuilder) -> Rational {
        let g = b.build().unwrap();
        maximum_cycle_ratio(&HsdfGraph::expand(&g).unwrap()).unwrap()
    }

    #[test]
    fn simple_ring() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        assert_eq!(mcr_of(b), Rational::integer(10));
    }

    #[test]
    fn pipelined_ring_fractional() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 6);
        let y = b.actor("y", 2);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 3).unwrap();
        assert_eq!(mcr_of(b), Rational::new(8, 3));
    }

    #[test]
    fn self_loop_bound_dominates() {
        // Cycle ratio of the ring is (3+7)/2 = 5, but the self-loop on y
        // forces 7 per firing: λ* = 7.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 2).unwrap();
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        assert_eq!(mcr_of(b), Rational::integer(7));
    }

    #[test]
    fn figure2_mcr_matches_state_space() {
        let (a, b) = figure2_graphs();
        for g in [a, b] {
            let h = HsdfGraph::expand(&g).unwrap();
            assert_eq!(
                maximum_cycle_ratio(&h).unwrap(),
                period(&g).unwrap() * Rational::ONE
            );
        }
    }

    #[test]
    fn rational_durations() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor_rational("x", Rational::new(50, 3));
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        assert_eq!(mcr_of(b), Rational::new(59, 3));
    }

    #[test]
    fn zero_delay_cycle_is_deadlock() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        let h = HsdfGraph::expand(&b.build().unwrap()).unwrap();
        assert_eq!(maximum_cycle_ratio(&h).unwrap_err(), SdfError::Deadlocked);
    }

    #[test]
    fn simplest_rational_search() {
        // (1/3, 1/2] -> 1/2 ; (0.28, 0.35] -> 1/3 ; (2.1, 3.5] -> 3
        assert_eq!(
            simplest_in_half_open(Rational::new(1, 3), Rational::new(1, 2)),
            Rational::new(1, 2)
        );
        assert_eq!(
            simplest_in_half_open(Rational::new(28, 100), Rational::new(35, 100)),
            Rational::new(1, 3)
        );
        assert_eq!(
            simplest_in_half_open(Rational::new(21, 10), Rational::new(35, 10)),
            Rational::integer(3)
        );
        // Exact hit at the upper (closed) end.
        assert_eq!(
            simplest_in_half_open(Rational::new(299, 1), Rational::new(300, 1)),
            Rational::integer(300)
        );
    }

    #[test]
    fn simplest_rational_brute_force_agreement() {
        // For all small intervals with denominators <= 12, compare against a
        // brute-force scan of fractions with denominator <= 24.
        for ad in 1..=6i128 {
            for an in 0..=(3 * ad) {
                for bd in 1..=6i128 {
                    for bn in 0..=(3 * bd) {
                        let lo = Rational::new(an, ad);
                        let hi = Rational::new(bn, bd);
                        if lo >= hi {
                            continue;
                        }
                        let got = simplest_in_half_open(lo, hi);
                        assert!(lo < got && got <= hi, "{lo} < {got} <= {hi}");
                        // No rational with a smaller denominator fits.
                        for d in 1..got.denom() {
                            let n_low = (lo * Rational::integer(d)).floor() + 1;
                            let candidate = Rational::new(n_low, d);
                            assert!(
                                !(lo < candidate && candidate <= hi),
                                "simpler {candidate} fits in ({lo}, {hi}] than {got}"
                            );
                        }
                    }
                }
            }
        }
    }
}
