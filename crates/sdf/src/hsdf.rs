//! SDF → HSDF (homogeneous SDF) expansion.
//!
//! Every consistent SDF graph can be unfolded into an equivalent
//! *homogeneous* graph in which every rate is 1: actor `a` becomes `q(a)`
//! vertices (one per firing in an iteration) and every token flow between
//! firings becomes a dependency edge annotated with the number of iteration
//! boundaries it crosses (its *delay*, in tokens). The construction follows
//! Sriram & Bhattacharyya, *Embedded Multiprocessors* (2000), the reference
//! the paper cites as \[14\].
//!
//! The expansion can be exponentially larger than the SDFG — exactly the
//! scalability problem (Kumar et al. \[7\], Pino & Lee \[12\]) that motivates the
//! paper's probabilistic alternative. It is retained here because the maximum
//! cycle ratio of the expansion ([`crate::mcm`]) independently validates the
//! state-space period analysis.
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, HsdfGraph};
//!
//! let (a, _) = figure2_graphs();
//! let h = HsdfGraph::expand(&a)?;
//! // q = [1, 2, 1] ⇒ 4 firing vertices.
//! assert_eq!(h.node_count(), 4);
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{ActorId, SdfError, SdfGraph};
use crate::rational::Rational;
use crate::repetition::repetition_vector;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A vertex of the expansion: firing `firing` (0-based) of SDF actor
/// `actor` within one graph iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Firing {
    /// The SDF actor this firing belongs to.
    pub actor: ActorId,
    /// Zero-based firing index within an iteration (`0..q(actor)`).
    pub firing: u64,
}

/// A dependency edge of the expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HsdfEdge {
    /// Producing firing (node index into [`HsdfGraph::nodes`]).
    pub src: usize,
    /// Consuming firing (node index into [`HsdfGraph::nodes`]).
    pub dst: usize,
    /// Iteration distance: `dst`'s firing in iteration `k` depends on `src`'s
    /// firing in iteration `k - delay`.
    pub delay: u64,
}

/// The homogeneous expansion of an SDF graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HsdfGraph {
    nodes: Vec<Firing>,
    durations: Vec<Rational>,
    edges: Vec<HsdfEdge>,
}

impl HsdfGraph {
    /// Expands `graph` into its homogeneous equivalent.
    ///
    /// Parallel token flows between the same pair of firings are collapsed to
    /// the single strongest constraint (minimum delay).
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::Inconsistent`] if `graph` has no repetition
    /// vector.
    pub fn expand(graph: &SdfGraph) -> Result<HsdfGraph, SdfError> {
        let q = repetition_vector(graph)?;

        // Dense node numbering: offset[a] + firing.
        let mut offset = vec![0usize; graph.actor_count()];
        let mut nodes = Vec::new();
        let mut durations = Vec::new();
        for a in graph.actor_ids() {
            offset[a.0] = nodes.len();
            for f in 0..q.get(a) {
                nodes.push(Firing {
                    actor: a,
                    firing: f,
                });
                durations.push(graph.execution_time(a));
            }
        }

        // (src_node, dst_node) -> min delay
        let mut edge_map: HashMap<(usize, usize), u64> = HashMap::new();

        for (_, c) in graph.channels() {
            let qu = q.get(c.src()) as i128;
            let qv = q.get(c.dst());
            let p = c.production() as i128;
            let cons = c.consumption() as i128;
            let d = c.initial_tokens() as i128;

            // Consumer firing j (1-based) of iteration 0 consumes token
            // positions (j-1)·cons+1 ..= j·cons. Token position m was
            // produced as the (m - d)-th token overall; non-positive values
            // map to firings of earlier iterations.
            for j in 1..=(qv as i128) {
                for m in ((j - 1) * cons + 1)..=(j * cons) {
                    let t = m - d; // global produced-token index
                    let ig = div_ceil(t, p); // global producer firing (1-based, may be ≤ 0)
                    let k = (ig - 1).div_euclid(qu); // iteration offset (≤ 0 for past)
                    let i0 = ig - k * qu; // producer firing within its iteration, 1-based
                    let delay = (-k).max(0) as u64;
                    debug_assert!(k <= 0, "initial tokens only reference the past");
                    let src = offset[c.src().0] + (i0 - 1) as usize;
                    let dst = offset[c.dst().0] + (j - 1) as usize;
                    edge_map
                        .entry((src, dst))
                        .and_modify(|cur| *cur = (*cur).min(delay))
                        .or_insert(delay);
                }
            }
        }

        let mut edges: Vec<HsdfEdge> = edge_map
            .into_iter()
            .map(|((src, dst), delay)| HsdfEdge { src, dst, delay })
            .collect();
        edges.sort_by_key(|e| (e.src, e.dst));

        Ok(HsdfGraph {
            nodes,
            durations,
            edges,
        })
    }

    /// Number of firing vertices (`Σ q(a)`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The firings, indexable by edge endpoints.
    pub fn nodes(&self) -> &[Firing] {
        &self.nodes
    }

    /// Execution duration of each firing vertex.
    pub fn durations(&self) -> &[Rational] {
        &self.durations
    }

    /// The dependency edges.
    pub fn edges(&self) -> &[HsdfEdge] {
        &self.edges
    }

    /// Total delay (token) count over all edges, an upper bound on any
    /// cycle's token count (used to bound the MCR denominator).
    pub fn total_delay(&self) -> u64 {
        self.edges.iter().map(|e| e.delay).sum()
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i128::from(a.rem_euclid(b) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};

    #[test]
    fn homogeneous_graph_unchanged_shape() {
        // Already-homogeneous ring: expansion is isomorphic.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let h = HsdfGraph::expand(&b.build().unwrap()).unwrap();
        assert_eq!(h.node_count(), 2);
        assert_eq!(h.edge_count(), 2);
        let delays: Vec<u64> = h.edges().iter().map(|e| e.delay).collect();
        assert_eq!(delays.iter().sum::<u64>(), 1);
    }

    #[test]
    fn figure2_expansion() {
        let (a, _) = figure2_graphs();
        let h = HsdfGraph::expand(&a).unwrap();
        assert_eq!(h.node_count(), 4); // q = [1,2,1]
        assert!(h.total_delay() >= 1);
        // Every node must have at least one incoming and outgoing edge
        // (strongly connected source graph).
        for n in 0..h.node_count() {
            assert!(h.edges().iter().any(|e| e.src == n));
            assert!(h.edges().iter().any(|e| e.dst == n));
        }
    }

    #[test]
    fn multirate_dependencies() {
        // x -(2,1)-> y with q = [1,2]: firing y1 and y2 both depend on x1,
        // delay 0.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        b.channel(y, x, 1, 2, 2).unwrap();
        let h = HsdfGraph::expand(&b.build().unwrap()).unwrap();
        assert_eq!(h.node_count(), 3);
        let zero_delay_from_x: Vec<_> = h
            .edges()
            .iter()
            .filter(|e| e.src == 0 && e.delay == 0)
            .collect();
        assert_eq!(zero_delay_from_x.len(), 2);
    }

    #[test]
    fn initial_tokens_become_delays() {
        // Single actor with a 1-token self-loop: edge with delay 1 on itself.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 5);
        b.self_loop(x, 1);
        let h = HsdfGraph::expand(&b.build().unwrap()).unwrap();
        assert_eq!(h.node_count(), 1);
        assert_eq!(h.edge_count(), 1);
        assert_eq!(h.edges()[0].delay, 1);
    }

    #[test]
    fn many_initial_tokens_cross_iterations() {
        // Self-loop with 3 tokens on a q=1 actor: firing i depends on firing
        // i-3, i.e. delay 3.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 5);
        b.self_loop(x, 3);
        let h = HsdfGraph::expand(&b.build().unwrap()).unwrap();
        assert_eq!(h.edges()[0].delay, 3);
    }

    #[test]
    fn duplicate_flows_keep_min_delay() {
        // Channel (1,1) with 0 tokens and parallel channel with 5 tokens
        // between same actors: the 0-delay constraint dominates pairwise.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(x, y, 1, 1, 5).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let h = HsdfGraph::expand(&b.build().unwrap()).unwrap();
        let xy: Vec<_> = h.edges().iter().filter(|e| e.src == 0).collect();
        assert_eq!(xy.len(), 1);
        assert_eq!(xy[0].delay, 0);
    }
}
