//! Graphviz DOT export for SDF graphs.
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, to_dot};
//! let (a, _) = figure2_graphs();
//! let dot = to_dot(&a);
//! assert!(dot.starts_with("digraph"));
//! assert!(dot.contains("a0"));
//! ```

use crate::graph::SdfGraph;
use std::fmt::Write;

/// Renders `graph` as a Graphviz `digraph`.
///
/// Actors become boxes labelled `name (τ)`, channels become arrows labelled
/// `prod:cons` with the initial token count shown as `• n` when non-zero.
/// Self-loops are included (they model auto-concurrency limits).
pub fn to_dot(graph: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(graph.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box];");
    for (id, actor) in graph.actors() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{} ({})\"];",
            id.index(),
            escape(actor.name()),
            actor.execution_time()
        );
    }
    for (_, c) in graph.channels() {
        let tokens = if c.initial_tokens() > 0 {
            format!(" • {}", c.initial_tokens())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}:{}{}\"];",
            c.src().index(),
            c.dst().index(),
            c.production(),
            c.consumption(),
            tokens
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure2_graphs;

    #[test]
    fn dot_structure() {
        let (a, _) = figure2_graphs();
        let dot = to_dot(&a);
        assert!(dot.starts_with("digraph \"A\""));
        assert!(dot.trim_end().ends_with('}'));
        // 3 actors + 6 channels.
        assert_eq!(dot.matches("->").count(), 6);
        assert!(dot.contains("a1 (50)"));
        assert!(dot.contains("• 1"));
    }

    #[test]
    fn names_are_escaped() {
        use crate::graph::SdfGraphBuilder;
        let mut b = SdfGraphBuilder::new("we\"ird");
        let x = b.actor("x\"y", 1);
        b.self_loop(x, 1);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("we\\\"ird"));
        assert!(dot.contains("x\\\"y"));
    }
}
