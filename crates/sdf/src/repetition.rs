//! Repetition vector computation and consistency checking.
//!
//! The *repetition vector* `q` of an SDF graph assigns to every actor the
//! number of firings per graph iteration, such that every channel is in
//! balance: `production(c) · q[src(c)] = consumption(c) · q[dst(c)]`. A graph
//! admitting a positive integer solution is *consistent*; only consistent
//! graphs can execute with bounded memory.
//!
//! The solver propagates rational firing ratios over the undirected channel
//! structure and scales to the smallest positive integer vector, the standard
//! algorithm from Lee & Messerschmitt (1987).
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, repetition_vector};
//!
//! let (a, _) = figure2_graphs();
//! let q = repetition_vector(&a)?;
//! assert_eq!(q.as_slice(), &[1, 2, 1]);
//! assert_eq!(q.total_firings(), 4);
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{ActorId, ChannelId, SdfError, SdfGraph};
use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The repetition vector of a consistent SDF graph.
///
/// Indexable by [`ActorId`]; entries are the minimal positive firing counts
/// per iteration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RepetitionVector {
    entries: Vec<u64>,
}

impl RepetitionVector {
    /// Firing count `q(a)` for actor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn get(&self, a: ActorId) -> u64 {
        self.entries[a.0]
    }

    /// All entries in actor-id order.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }

    /// Total firings in one graph iteration (`Σ_a q(a)`).
    ///
    /// This is the number of HSDF vertices the graph expands to.
    pub fn total_firings(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Number of actors covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is empty (never true for vectors produced by
    /// [`repetition_vector`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(ActorId, q)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ActorId, u64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &q)| (ActorId(i), q))
    }
}

impl fmt::Display for RepetitionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, q) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "]")
    }
}

impl std::ops::Index<ActorId> for RepetitionVector {
    type Output = u64;
    fn index(&self, a: ActorId) -> &u64 {
        &self.entries[a.0]
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    fn gcd(mut a: i128, mut b: i128) -> i128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    a / gcd(a, b) * b
}

/// Computes the minimal repetition vector of `graph`.
///
/// # Errors
///
/// Returns [`SdfError::Inconsistent`] if the balance equations admit no
/// positive solution. Disconnected graphs are solved per connected component
/// (each component is scaled independently to its minimal solution).
///
/// # Examples
///
/// ```
/// use sdf::{repetition_vector, SdfGraphBuilder};
///
/// let mut b = SdfGraphBuilder::new("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 3, 2, 0)?;
/// b.channel(y, x, 2, 3, 6)?;
/// let q = repetition_vector(&b.build()?)?;
/// assert_eq!(q.as_slice(), &[2, 3]);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn repetition_vector(graph: &SdfGraph) -> Result<RepetitionVector, SdfError> {
    let n = graph.actor_count();
    let mut ratio: Vec<Option<Rational>> = vec![None; n];
    let mut stack: Vec<ActorId> = Vec::new();

    for start in graph.actor_ids() {
        if ratio[start.0].is_some() {
            continue;
        }
        ratio[start.0] = Some(Rational::ONE);
        stack.push(start);
        let mut component = vec![start];

        while let Some(a) = stack.pop() {
            let ra = ratio[a.0].expect("visited actors have a ratio");
            // Outgoing: prod·r[a] = cons·r[dst] => r[dst] = r[a]·prod/cons
            let mut visit =
                |other: ActorId, expected: Rational, chan: ChannelId| -> Result<(), SdfError> {
                    match ratio[other.0] {
                        None => {
                            ratio[other.0] = Some(expected);
                            stack.push(other);
                            component.push(other);
                            Ok(())
                        }
                        Some(r) if r == expected => Ok(()),
                        Some(_) => Err(SdfError::Inconsistent { channel: chan }),
                    }
                };
            for &cid in graph.outgoing(a) {
                let c = graph.channel(cid);
                let expected = ra * Rational::new(c.production() as i128, c.consumption() as i128);
                if c.is_self_loop() {
                    if c.production() != c.consumption() {
                        return Err(SdfError::Inconsistent { channel: cid });
                    }
                    continue;
                }
                visit(c.dst(), expected, cid)?;
            }
            for &cid in graph.incoming(a) {
                let c = graph.channel(cid);
                if c.is_self_loop() {
                    continue;
                }
                let expected = ra * Rational::new(c.consumption() as i128, c.production() as i128);
                visit(c.src(), expected, cid)?;
            }
        }

        // Scale this component to the smallest positive integer vector.
        let denom_lcm = component
            .iter()
            .map(|a| ratio[a.0].expect("component actors have ratios").denom())
            .fold(1i128, lcm);
        let mut numer_gcd = 0i128;
        for a in &component {
            let r = ratio[a.0].expect("component actors have ratios");
            let scaled = r.numer() * (denom_lcm / r.denom());
            numer_gcd = {
                fn gcd(mut a: i128, mut b: i128) -> i128 {
                    a = a.abs();
                    b = b.abs();
                    while b != 0 {
                        let t = a % b;
                        a = b;
                        b = t;
                    }
                    a
                }
                gcd(numer_gcd, scaled)
            };
        }
        for a in &component {
            let r = ratio[a.0].expect("component actors have ratios");
            let scaled = r.numer() * (denom_lcm / r.denom()) / numer_gcd;
            ratio[a.0] = Some(Rational::integer(scaled));
        }
    }

    let mut entries = Vec::with_capacity(n);
    for r in ratio {
        let r = r.expect("all actors visited");
        debug_assert!(r.is_integer() && r.is_positive());
        entries.push(r.numer() as u64);
    }
    Ok(RepetitionVector { entries })
}

/// Checks graph consistency without materialising the vector.
///
/// # Examples
///
/// ```
/// use sdf::{figure2_graphs, is_consistent};
/// let (a, _) = figure2_graphs();
/// assert!(is_consistent(&a));
/// ```
pub fn is_consistent(graph: &SdfGraph) -> bool {
    repetition_vector(graph).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};

    #[test]
    fn figure2_vectors() {
        let (a, b) = figure2_graphs();
        assert_eq!(repetition_vector(&a).unwrap().as_slice(), &[1, 2, 1]);
        assert_eq!(repetition_vector(&b).unwrap().as_slice(), &[2, 1, 1]);
    }

    #[test]
    fn single_actor_self_loop() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 5);
        b.self_loop(x, 1);
        let q = repetition_vector(&b.build().unwrap()).unwrap();
        assert_eq!(q.as_slice(), &[1]);
    }

    #[test]
    fn inconsistent_graph_detected() {
        // x -(1,1)-> y and x -(2,1)-> y demand q[y] = q[x] and q[y] = 2q[x].
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(x, y, 2, 1, 0).unwrap();
        let err = repetition_vector(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, SdfError::Inconsistent { .. }));
    }

    #[test]
    fn inconsistent_self_loop_detected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 2, 1, 1).unwrap();
        let err = repetition_vector(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, SdfError::Inconsistent { .. }));
    }

    #[test]
    fn minimality() {
        // Rates with a common factor must still give the minimal vector.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 4, 6, 0).unwrap();
        b.channel(y, x, 6, 4, 12).unwrap();
        let q = repetition_vector(&b.build().unwrap()).unwrap();
        assert_eq!(q.as_slice(), &[3, 2]);
    }

    #[test]
    fn disconnected_components_scaled_independently() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        let q = repetition_vector(&b.build().unwrap()).unwrap();
        assert_eq!(q.as_slice(), &[1, 1]);
    }

    #[test]
    fn balance_holds_for_every_channel() {
        let (a, _) = figure2_graphs();
        let q = repetition_vector(&a).unwrap();
        for (_, c) in a.channels() {
            assert_eq!(
                c.production() * q.get(c.src()),
                c.consumption() * q.get(c.dst())
            );
        }
    }

    #[test]
    fn vector_accessors() {
        let (a, _) = figure2_graphs();
        let q = repetition_vector(&a).unwrap();
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.total_firings(), 4);
        assert_eq!(q[ActorId(1)], 2);
        assert_eq!(q.to_string(), "[1, 2, 1]");
        let pairs: Vec<_> = q.iter().collect();
        assert_eq!(pairs[1], (ActorId(1), 2));
    }
}
