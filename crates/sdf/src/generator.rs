//! Seeded random SDF graph generation (the library's stand-in for the SDF³
//! tool the paper uses).
//!
//! The paper's evaluation generates "ten random SDFGs with eight to ten
//! actors each …, mimicking DSP or a multimedia application, … a strongly
//! connected component", with random execution times and rates. This module
//! reproduces those structural guarantees deterministically from a seed:
//!
//! * **consistent** — the repetition vector is chosen first and every
//!   channel's rates are derived from it, so the balance equations hold by
//!   construction;
//! * **strongly connected** — the channels always include a random Hamilton
//!   cycle over all actors;
//! * **live** — the cycle's closing edge (and every extra "backward" edge)
//!   carries enough initial tokens for a full iteration;
//! * **bounded auto-concurrency** — each actor gets a one-token self-loop,
//!   matching the paper's model of an actor occupying a processor while it
//!   fires.
//!
//! # Examples
//!
//! ```
//! use sdf::{GeneratorConfig, generate_graph, validate_analyzable};
//!
//! let g = generate_graph(&GeneratorConfig::default(), 42);
//! validate_analyzable(&g)?;
//! assert!(g.actor_count() >= 8 && g.actor_count() <= 10);
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{SdfGraph, SdfGraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the random graph generator.
///
/// The defaults reproduce the paper's workload: 8–10 actors, rates such that
/// repetition entries stay small (DSP-like), execution times in the tens to
/// hundreds of time units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Minimum number of actors (inclusive).
    pub min_actors: usize,
    /// Maximum number of actors (inclusive).
    pub max_actors: usize,
    /// Minimum repetition-vector entry (inclusive).
    pub min_repetition: u64,
    /// Maximum repetition-vector entry (inclusive).
    pub max_repetition: u64,
    /// Minimum actor execution time (inclusive).
    pub min_execution_time: u64,
    /// Maximum actor execution time (inclusive).
    pub max_execution_time: u64,
    /// Number of extra channels added on top of the Hamilton cycle, as a
    /// fraction of the actor count (e.g. `0.5` adds `n/2` extra channels).
    pub extra_channel_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_actors: 8,
            max_actors: 10,
            min_repetition: 1,
            max_repetition: 4,
            min_execution_time: 10,
            max_execution_time: 100,
            extra_channel_fraction: 0.5,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor fixing the actor count to exactly `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::{generate_graph, GeneratorConfig};
    /// let g = generate_graph(&GeneratorConfig::with_actors(5), 1);
    /// assert_eq!(g.actor_count(), 5);
    /// ```
    pub fn with_actors(n: usize) -> Self {
        GeneratorConfig {
            min_actors: n,
            max_actors: n,
            ..Self::default()
        }
    }
}

/// Generates one random graph from `config` and `seed`.
///
/// The same `(config, seed)` pair always yields the same graph.
///
/// # Panics
///
/// Panics if `config` is degenerate (`min > max` for any range, or zero
/// actors).
///
/// # Examples
///
/// ```
/// use sdf::{generate_graph, GeneratorConfig};
/// let a = generate_graph(&GeneratorConfig::default(), 7);
/// let b = generate_graph(&GeneratorConfig::default(), 7);
/// assert_eq!(a, b); // deterministic
/// ```
pub fn generate_graph(config: &GeneratorConfig, seed: u64) -> SdfGraph {
    assert!(config.min_actors >= 1, "need at least one actor");
    assert!(config.min_actors <= config.max_actors, "actor range empty");
    assert!(
        config.min_repetition >= 1 && config.min_repetition <= config.max_repetition,
        "repetition range empty"
    );
    assert!(
        config.min_execution_time >= 1 && config.min_execution_time <= config.max_execution_time,
        "execution-time range empty"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(config.min_actors..=config.max_actors);

    // Repetition vector first: consistency by construction.
    let q: Vec<u64> = (0..n)
        .map(|_| rng.gen_range(config.min_repetition..=config.max_repetition))
        .collect();

    let mut b = SdfGraphBuilder::new(format!("rand-{seed}"));
    let ids: Vec<_> = (0..n)
        .map(|i| {
            b.actor(
                format!("a{i}"),
                rng.gen_range(config.min_execution_time..=config.max_execution_time),
            )
        })
        .collect();

    // Random Hamilton cycle: a permutation visited in order.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);

    // Rates derived from q: channel u→v uses (prod, cons) =
    // (q[v]/g, q[u]/g) with g = gcd(q[u], q[v]), so prod·q[u] = cons·q[v].
    let rates = |qu: u64, qv: u64| -> (u64, u64) {
        let g = gcd(qu, qv);
        (qv / g, qu / g)
    };

    for w in 0..n {
        let u = order[w];
        let v = order[(w + 1) % n];
        let (prod, cons) = rates(q[u], q[v]);
        // The closing edge (w == n-1) carries one full iteration of tokens
        // (cons·q[v]) so the cycle is live; forward edges start empty.
        let tokens = if w == n - 1 { cons * q[v] } else { 0 };
        b.channel(ids[u], ids[v], prod, cons, tokens)
            .expect("generator rates are positive");
    }

    // Extra channels between random distinct pairs; every extra channel is
    // pre-loaded with a full iteration of tokens so it can never deadlock
    // the graph (it only adds pipelining constraints).
    let extra = ((n as f64) * config.extra_channel_fraction).round() as usize;
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if u == v {
            v = (v + 1) % n;
        }
        let (prod, cons) = rates(q[u], q[v]);
        b.channel(ids[u], ids[v], prod, cons, cons * q[v])
            .expect("generator rates are positive");
    }

    // One-token self-loops: an actor occupies its processor per firing.
    for &a in &ids {
        b.self_loop(a, 1);
    }

    b.build().expect("generated graph is structurally valid")
}

/// Generates `count` graphs with consecutive seeds `base_seed..`.
///
/// # Examples
///
/// ```
/// use sdf::{generate_graphs, GeneratorConfig};
/// let graphs = generate_graphs(&GeneratorConfig::default(), 100, 10);
/// assert_eq!(graphs.len(), 10);
/// ```
pub fn generate_graphs(config: &GeneratorConfig, base_seed: u64, count: usize) -> Vec<SdfGraph> {
    (0..count as u64)
        .map(|i| generate_graph(config, base_seed + i))
        .collect()
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::validate_analyzable;
    use crate::repetition::repetition_vector;
    use crate::state_space::period;
    use crate::topology::is_strongly_connected;

    #[test]
    fn deterministic() {
        let c = GeneratorConfig::default();
        assert_eq!(generate_graph(&c, 5), generate_graph(&c, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let c = GeneratorConfig::default();
        assert_ne!(generate_graph(&c, 1), generate_graph(&c, 2));
    }

    #[test]
    fn structural_guarantees_hold_for_many_seeds() {
        let c = GeneratorConfig::default();
        for seed in 0..50 {
            let g = generate_graph(&c, seed);
            assert!(g.actor_count() >= 8 && g.actor_count() <= 10, "seed {seed}");
            assert!(is_strongly_connected(&g), "seed {seed}");
            validate_analyzable(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn periods_are_computable() {
        let c = GeneratorConfig::default();
        for seed in 0..10 {
            let g = generate_graph(&c, seed);
            let p = period(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(p.is_positive());
        }
    }

    #[test]
    fn repetition_entries_within_bounds() {
        // The generated q must divide the requested entries (the minimal
        // vector can be smaller after gcd scaling, but never larger).
        let c = GeneratorConfig::default();
        for seed in 0..20 {
            let g = generate_graph(&c, seed);
            let q = repetition_vector(&g).unwrap();
            for (_, entry) in q.iter() {
                assert!(entry <= c.max_repetition, "seed {seed}");
            }
        }
    }

    #[test]
    fn fixed_actor_count() {
        let g = generate_graph(&GeneratorConfig::with_actors(9), 3);
        assert_eq!(g.actor_count(), 9);
    }

    #[test]
    fn batch_generation() {
        let graphs = generate_graphs(&GeneratorConfig::default(), 7, 10);
        assert_eq!(graphs.len(), 10);
        assert_eq!(graphs[0], generate_graph(&GeneratorConfig::default(), 7));
        assert_eq!(graphs[9], generate_graph(&GeneratorConfig::default(), 16));
    }

    #[test]
    #[should_panic(expected = "actor range empty")]
    fn degenerate_config_panics() {
        let c = GeneratorConfig {
            min_actors: 5,
            max_actors: 3,
            ..GeneratorConfig::default()
        };
        generate_graph(&c, 0);
    }
}
