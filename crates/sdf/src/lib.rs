//! # sdf — Synchronous Data Flow substrate
//!
//! This crate implements the SDF machinery that the probabilistic contention
//! model (crate `contention`) and the multiprocessor simulator (crate
//! `mpsoc-sim`) are built on, reproducing the toolchain of *"A Probabilistic
//! Approach to Model Resource Contention for Performance Estimation of
//! Multi-featured Media Devices"* (Kumar et al., DAC 2007):
//!
//! * [`SdfGraph`] / [`SdfGraphBuilder`] — the graph model (actors, channels,
//!   rates, initial tokens);
//! * [`repetition_vector`] — consistency and per-iteration firing counts
//!   (Definition 2 of the paper);
//! * [`analyze_period`] — exact self-timed period `Per(A)` via state-space
//!   exploration (Definition 3; Ghamarian et al. \[5\]);
//! * [`HsdfGraph`] + [`maximum_cycle_ratio`] — the classical MCM route
//!   (Dasdan \[4\]) used to cross-validate the state space;
//! * [`generate_graph`] — the SDF³-style random workload generator used by
//!   the paper's evaluation;
//! * [`Rational`] — exact arithmetic shared by all analyses.
//!
//! # Quick start
//!
//! ```
//! use sdf::{analyze_period, figure2_graphs, Rational};
//!
//! // The paper's Figure 2: two three-actor applications with period 300.
//! let (app_a, app_b) = figure2_graphs();
//! assert_eq!(analyze_period(&app_a)?.period, Rational::integer(300));
//! assert_eq!(analyze_period(&app_b)?.period, Rational::integer(300));
//! # Ok::<(), sdf::SdfError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmarks;
pub mod buffer;
pub mod dot;
pub mod generator;
pub mod graph;
pub mod hsdf;
pub mod latency;
pub mod liveness;
pub mod mcm;
pub mod rational;
pub mod repetition;
pub mod state_space;
pub mod topology;

pub use buffer::{
    bounded_buffer_model, buffer_requirements, buffer_requirements_with, minimize_buffers,
    BufferReport,
};
pub use dot::to_dot;
pub use generator::{generate_graph, generate_graphs, GeneratorConfig};
pub use graph::{
    figure2_graphs, Actor, ActorId, Channel, ChannelId, SdfError, SdfGraph, SdfGraphBuilder,
};
pub use hsdf::{Firing, HsdfEdge, HsdfGraph};
pub use latency::iteration_latency;
pub use liveness::{is_live, validate_analyzable};
pub use mcm::maximum_cycle_ratio;
pub use rational::Rational;
pub use repetition::{is_consistent, repetition_vector, RepetitionVector};
pub use state_space::{
    analyze_period, analyze_period_with, period, AnalysisOptions, PeriodAnalysis,
};
pub use topology::{is_strongly_connected, reachable_from, strongly_connected_components};
