//! Deadlock-freedom (liveness) checking.
//!
//! A consistent SDF graph is *live* iff one complete iteration (every actor
//! `a` firing `q(a)` times) can execute from the initial token distribution.
//! Because completing an iteration restores the token distribution, one
//! successful abstract iteration proves unbounded execution.
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, is_live};
//! let (a, _) = figure2_graphs();
//! assert!(is_live(&a)?);
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{ActorId, SdfError, SdfGraph};
use crate::repetition::repetition_vector;

/// Checks whether the graph can complete one full iteration (and therefore
/// execute forever).
///
/// Uses untimed data-driven abstract execution: repeatedly fire any actor
/// that is enabled and still owes firings this iteration. The order of
/// firings does not affect the outcome (SDF firings are persistent), so a
/// single greedy pass is sufficient.
///
/// # Errors
///
/// Returns [`SdfError::Inconsistent`] if no repetition vector exists.
///
/// # Examples
///
/// ```
/// use sdf::{is_live, SdfGraphBuilder};
///
/// // A two-actor cycle with no tokens deadlocks.
/// let mut b = SdfGraphBuilder::new("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 1, 1, 0)?;
/// b.channel(y, x, 1, 1, 0)?;
/// assert!(!is_live(&b.build()?)?);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn is_live(graph: &SdfGraph) -> Result<bool, SdfError> {
    let q = repetition_vector(graph)?;
    let mut tokens: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut remaining: Vec<u64> = q.as_slice().to_vec();

    let enabled = |tokens: &[u64], a: ActorId| -> bool {
        graph
            .incoming(a)
            .iter()
            .all(|&cid| tokens[cid.index()] >= graph.channel(cid).consumption())
    };

    let mut progress = true;
    while progress {
        progress = false;
        for a in graph.actor_ids() {
            while remaining[a.0] > 0 && enabled(&tokens, a) {
                for &cid in graph.incoming(a) {
                    tokens[cid.index()] -= graph.channel(cid).consumption();
                }
                for &cid in graph.outgoing(a) {
                    tokens[cid.index()] += graph.channel(cid).production();
                }
                remaining[a.0] -= 1;
                progress = true;
            }
        }
    }
    Ok(remaining.iter().all(|&r| r == 0))
}

/// Validates that a graph is consistent, strongly connected and live — the
/// preconditions of the paper's analysis pipeline.
///
/// # Errors
///
/// Returns the first violated precondition as an [`SdfError`].
///
/// # Examples
///
/// ```
/// use sdf::{figure2_graphs, validate_analyzable};
/// let (a, _) = figure2_graphs();
/// validate_analyzable(&a)?;
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn validate_analyzable(graph: &SdfGraph) -> Result<(), SdfError> {
    repetition_vector(graph)?;
    if !crate::topology::is_strongly_connected(graph) {
        return Err(SdfError::NotStronglyConnected);
    }
    if !is_live(graph)? {
        return Err(SdfError::Deadlocked);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};

    #[test]
    fn figure2_live() {
        let (a, b) = figure2_graphs();
        assert!(is_live(&a).unwrap());
        assert!(is_live(&b).unwrap());
        validate_analyzable(&a).unwrap();
    }

    #[test]
    fn tokenless_cycle_dead() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert!(!is_live(&g).unwrap());
        assert_eq!(validate_analyzable(&g).unwrap_err(), SdfError::Deadlocked);
    }

    #[test]
    fn insufficient_tokens_multirate() {
        // y needs 3 tokens but the cycle only ever holds 2.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 3, 3, 2).unwrap();
        b.channel(y, x, 3, 3, 0).unwrap();
        assert!(!is_live(&b.build().unwrap()).unwrap());
    }

    #[test]
    fn sufficient_tokens_multirate() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 3, 3, 0).unwrap();
        b.channel(y, x, 3, 3, 3).unwrap();
        assert!(is_live(&b.build().unwrap()).unwrap());
    }

    #[test]
    fn self_loop_without_token_dead() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        b.self_loop(x, 0);
        assert!(!is_live(&b.build().unwrap()).unwrap());
    }

    #[test]
    fn validate_rejects_non_strongly_connected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        assert_eq!(
            validate_analyzable(&b.build().unwrap()).unwrap_err(),
            SdfError::NotStronglyConnected
        );
    }
}
