//! The Synchronous Data Flow graph data structure.
//!
//! An SDF graph consists of *actors* (vertices) connected by *channels*
//! (edges). Each channel carries a production rate (tokens written per firing
//! of its source actor), a consumption rate (tokens read per firing of its
//! destination actor) and a number of initial tokens. An actor may fire when
//! every incoming channel holds at least the consumption rate of tokens; the
//! firing takes the actor's execution time and then atomically produces
//! tokens on every outgoing channel.
//!
//! Graphs are immutable after construction through [`SdfGraphBuilder`], which
//! validates the structure eagerly.
//!
//! # Examples
//!
//! Building application `A` of the paper's Figure 2:
//!
//! ```
//! use sdf::{Rational, SdfGraphBuilder};
//!
//! let mut b = SdfGraphBuilder::new("A");
//! let a0 = b.actor("a0", 100);
//! let a1 = b.actor("a1", 50);
//! let a2 = b.actor("a2", 100);
//! b.channel(a0, a1, 2, 1, 0)?;
//! b.channel(a1, a2, 1, 2, 0)?;
//! b.channel(a2, a0, 1, 1, 1)?;
//! let graph = b.build()?;
//!
//! assert_eq!(graph.actor_count(), 3);
//! assert_eq!(graph.execution_time(a0), Rational::integer(100));
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an actor within one [`SdfGraph`].
///
/// Indices are dense: a graph with `n` actors uses ids `0..n`.
///
/// # Examples
///
/// ```
/// use sdf::ActorId;
/// let id = ActorId(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ActorId(pub usize);

impl ActorId {
    /// The dense index of this actor.
    pub const fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

impl From<usize> for ActorId {
    fn from(i: usize) -> Self {
        ActorId(i)
    }
}

/// Identifier of a channel within one [`SdfGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub usize);

impl ChannelId {
    /// The dense index of this channel.
    pub const fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel#{}", self.0)
    }
}

impl From<usize> for ChannelId {
    fn from(i: usize) -> Self {
        ChannelId(i)
    }
}

/// An actor (task) of an SDF graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Actor {
    name: String,
    execution_time: Rational,
}

impl Actor {
    /// The actor's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The actor's execution time `τ(a)`.
    pub fn execution_time(&self) -> Rational {
        self.execution_time
    }
}

/// A channel (edge) of an SDF graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    src: ActorId,
    dst: ActorId,
    production: u64,
    consumption: u64,
    initial_tokens: u64,
}

impl Channel {
    /// Source actor (producer).
    pub const fn src(&self) -> ActorId {
        self.src
    }

    /// Destination actor (consumer).
    pub const fn dst(&self) -> ActorId {
        self.dst
    }

    /// Tokens produced per firing of [`Channel::src`].
    pub const fn production(&self) -> u64 {
        self.production
    }

    /// Tokens consumed per firing of [`Channel::dst`].
    pub const fn consumption(&self) -> u64 {
        self.consumption
    }

    /// Tokens present on the channel before any firing.
    pub const fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Whether this channel is a self-loop (`src == dst`).
    pub const fn is_self_loop(&self) -> bool {
        self.src.0 == self.dst.0
    }
}

/// Errors produced while building or analysing SDF graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdfError {
    /// A channel referenced an actor id outside the graph.
    UnknownActor(ActorId),
    /// A channel rate was zero; SDF rates must be strictly positive.
    ZeroRate {
        /// The offending channel's source.
        src: ActorId,
        /// The offending channel's destination.
        dst: ActorId,
    },
    /// The graph has no actors.
    Empty,
    /// The balance equations have no non-trivial solution.
    Inconsistent {
        /// Channel on which the contradiction was detected.
        channel: ChannelId,
    },
    /// The graph deadlocks: no actor can fire before one iteration completes.
    Deadlocked,
    /// The graph is not strongly connected where the analysis requires it.
    NotStronglyConnected,
    /// An actor's execution time was not positive.
    NonPositiveExecutionTime(ActorId),
    /// An analysis exceeded its configured step budget.
    BudgetExhausted {
        /// Steps executed before giving up.
        steps: u64,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::UnknownActor(a) => write!(f, "unknown actor {a}"),
            SdfError::ZeroRate { src, dst } => {
                write!(f, "channel {src}->{dst} has a zero rate")
            }
            SdfError::Empty => write!(f, "graph has no actors"),
            SdfError::Inconsistent { channel } => {
                write!(f, "graph is inconsistent (balance equation of {channel})")
            }
            SdfError::Deadlocked => write!(f, "graph deadlocks"),
            SdfError::NotStronglyConnected => write!(f, "graph is not strongly connected"),
            SdfError::NonPositiveExecutionTime(a) => {
                write!(f, "execution time of {a} is not positive")
            }
            SdfError::BudgetExhausted { steps } => {
                write!(f, "analysis budget exhausted after {steps} steps")
            }
        }
    }
}

impl std::error::Error for SdfError {}

/// An immutable, validated Synchronous Data Flow graph.
///
/// Construct through [`SdfGraphBuilder`]. See the [module-level
/// documentation](self) for an example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdfGraph {
    name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
    /// outgoing[a] = channel ids with src == a
    outgoing: Vec<Vec<ChannelId>>,
    /// incoming[a] = channel ids with dst == a
    incoming: Vec<Vec<ChannelId>>,
}

impl SdfGraph {
    /// The graph's name (e.g. the application it models).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Iterator over `(ActorId, &Actor)` pairs in id order.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &Actor)> {
        self.actors.iter().enumerate().map(|(i, a)| (ActorId(i), a))
    }

    /// Iterator over actor ids `0..n`.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> {
        (0..self.actors.len()).map(ActorId)
    }

    /// Iterator over `(ChannelId, &Channel)` pairs in id order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// The actor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0]
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// Execution time `τ(a)` of actor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn execution_time(&self, id: ActorId) -> Rational {
        self.actors[id.0].execution_time
    }

    /// Channels leaving actor `a`.
    pub fn outgoing(&self, a: ActorId) -> &[ChannelId] {
        &self.outgoing[a.0]
    }

    /// Channels entering actor `a`.
    pub fn incoming(&self, a: ActorId) -> &[ChannelId] {
        &self.incoming[a.0]
    }

    /// Finds an actor by name.
    ///
    /// # Examples
    ///
    /// ```
    /// # use sdf::SdfGraphBuilder;
    /// let mut b = SdfGraphBuilder::new("g");
    /// let x = b.actor("x", 1);
    /// b.self_loop(x, 1);
    /// let g = b.build()?;
    /// assert_eq!(g.actor_by_name("x"), Some(x));
    /// assert_eq!(g.actor_by_name("y"), None);
    /// # Ok::<(), sdf::SdfError>(())
    /// ```
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors.iter().position(|a| a.name == name).map(ActorId)
    }

    /// Returns a copy of the graph with every actor's execution time replaced
    /// by `times[actor.index()]`.
    ///
    /// This is the hook the contention estimator uses: waiting time is added
    /// to each actor's execution time, and the period of the *inflated* graph
    /// is recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `times.len() != self.actor_count()` or any time is not
    /// positive.
    ///
    /// # Examples
    ///
    /// ```
    /// # use sdf::{Rational, SdfGraphBuilder};
    /// # let mut b = SdfGraphBuilder::new("g");
    /// # let x = b.actor("x", 10);
    /// # b.self_loop(x, 1);
    /// # let g = b.build()?;
    /// let inflated = g.with_execution_times(&[Rational::new(67, 1)]);
    /// assert_eq!(inflated.execution_time(x), Rational::integer(67));
    /// # Ok::<(), sdf::SdfError>(())
    /// ```
    pub fn with_execution_times(&self, times: &[Rational]) -> SdfGraph {
        assert_eq!(
            times.len(),
            self.actors.len(),
            "one execution time per actor required"
        );
        let mut g = self.clone();
        for (actor, t) in g.actors.iter_mut().zip(times) {
            assert!(t.is_positive(), "execution times must be positive");
            actor.execution_time = *t;
        }
        g
    }

    /// Sum of all execution times (a crude lower bound on the serialised
    /// iteration length, useful for sanity checks).
    pub fn total_execution_time(&self) -> Rational {
        self.actors.iter().map(|a| a.execution_time).sum()
    }
}

/// Builder for [`SdfGraph`]. See the [module-level documentation](self) for
/// an example.
#[derive(Debug, Clone, Default)]
pub struct SdfGraphBuilder {
    name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
}

impl SdfGraphBuilder {
    /// Starts building a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SdfGraphBuilder {
            name: name.into(),
            actors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Adds an actor with an integral execution time and returns its id.
    pub fn actor(&mut self, name: impl Into<String>, execution_time: u64) -> ActorId {
        self.actor_rational(name, Rational::integer(execution_time as i128))
    }

    /// Adds an actor with a rational execution time and returns its id.
    pub fn actor_rational(&mut self, name: impl Into<String>, execution_time: Rational) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Actor {
            name: name.into(),
            execution_time,
        });
        id
    }

    /// Adds a channel `src → dst` with the given production/consumption rates
    /// and initial tokens.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::UnknownActor`] if either endpoint has not been
    /// added, or [`SdfError::ZeroRate`] if a rate is zero.
    pub fn channel(
        &mut self,
        src: ActorId,
        dst: ActorId,
        production: u64,
        consumption: u64,
        initial_tokens: u64,
    ) -> Result<ChannelId, SdfError> {
        for id in [src, dst] {
            if id.0 >= self.actors.len() {
                return Err(SdfError::UnknownActor(id));
            }
        }
        if production == 0 || consumption == 0 {
            return Err(SdfError::ZeroRate { src, dst });
        }
        let id = ChannelId(self.channels.len());
        self.channels.push(Channel {
            src,
            dst,
            production,
            consumption,
            initial_tokens,
        });
        Ok(id)
    }

    /// Adds a single-rate self-loop on `actor` carrying `tokens` initial
    /// tokens. A self-loop with one token disables auto-concurrency, i.e.
    /// limits the actor to one simultaneous firing.
    ///
    /// # Panics
    ///
    /// Panics if `actor` has not been added yet.
    pub fn self_loop(&mut self, actor: ActorId, tokens: u64) -> ChannelId {
        self.channel(actor, actor, 1, 1, tokens)
            .expect("self_loop requires a previously added actor")
    }

    /// Number of actors added so far.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::Empty`] for an actor-less graph and
    /// [`SdfError::NonPositiveExecutionTime`] if any execution time is `<= 0`.
    pub fn build(self) -> Result<SdfGraph, SdfError> {
        if self.actors.is_empty() {
            return Err(SdfError::Empty);
        }
        for (i, a) in self.actors.iter().enumerate() {
            if !a.execution_time.is_positive() {
                return Err(SdfError::NonPositiveExecutionTime(ActorId(i)));
            }
        }
        let mut outgoing = vec![Vec::new(); self.actors.len()];
        let mut incoming = vec![Vec::new(); self.actors.len()];
        for (i, c) in self.channels.iter().enumerate() {
            outgoing[c.src.0].push(ChannelId(i));
            incoming[c.dst.0].push(ChannelId(i));
        }
        Ok(SdfGraph {
            name: self.name,
            actors: self.actors,
            channels: self.channels,
            outgoing,
            incoming,
        })
    }
}

/// Builds both applications of the paper's Figure 2; used pervasively in
/// tests and examples.
///
/// Application `A` is the cycle `a0 → a1 → a2 → a0` with `τ = [100, 50, 100]`
/// and repetition vector `q = [1, 2, 1]`; application `B` is the cycle
/// `b0 → b1 → b2 → b0` with `τ = [50, 100, 100]` and `q = [2, 1, 1]`. Both
/// have period 300 in isolation. Every actor carries a one-token self-loop
/// (no auto-concurrency), matching the paper's execution model.
///
/// # Examples
///
/// ```
/// let (a, b) = sdf::figure2_graphs();
/// assert_eq!(a.actor_count(), 3);
/// assert_eq!(b.actor_count(), 3);
/// ```
pub fn figure2_graphs() -> (SdfGraph, SdfGraph) {
    // Application A: q = [1, 2, 1], Per(A) = 300.
    // a0 --(2,1)--> a1 --(1,2)--> a2 --(1,1), 1 token--> a0
    let mut b = SdfGraphBuilder::new("A");
    let a0 = b.actor("a0", 100);
    let a1 = b.actor("a1", 50);
    let a2 = b.actor("a2", 100);
    b.channel(a0, a1, 2, 1, 0).expect("valid channel");
    b.channel(a1, a2, 1, 2, 0).expect("valid channel");
    b.channel(a2, a0, 1, 1, 1).expect("valid channel");
    for a in [a0, a1, a2] {
        b.self_loop(a, 1);
    }
    let graph_a = b.build().expect("figure 2 graph A is valid");

    // Application B: q = [2, 1, 1], Per(B) = 300.
    // b0 --(1,2)--> b1 --(1,1)--> b2 --(2,1), 2 tokens--> b0
    let mut b = SdfGraphBuilder::new("B");
    let b0 = b.actor("b0", 50);
    let b1 = b.actor("b1", 100);
    let b2 = b.actor("b2", 100);
    b.channel(b0, b1, 1, 2, 0).expect("valid channel");
    b.channel(b1, b2, 1, 1, 0).expect("valid channel");
    b.channel(b2, b0, 2, 1, 2).expect("valid channel");
    for a in [b0, b1, b2] {
        b.self_loop(a, 1);
    }
    let graph_b = b.build().expect("figure 2 graph B is valid");

    (graph_a, graph_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_graph() -> SdfGraph {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 10);
        let y = b.actor("y", 20);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let g = simple_graph();
        assert_eq!(g.actor_count(), 2);
        assert_eq!(g.channel_count(), 2);
        assert_eq!(g.actor(ActorId(0)).name(), "x");
        assert_eq!(g.execution_time(ActorId(1)), Rational::integer(20));
        assert_eq!(g.outgoing(ActorId(0)).len(), 1);
        assert_eq!(g.incoming(ActorId(0)).len(), 1);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            SdfGraphBuilder::new("e").build().unwrap_err(),
            SdfError::Empty
        );
    }

    #[test]
    fn zero_rate_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let err = b.channel(x, x, 0, 1, 0).unwrap_err();
        assert!(matches!(err, SdfError::ZeroRate { .. }));
    }

    #[test]
    fn unknown_actor_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let err = b.channel(x, ActorId(5), 1, 1, 0).unwrap_err();
        assert_eq!(err, SdfError::UnknownActor(ActorId(5)));
    }

    #[test]
    fn zero_execution_time_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        b.actor("x", 0);
        assert_eq!(
            b.build().unwrap_err(),
            SdfError::NonPositiveExecutionTime(ActorId(0))
        );
    }

    #[test]
    fn with_execution_times_replaces_all() {
        let g = simple_graph();
        let g2 = g.with_execution_times(&[Rational::new(67, 1), Rational::new(50, 3)]);
        assert_eq!(g2.execution_time(ActorId(0)), Rational::integer(67));
        assert_eq!(g2.execution_time(ActorId(1)), Rational::new(50, 3));
        // Original untouched.
        assert_eq!(g.execution_time(ActorId(0)), Rational::integer(10));
    }

    #[test]
    #[should_panic(expected = "one execution time per actor")]
    fn with_execution_times_wrong_len_panics() {
        simple_graph().with_execution_times(&[Rational::ONE]);
    }

    #[test]
    fn figure2_shapes() {
        let (a, b) = figure2_graphs();
        assert_eq!(a.name(), "A");
        assert_eq!(b.name(), "B");
        assert_eq!(a.channel_count(), 6); // 3 cycle edges + 3 self-loops
        assert_eq!(a.actor_by_name("a1"), Some(ActorId(1)));
        assert_eq!(b.execution_time(ActorId(0)), Rational::integer(50));
    }

    #[test]
    fn display_impls() {
        assert_eq!(ActorId(2).to_string(), "actor#2");
        assert_eq!(ChannelId(7).to_string(), "channel#7");
        let e = SdfError::Deadlocked.to_string();
        assert!(e.contains("deadlock"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SdfError>();
    }
}
