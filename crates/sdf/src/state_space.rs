//! Self-timed execution and exact period (throughput) analysis.
//!
//! For a consistent, strongly connected, live SDF graph with constant actor
//! execution times, *self-timed* execution (every actor fires as soon as its
//! input tokens are available) enters a periodic regime after a finite
//! transient (Ghamarian et al., ACSD 2006). This module executes the
//! operational semantics with exact [`Rational`] time, detects the first
//! recurrent state, and derives the exact average period per graph
//! iteration — the quantity the paper calls `Per(A)` (Definition 3).
//!
//! The execution semantics match the paper's platform model:
//! * tokens are consumed atomically when a firing starts and produced
//!   atomically when it completes;
//! * auto-concurrency is *not* restricted here — restrict it explicitly with
//!   a one-token self-loop per actor (as [`crate::figure2_graphs`] and the
//!   generator do) to model an actor occupying a processor.
//!
//! # Examples
//!
//! ```
//! use sdf::{analyze_period, figure2_graphs, Rational};
//!
//! let (a, _) = figure2_graphs();
//! let analysis = analyze_period(&a)?;
//! assert_eq!(analysis.period, Rational::integer(300));
//! assert_eq!(analysis.throughput(), Rational::new(1, 300));
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{ActorId, SdfError, SdfGraph};
use crate::rational::Rational;
use crate::repetition::{repetition_vector, RepetitionVector};
use crate::topology::is_strongly_connected;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Options controlling the state-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisOptions {
    /// Maximum number of discrete execution steps (time advances) before the
    /// exploration gives up with [`SdfError::BudgetExhausted`].
    pub max_steps: u64,
    /// If `true` (default), require the graph to be strongly connected —
    /// non-strongly-connected graphs can have an unbounded state space.
    pub require_strongly_connected: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            max_steps: 1_000_000,
            require_strongly_connected: true,
        }
    }
}

/// Result of a period analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodAnalysis {
    /// Exact average time per graph iteration in the periodic regime.
    pub period: Rational,
    /// Time at which the recurrent state was first visited.
    pub transient_end: Rational,
    /// Length (in time) of one period of the recurrent cycle. This spans
    /// `iterations_per_cycle` graph iterations.
    pub cycle_length: Rational,
    /// Graph iterations completed in one recurrent cycle.
    pub iterations_per_cycle: u64,
    /// Discrete steps executed during exploration.
    pub steps: u64,
    /// The repetition vector used for iteration counting.
    pub repetition_vector: RepetitionVector,
    /// Maximum token count observed on each channel during the explored
    /// execution (transient + one full recurrent cycle) — the buffer
    /// capacity each channel needs under maximal-throughput self-timed
    /// scheduling (cf. Stuijk et al., DAC 2006 \[16\]).
    pub max_channel_occupancy: Vec<u64>,
}

impl PeriodAnalysis {
    /// Throughput = 1 / period (iterations per time unit).
    pub fn throughput(&self) -> Rational {
        self.period.recip()
    }
}

/// Mutable execution state of one graph, shared by the analyzer and usable
/// for custom explorations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExecState {
    /// Token count per channel.
    tokens: Vec<u64>,
    /// Sorted remaining times of the active firings of each actor.
    active: Vec<Vec<Rational>>,
}

impl ExecState {
    fn initial(graph: &SdfGraph) -> Self {
        ExecState {
            tokens: graph.channels().map(|(_, c)| c.initial_tokens()).collect(),
            active: vec![Vec::new(); graph.actor_count()],
        }
    }

    fn actor_enabled(&self, graph: &SdfGraph, a: ActorId) -> bool {
        graph
            .incoming(a)
            .iter()
            .all(|&cid| self.tokens[cid.index()] >= graph.channel(cid).consumption())
    }

    /// Starts every enabled firing (repeatedly, until fixpoint).
    fn start_enabled(&mut self, graph: &SdfGraph) {
        loop {
            let mut any = false;
            for a in graph.actor_ids() {
                while self.actor_enabled(graph, a) {
                    for &cid in graph.incoming(a) {
                        self.tokens[cid.index()] -= graph.channel(cid).consumption();
                    }
                    let rem = graph.execution_time(a);
                    let list = &mut self.active[a.0];
                    let pos = list.partition_point(|r| *r <= rem);
                    list.insert(pos, rem);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    /// Smallest remaining time among active firings, if any.
    fn next_completion(&self) -> Option<Rational> {
        self.active.iter().filter_map(|l| l.first().copied()).min()
    }

    /// Advances time by `dt`, completing firings that reach zero; returns
    /// per-actor completion counts.
    fn advance(&mut self, graph: &SdfGraph, dt: Rational, completions: &mut [u64]) {
        for (i, list) in self.active.iter_mut().enumerate() {
            let mut done = 0;
            for r in list.iter_mut() {
                *r -= dt;
                if r.is_zero() {
                    done += 1;
                }
            }
            if done > 0 {
                list.drain(0..done);
                completions[i] += done as u64;
                for _ in 0..done {
                    for &cid in graph.outgoing(ActorId(i)) {
                        self.tokens[cid.index()] += graph.channel(cid).production();
                    }
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.active.iter().all(|l| l.is_empty())
    }
}

/// Computes the exact self-timed period of `graph` with default options.
///
/// # Errors
///
/// * [`SdfError::Inconsistent`] — no repetition vector exists.
/// * [`SdfError::NotStronglyConnected`] — unbounded executions are rejected.
/// * [`SdfError::Deadlocked`] — execution stops before completing an
///   iteration.
/// * [`SdfError::BudgetExhausted`] — the default step budget was exceeded.
///
/// # Examples
///
/// ```
/// use sdf::{analyze_period, figure2_graphs, Rational};
/// let (_, b) = figure2_graphs();
/// assert_eq!(analyze_period(&b)?.period, Rational::integer(300));
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn analyze_period(graph: &SdfGraph) -> Result<PeriodAnalysis, SdfError> {
    analyze_period_with(graph, AnalysisOptions::default())
}

/// Computes the exact self-timed period with explicit [`AnalysisOptions`].
///
/// # Errors
///
/// See [`analyze_period`].
pub fn analyze_period_with(
    graph: &SdfGraph,
    options: AnalysisOptions,
) -> Result<PeriodAnalysis, SdfError> {
    let q = repetition_vector(graph)?;
    if options.require_strongly_connected && !is_strongly_connected(graph) {
        return Err(SdfError::NotStronglyConnected);
    }

    // Reference actor for iteration counting: actor 0.
    let q_ref = q.get(ActorId(0));

    let mut state = ExecState::initial(graph);
    let mut completions = vec![0u64; graph.actor_count()];
    let mut now = Rational::ZERO;
    let mut steps = 0u64;
    let mut max_occupancy: Vec<u64> = state.tokens.clone();

    // Recurrence detection: state -> (time, completions of reference actor).
    let mut seen: HashMap<ExecState, (Rational, u64)> = HashMap::new();

    state.start_enabled(graph);

    loop {
        if steps >= options.max_steps {
            return Err(SdfError::BudgetExhausted { steps });
        }
        steps += 1;

        match seen.entry(state.clone()) {
            Entry::Occupied(prev) => {
                let (t0, c0) = *prev.get();
                let cycle_length = now - t0;
                let dc = completions[0] - c0;
                if dc == 0 || cycle_length.is_zero() {
                    // A recurrent state with no progress means deadlock
                    // (should be caught below, but guard anyway).
                    return Err(SdfError::Deadlocked);
                }
                // dc completions of actor0 = dc / q_ref iterations.
                let iterations = Rational::new(dc as i128, q_ref as i128);
                let period = cycle_length / iterations;
                return Ok(PeriodAnalysis {
                    period,
                    transient_end: t0,
                    cycle_length,
                    iterations_per_cycle: (iterations.numer() / iterations.denom()).max(0) as u64,
                    steps,
                    repetition_vector: q,
                    max_channel_occupancy: max_occupancy,
                });
            }
            Entry::Vacant(slot) => {
                slot.insert((now, completions[0]));
            }
        }

        let Some(dt) = state.next_completion() else {
            return Err(SdfError::Deadlocked);
        };
        now += dt;
        state.advance(graph, dt, &mut completions);
        for (m, &t) in max_occupancy.iter_mut().zip(&state.tokens) {
            *m = (*m).max(t);
        }
        state.start_enabled(graph);

        if state.is_idle() && state.next_completion().is_none() {
            // No active firing and nothing became enabled: deadlock.
            if !graph.actor_ids().any(|a| state.actor_enabled(graph, a)) {
                return Err(SdfError::Deadlocked);
            }
        }
    }
}

/// Convenience wrapper returning just the period.
///
/// # Errors
///
/// See [`analyze_period`].
///
/// # Examples
///
/// ```
/// use sdf::{figure2_graphs, period, Rational};
/// let (a, _) = figure2_graphs();
/// assert_eq!(period(&a)?, Rational::integer(300));
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn period(graph: &SdfGraph) -> Result<Rational, SdfError> {
    Ok(analyze_period(graph)?.period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};

    #[test]
    fn figure2_periods_are_300() {
        let (a, b) = figure2_graphs();
        assert_eq!(period(&a).unwrap(), Rational::integer(300));
        assert_eq!(period(&b).unwrap(), Rational::integer(300));
    }

    #[test]
    fn figure3_response_time_period() {
        // Paper: with response times [117, 67, 108] / [67, 117, 108] the
        // estimated period of both graphs is 359.
        let (a, b) = figure2_graphs();
        // twait per actor from the paper: a0 += 25/3, a1 += 50/3, a2 += 50/3.
        // Per = τ(a0)' + 2τ(a1)' + τ(a2)' = (100+25/3) + 2(50+50/3) + (100+50/3).
        let p = period(&a.with_execution_times(&[
            Rational::integer(100) + Rational::new(25, 3),
            Rational::integer(50) + Rational::new(50, 3),
            Rational::integer(100) + Rational::new(50, 3),
        ]))
        .unwrap();
        assert_eq!(p, Rational::new(1075, 3)); // ≈ 358.33, paper rounds to 359
        let p_b = period(&b.with_execution_times(&[
            Rational::integer(50) + Rational::new(50, 3),
            Rational::integer(100) + Rational::new(25, 3),
            Rational::integer(100) + Rational::new(50, 3),
        ]))
        .unwrap();
        assert_eq!(p_b, Rational::new(1075, 3));
    }

    #[test]
    fn two_actor_pipeline_overlap() {
        // x -(1,1)-> y, y -(1,1) 2 tokens-> x: two tokens allow pipelining;
        // period limited by the slower actor.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 2).unwrap();
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        assert_eq!(period(&b.build().unwrap()).unwrap(), Rational::integer(7));
    }

    #[test]
    fn single_token_cycle_serialises() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        assert_eq!(period(&b.build().unwrap()).unwrap(), Rational::integer(10));
    }

    #[test]
    fn deadlock_detected() {
        // Cycle with no initial tokens can never start.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        assert_eq!(
            analyze_period(&b.build().unwrap()).unwrap_err(),
            SdfError::Deadlocked
        );
    }

    #[test]
    fn not_strongly_connected_rejected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        assert_eq!(
            analyze_period(&b.build().unwrap()).unwrap_err(),
            SdfError::NotStronglyConnected
        );
    }

    #[test]
    fn budget_exhausted_reported() {
        let (a, _) = figure2_graphs();
        let err = analyze_period_with(
            &a,
            AnalysisOptions {
                max_steps: 2,
                require_strongly_connected: true,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SdfError::BudgetExhausted { .. }));
    }

    #[test]
    fn rational_execution_times_supported() {
        // Same pipeline as above but with τ(y) = 50/3: period = τ(x)+τ(y).
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor_rational("x", Rational::integer(3));
        let y = b.actor_rational("y", Rational::new(50, 3));
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        assert_eq!(period(&b.build().unwrap()).unwrap(), Rational::new(59, 3));
    }

    #[test]
    fn multirate_period_counts_all_firings() {
        // x fires twice per iteration (q = [2,1]): serial cycle with one
        // token: period = 2τ(x) + τ(y).
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 5);
        let y = b.actor("y", 9);
        b.channel(x, y, 1, 2, 0).unwrap();
        b.channel(y, x, 2, 1, 2).unwrap();
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        assert_eq!(period(&b.build().unwrap()).unwrap(), Rational::integer(19));
    }

    #[test]
    fn auto_concurrency_speeds_up_without_self_loop() {
        // With 3 tokens in the cycle and no self-loops, x can run three
        // concurrent firings: throughput is bounded by tokens/τ-cycle.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 6);
        let y = b.actor("y", 2);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 3).unwrap();
        // cycle time = 8, 3 tokens => period = 8/3.
        assert_eq!(period(&b.build().unwrap()).unwrap(), Rational::new(8, 3));
    }

    #[test]
    fn analysis_metadata_consistent() {
        let (a, _) = figure2_graphs();
        let r = analyze_period(&a).unwrap();
        assert!(r.steps > 0);
        assert!(r.cycle_length.is_positive());
        assert_eq!(
            r.period * Rational::integer(r.iterations_per_cycle as i128),
            r.cycle_length
        );
        assert_eq!(r.throughput(), r.period.recip());
    }
}
