//! Buffer-requirement analysis.
//!
//! Under maximal-throughput self-timed scheduling, every channel needs
//! enough buffer capacity for the largest token accumulation the execution
//! ever produces. The state-space exploration already visits the transient
//! and one full recurrent cycle, so the observed per-channel maxima *are*
//! the required capacities (cf. Stuijk, Geilen, Basten — DAC 2006, the
//! paper's reference \[16\] for "buffer requirements").
//!
//! # Examples
//!
//! ```
//! use sdf::{buffer_requirements, figure2_graphs};
//!
//! let (a, _) = figure2_graphs();
//! let report = buffer_requirements(&a)?;
//! assert_eq!(report.capacities().len(), a.channel_count());
//! assert!(report.total_tokens() >= 1);
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{ChannelId, SdfError, SdfGraph};
use crate::state_space::{analyze_period_with, AnalysisOptions};
use serde::{Deserialize, Serialize};

/// Per-channel buffer capacities for maximal-throughput self-timed
/// execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferReport {
    capacities: Vec<u64>,
}

impl BufferReport {
    /// Required capacity (in tokens) per channel, indexed by channel id.
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }

    /// Required capacity of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn capacity(&self, channel: ChannelId) -> u64 {
        self.capacities[channel.index()]
    }

    /// Total token storage over all channels (a proxy for memory cost).
    pub fn total_tokens(&self) -> u64 {
        self.capacities.iter().sum()
    }
}

/// Computes the per-channel buffer requirement of self-timed execution.
///
/// # Errors
///
/// Same failure modes as [`crate::analyze_period`] (inconsistent, not
/// strongly connected, deadlocked, or budget exhausted).
///
/// # Examples
///
/// A fast producer throttled by a slow consumer accumulates exactly the
/// cycle's token budget:
///
/// ```
/// use sdf::{buffer_requirements, ChannelId, SdfGraphBuilder};
///
/// let mut b = SdfGraphBuilder::new("g");
/// let fast = b.actor("fast", 1);
/// let slow = b.actor("slow", 10);
/// let fwd = b.channel(fast, slow, 1, 1, 0)?;
/// b.channel(slow, fast, 1, 1, 3)?; // 3 credits
/// let report = buffer_requirements(&b.build()?)?;
/// // All 3 credits can pile up on the forward channel.
/// assert_eq!(report.capacity(fwd), 3);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn buffer_requirements(graph: &SdfGraph) -> Result<BufferReport, SdfError> {
    buffer_requirements_with(graph, AnalysisOptions::default())
}

/// [`buffer_requirements`] with explicit exploration options.
///
/// # Errors
///
/// See [`buffer_requirements`].
pub fn buffer_requirements_with(
    graph: &SdfGraph,
    options: AnalysisOptions,
) -> Result<BufferReport, SdfError> {
    let analysis = analyze_period_with(graph, options)?;
    Ok(BufferReport {
        capacities: analysis.max_channel_occupancy,
    })
}

/// Builds the bounded-buffer model of `graph`: every channel `c` with
/// capacity `capacities[c]` gains a reverse *space* channel carrying
/// `capacity − initial_tokens` tokens (the classical modelling of
/// back-pressure; cf. Stuijk et al. \[16\] and Wiggers et al. \[20\]).
///
/// Self-loops are left unbounded (they model auto-concurrency, not storage).
///
/// # Panics
///
/// Panics if `capacities.len() != graph.channel_count()` or any capacity is
/// below its channel's initial tokens.
///
/// # Examples
///
/// ```
/// use sdf::{bounded_buffer_model, figure2_graphs};
/// let (a, _) = figure2_graphs();
/// let caps: Vec<u64> = a.channels().map(|(_, c)| c.initial_tokens() + 2).collect();
/// let bounded = bounded_buffer_model(&a, &caps);
/// assert!(bounded.channel_count() > a.channel_count());
/// ```
pub fn bounded_buffer_model(graph: &SdfGraph, capacities: &[u64]) -> SdfGraph {
    assert_eq!(
        capacities.len(),
        graph.channel_count(),
        "one capacity per channel required"
    );
    let mut b = crate::graph::SdfGraphBuilder::new(format!("{}-bounded", graph.name()));
    for (_, actor) in graph.actors() {
        b.actor_rational(actor.name(), actor.execution_time());
    }
    for ((_, c), &cap) in graph.channels().zip(capacities) {
        assert!(
            cap >= c.initial_tokens(),
            "capacity below initial tokens on a channel"
        );
        b.channel(
            c.src(),
            c.dst(),
            c.production(),
            c.consumption(),
            c.initial_tokens(),
        )
        .expect("copied channel is valid");
        if !c.is_self_loop() {
            // Space tokens: consuming `production` space per source firing,
            // releasing `consumption` space per destination firing.
            b.channel(
                c.dst(),
                c.src(),
                c.consumption(),
                c.production(),
                cap - c.initial_tokens(),
            )
            .expect("space channel is valid");
        }
    }
    b.build().expect("bounded model of a valid graph is valid")
}

/// Minimises per-channel buffer capacities subject to a period constraint —
/// the throughput/buffer trade-off of Stuijk et al. (DAC 2006), the paper's
/// reference \[16\], solved with a greedy descent: starting from the
/// self-timed maxima (known feasible), repeatedly shrink the channel whose
/// reduction keeps the bounded-buffer period within `max_period`.
///
/// Returns the capacities and the achieved period.
///
/// # Errors
///
/// * [`SdfError::Deadlocked`] (etc.) if even the unconstrained self-timed
///   execution fails to analyze;
/// * [`SdfError::BudgetExhausted`] if a bounded model exceeds the step
///   budget.
///
/// # Examples
///
/// ```
/// use sdf::{figure2_graphs, minimize_buffers, period};
///
/// let (a, _) = figure2_graphs();
/// let max_period = period(&a)?; // demand full throughput
/// let (report, achieved) = minimize_buffers(&a, max_period)?;
/// assert!(achieved <= max_period);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn minimize_buffers(
    graph: &SdfGraph,
    max_period: crate::rational::Rational,
) -> Result<(BufferReport, crate::rational::Rational), SdfError> {
    let options = AnalysisOptions::default();
    let start = buffer_requirements_with(graph, options)?;
    let mut capacities = start.capacities;

    let period_of = |caps: &[u64]| -> Result<crate::rational::Rational, SdfError> {
        let bounded = bounded_buffer_model(graph, caps);
        Ok(analyze_period_with(&bounded, options)?.period)
    };

    // Greedy descent: channels in arbitrary (id) order, shrink each as far
    // as the constraint allows; repeat until no channel shrinks.
    let floors: Vec<u64> = graph
        .channels()
        .map(|(_, c)| {
            if c.is_self_loop() {
                c.initial_tokens()
            } else {
                // A channel narrower than one production or consumption
                // burst (or its initial tokens) deadlocks immediately.
                c.production().max(c.consumption()).max(c.initial_tokens())
            }
        })
        .collect();

    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..capacities.len() {
            while capacities[i] > floors[i] {
                capacities[i] -= 1;
                let ok = matches!(period_of(&capacities), Ok(p) if p <= max_period);
                if ok {
                    improved = true;
                } else {
                    capacities[i] += 1;
                    break;
                }
            }
        }
    }

    let achieved = period_of(&capacities)?;
    Ok((BufferReport { capacities }, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};

    #[test]
    fn initial_tokens_are_a_lower_bound() {
        let (a, _) = figure2_graphs();
        let report = buffer_requirements(&a).unwrap();
        for (cid, c) in a.channels() {
            assert!(
                report.capacity(cid) >= c.initial_tokens(),
                "{cid}: capacity below initial tokens"
            );
        }
    }

    #[test]
    fn serial_cycle_capacity_one() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        let fwd = b.channel(x, y, 1, 1, 0).unwrap();
        let back = b.channel(y, x, 1, 1, 1).unwrap();
        let report = buffer_requirements(&b.build().unwrap()).unwrap();
        // One token circulates; each channel holds at most 1.
        assert_eq!(report.capacity(fwd), 1);
        assert_eq!(report.capacity(back), 1);
        assert_eq!(report.total_tokens(), 2);
    }

    #[test]
    fn credits_accumulate_on_forward_channel() {
        let mut b = SdfGraphBuilder::new("g");
        let fast = b.actor("fast", 1);
        let slow = b.actor("slow", 10);
        let fwd = b.channel(fast, slow, 1, 1, 0).unwrap();
        b.channel(slow, fast, 1, 1, 5).unwrap();
        let report = buffer_requirements(&b.build().unwrap()).unwrap();
        assert_eq!(report.capacity(fwd), 5);
    }

    #[test]
    fn multirate_burst() {
        // x produces 4 per firing, y consumes 1 per firing but is slow:
        // the burst of 4 must fit.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 9);
        let fwd = b.channel(x, y, 4, 1, 0).unwrap();
        b.channel(y, x, 1, 4, 4).unwrap();
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        let report = buffer_requirements(&b.build().unwrap()).unwrap();
        assert!(report.capacity(fwd) >= 4);
    }

    #[test]
    fn bounded_model_restores_unbounded_behaviour_at_max_occupancy() {
        use crate::state_space::period;
        let (a, _) = figure2_graphs();
        let report = buffer_requirements(&a).unwrap();
        let bounded = bounded_buffer_model(&a, report.capacities());
        assert_eq!(period(&bounded).unwrap(), period(&a).unwrap());
    }

    #[test]
    fn tight_buffers_slow_the_graph() {
        use crate::state_space::period;
        // Pipelined producer/consumer: 5 credits allow full speed; capacity
        // 1 on the forward channel serialises.
        let mut b = SdfGraphBuilder::new("g");
        let fast = b.actor("fast", 2);
        let slow = b.actor("slow", 10);
        b.channel(fast, slow, 1, 1, 0).unwrap();
        b.channel(slow, fast, 1, 1, 5).unwrap();
        let g = b.build().unwrap();
        let free = period(&g).unwrap();
        let tight = bounded_buffer_model(&g, &[1, 5]);
        let constrained = period(&tight).unwrap();
        assert!(constrained >= free, "{constrained} vs {free}");
    }

    #[test]
    fn minimize_buffers_meets_the_constraint() {
        use crate::state_space::period;
        let (a, _) = figure2_graphs();
        let target = period(&a).unwrap();
        let (report, achieved) = minimize_buffers(&a, target).unwrap();
        assert!(achieved <= target);
        // Minimised capacities never exceed the self-timed maxima.
        let maxima = buffer_requirements(&a).unwrap();
        for (cid, _) in a.channels() {
            assert!(report.capacity(cid) <= maxima.capacity(cid));
        }
    }

    #[test]
    fn relaxed_constraint_buys_smaller_buffers() {
        use crate::rational::Rational;
        use crate::state_space::period;
        // Pipelined two-actor graph: full throughput needs more storage
        // than a 2x-relaxed period target.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 10);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 4).unwrap();
        let g = b.build().unwrap();
        let full = period(&g).unwrap();
        let (tight_caps, _) = minimize_buffers(&g, full).unwrap();
        let (loose_caps, achieved) = minimize_buffers(&g, full * Rational::integer(2)).unwrap();
        assert!(loose_caps.total_tokens() <= tight_caps.total_tokens());
        assert!(achieved <= full * Rational::integer(2));
    }

    #[test]
    #[should_panic(expected = "one capacity per channel")]
    fn bounded_model_validates_lengths() {
        let (a, _) = figure2_graphs();
        bounded_buffer_model(&a, &[1]);
    }

    #[test]
    fn generated_graphs_have_finite_buffers() {
        use crate::generator::{generate_graph, GeneratorConfig};
        for seed in 0..10 {
            let g = generate_graph(&GeneratorConfig::default(), seed);
            let report = buffer_requirements(&g).unwrap();
            assert_eq!(report.capacities().len(), g.channel_count());
            // Strongly connected graphs bound every channel.
            for (cid, _) in g.channels() {
                assert!(report.capacity(cid) < 10_000, "seed {seed} {cid}");
            }
        }
    }
}
