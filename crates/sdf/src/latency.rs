//! Single-iteration latency analysis.
//!
//! The paper notes that SDFG analysis yields "throughput and other
//! performance properties, e.g. latency, buffer requirements" (Section 1,
//! citing \[16\] and \[20\]). This module computes the *single-iteration
//! latency*: the makespan of exactly one graph iteration executed
//! self-timed from the initial token distribution, with no pipelining into
//! the next iteration. For a streaming application this is the
//! input-to-output delay of one frame; the period ([`crate::analyze_period`])
//! is the steady-state inter-frame distance (latency ≥ period in general).
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, iteration_latency, Rational};
//!
//! let (a, _) = figure2_graphs();
//! // a0 (100) → a1 twice serialized (2·50) → a2 (100): critical path 300.
//! assert_eq!(iteration_latency(&a)?, Rational::integer(300));
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{ActorId, SdfError, SdfGraph};
use crate::rational::Rational;
use crate::repetition::repetition_vector;

/// Computes the makespan of one self-timed iteration (every actor `a`
/// fires exactly `q(a)` times, firing as early as data allows).
///
/// # Errors
///
/// * [`SdfError::Inconsistent`] — no repetition vector exists;
/// * [`SdfError::Deadlocked`] — the iteration cannot complete from the
///   initial tokens.
///
/// # Examples
///
/// Latency can exceed the period when the graph pipelines:
///
/// ```
/// use sdf::{iteration_latency, period, Rational, SdfGraphBuilder};
///
/// let mut b = SdfGraphBuilder::new("pipe");
/// let x = b.actor("x", 4);
/// let y = b.actor("y", 6);
/// b.channel(x, y, 1, 1, 0)?;
/// b.channel(y, x, 1, 1, 2)?; // two tokens: the cycle pipelines
/// let g = b.build()?;
/// assert_eq!(period(&g)?, Rational::integer(5));             // (4+6)/2 tokens
/// assert_eq!(iteration_latency(&g)?, Rational::integer(10)); // 4 + 6
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn iteration_latency(graph: &SdfGraph) -> Result<Rational, SdfError> {
    let q = repetition_vector(graph)?;

    let mut tokens: Vec<u64> = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut remaining: Vec<u64> = q.as_slice().to_vec();
    // Active firings as sorted (completion time, actor) pairs.
    let mut active: Vec<(Rational, ActorId)> = Vec::new();
    let mut now = Rational::ZERO;
    let mut makespan = Rational::ZERO;

    let enabled = |tokens: &[u64], remaining: &[u64], a: ActorId| -> bool {
        remaining[a.index()] > 0
            && graph
                .incoming(a)
                .iter()
                .all(|&cid| tokens[cid.index()] >= graph.channel(cid).consumption())
    };

    loop {
        // Start every enabled firing (consume at start).
        let mut started = true;
        while started {
            started = false;
            for a in graph.actor_ids() {
                while enabled(&tokens, &remaining, a) {
                    for &cid in graph.incoming(a) {
                        tokens[cid.index()] -= graph.channel(cid).consumption();
                    }
                    remaining[a.index()] -= 1;
                    let done = now + graph.execution_time(a);
                    let pos = active.partition_point(|(t, _)| *t <= done);
                    active.insert(pos, (done, a));
                    started = true;
                }
            }
        }

        let Some(&(t_next, _)) = active.first() else {
            // Nothing in flight: either the iteration is done or we deadlocked.
            return if remaining.iter().all(|&r| r == 0) {
                Ok(makespan)
            } else {
                Err(SdfError::Deadlocked)
            };
        };

        // Complete all firings at t_next (produce at completion).
        now = t_next;
        makespan = makespan.max(now);
        while let Some(&(t, a)) = active.first() {
            if t != now {
                break;
            }
            active.remove(0);
            for &cid in graph.outgoing(a) {
                tokens[cid.index()] += graph.channel(cid).production();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_graphs, SdfGraphBuilder};
    use crate::state_space::period;

    #[test]
    fn figure2_latencies() {
        let (a, b) = figure2_graphs();
        assert_eq!(iteration_latency(&a).unwrap(), Rational::integer(300));
        assert_eq!(iteration_latency(&b).unwrap(), Rational::integer(300));
    }

    #[test]
    fn latency_at_least_period_serial() {
        // Serial single-token cycle: latency == period.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(iteration_latency(&g).unwrap(), period(&g).unwrap());
    }

    #[test]
    fn pipelined_latency_exceeds_period() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 4);
        let y = b.actor("y", 6);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 3).unwrap();
        let g = b.build().unwrap();
        let lat = iteration_latency(&g).unwrap();
        let per = period(&g).unwrap();
        assert_eq!(lat, Rational::integer(10));
        assert!(lat > per);
    }

    #[test]
    fn parallel_branches_take_max() {
        // src feeds two parallel branches joined at sink: latency is the
        // longer branch.
        let mut b = SdfGraphBuilder::new("g");
        let src = b.actor("src", 2);
        let fast = b.actor("fast", 3);
        let slow = b.actor("slow", 11);
        let sink = b.actor("sink", 1);
        b.channel(src, fast, 1, 1, 0).unwrap();
        b.channel(src, slow, 1, 1, 0).unwrap();
        b.channel(fast, sink, 1, 1, 0).unwrap();
        b.channel(slow, sink, 1, 1, 0).unwrap();
        b.channel(sink, src, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(iteration_latency(&g).unwrap(), Rational::integer(14)); // 2+11+1
    }

    #[test]
    fn deadlock_detected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        assert_eq!(
            iteration_latency(&b.build().unwrap()).unwrap_err(),
            SdfError::Deadlocked
        );
    }

    #[test]
    fn multirate_latency() {
        // x fires twice (serialized by self-loop), then y: 2·5 + 9.
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 5);
        let y = b.actor("y", 9);
        b.channel(x, y, 1, 2, 0).unwrap();
        b.channel(y, x, 2, 1, 2).unwrap();
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        assert_eq!(
            iteration_latency(&b.build().unwrap()).unwrap(),
            Rational::integer(19)
        );
    }
}
