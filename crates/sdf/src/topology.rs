//! Structural analyses on the actor/channel topology: strongly connected
//! components (Tarjan), reachability and connectivity predicates.
//!
//! The paper's evaluation uses *strongly connected* SDFGs ("every actor in
//! the graph can be reached from every actor"); the generator and several
//! analyses rely on the predicates here.
//!
//! # Examples
//!
//! ```
//! use sdf::{figure2_graphs, is_strongly_connected, strongly_connected_components};
//!
//! let (a, _) = figure2_graphs();
//! assert!(is_strongly_connected(&a));
//! assert_eq!(strongly_connected_components(&a).len(), 1);
//! ```

use crate::graph::{ActorId, SdfGraph};

/// Computes the strongly connected components of the graph with Tarjan's
/// algorithm (iterative, so deep graphs cannot overflow the stack).
///
/// Components are returned in reverse topological order (Tarjan's natural
/// output order); each component lists its member actors.
///
/// # Examples
///
/// ```
/// use sdf::{strongly_connected_components, SdfGraphBuilder};
///
/// let mut b = SdfGraphBuilder::new("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 1, 1, 0)?; // x -> y only: two SCCs
/// let g = b.build()?;
/// assert_eq!(strongly_connected_components(&g).len(), 2);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn strongly_connected_components(graph: &SdfGraph) -> Vec<Vec<ActorId>> {
    let n = graph.actor_count();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<ActorId>> = Vec::new();

    // Explicit DFS state machine: (vertex, next-edge-offset).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut edge)) = call_stack.last_mut() {
            let out = graph.outgoing(ActorId(v));
            if *edge < out.len() {
                let cid = out[*edge];
                *edge += 1;
                let w = graph.channel(cid).dst().0;
                if w == v {
                    continue; // self-loop: no effect on SCCs
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack cannot underflow");
                        on_stack[w] = false;
                        component.push(ActorId(w));
                        if w == v {
                            break;
                        }
                    }
                    component.sort();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Returns `true` iff every actor can reach every other actor.
///
/// Single-actor graphs are strongly connected by convention.
///
/// # Examples
///
/// ```
/// use sdf::{figure2_graphs, is_strongly_connected};
/// let (a, _) = figure2_graphs();
/// assert!(is_strongly_connected(&a));
/// ```
pub fn is_strongly_connected(graph: &SdfGraph) -> bool {
    strongly_connected_components(graph).len() == 1
}

/// Set of actors reachable from `start` (including `start` itself).
///
/// # Examples
///
/// ```
/// use sdf::{reachable_from, ActorId, SdfGraphBuilder};
///
/// let mut b = SdfGraphBuilder::new("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// let z = b.actor("z", 1);
/// b.channel(x, y, 1, 1, 0)?;
/// let g = b.build()?;
/// let r = reachable_from(&g, x);
/// assert!(r.contains(&y) && !r.contains(&z));
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn reachable_from(graph: &SdfGraph, start: ActorId) -> Vec<ActorId> {
    let n = graph.actor_count();
    let mut seen = vec![false; n];
    let mut stack = vec![start.0];
    seen[start.0] = true;
    while let Some(v) = stack.pop() {
        for &cid in graph.outgoing(ActorId(v)) {
            let w = graph.channel(cid).dst().0;
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    (0..n).filter(|&i| seen[i]).map(ActorId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SdfGraphBuilder;

    fn chain(n: usize) -> SdfGraph {
        let mut b = SdfGraphBuilder::new("chain");
        let ids: Vec<_> = (0..n).map(|i| b.actor(format!("a{i}"), 1)).collect();
        for w in ids.windows(2) {
            b.channel(w[0], w[1], 1, 1, 0).unwrap();
        }
        b.build().unwrap()
    }

    fn ring(n: usize) -> SdfGraph {
        let mut b = SdfGraphBuilder::new("ring");
        let ids: Vec<_> = (0..n).map(|i| b.actor(format!("a{i}"), 1)).collect();
        for i in 0..n {
            b.channel(ids[i], ids[(i + 1) % n], 1, 1, u64::from(i == n - 1))
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_has_n_sccs() {
        let g = chain(5);
        assert_eq!(strongly_connected_components(&g).len(), 5);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn ring_is_one_scc() {
        let g = ring(6);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 6);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn single_actor_strongly_connected() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        b.self_loop(x, 1);
        assert!(is_strongly_connected(&b.build().unwrap()));
    }

    #[test]
    fn two_rings_bridged_one_way() {
        // ring(3) -> ring(3): two SCCs of size 3.
        let mut b = SdfGraphBuilder::new("g");
        let ids: Vec<_> = (0..6).map(|i| b.actor(format!("a{i}"), 1)).collect();
        for i in 0..3 {
            b.channel(ids[i], ids[(i + 1) % 3], 1, 1, 0).unwrap();
            b.channel(ids[3 + i], ids[3 + (i + 1) % 3], 1, 1, 0)
                .unwrap();
        }
        b.channel(ids[0], ids[3], 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn reachability_on_chain() {
        let g = chain(4);
        assert_eq!(reachable_from(&g, ActorId(0)).len(), 4);
        assert_eq!(reachable_from(&g, ActorId(2)).len(), 2);
        assert_eq!(reachable_from(&g, ActorId(3)), vec![ActorId(3)]);
    }

    #[test]
    fn self_loops_ignored_for_scc() {
        let mut b = SdfGraphBuilder::new("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.self_loop(x, 1);
        b.self_loop(y, 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(strongly_connected_components(&g).len(), 2);
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // 50_000-node chain would overflow a recursive Tarjan.
        let g = chain(50_000);
        assert_eq!(strongly_connected_components(&g).len(), 50_000);
    }
}
