//! Exact rational arithmetic used throughout the analysis side of the
//! library.
//!
//! Waiting times produced by the probabilistic contention model are ratios of
//! integers (e.g. `50/3` time units in the paper's worked example). The
//! self-timed state-space analysis of [`crate::state_space`] detects periodic
//! behaviour through *exact* state equality, so times must not be subjected
//! to floating-point rounding. [`Rational`] provides the minimal exact
//! arithmetic the library needs, over `i128` with eager normalisation.
//!
//! # Examples
//!
//! ```
//! use sdf::Rational;
//!
//! let third = Rational::new(1, 3);
//! let half = Rational::new(1, 2);
//! assert_eq!(third + half, Rational::new(5, 6));
//! assert_eq!(Rational::new(100, 300), third);
//! assert!(half > third);
//! ```

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number with an `i128` numerator and denominator.
///
/// Invariants maintained by every constructor and operator:
/// * the denominator is strictly positive,
/// * numerator and denominator are coprime,
/// * zero is represented as `0/1`.
///
/// # Examples
///
/// ```
/// use sdf::Rational;
///
/// let p = Rational::new(2, 6);
/// assert_eq!(p.numer(), 1);
/// assert_eq!(p.denom(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    numer: i128,
    denom: i128,
}

/// Zero constant (`0/1`).
pub const ZERO: Rational = Rational { numer: 0, denom: 1 };
/// One constant (`1/1`).
pub const ONE: Rational = Rational { numer: 1, denom: 1 };

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero (`0/1`).
    pub const ZERO: Rational = ZERO;
    /// One (`1/1`).
    pub const ONE: Rational = ONE;

    /// Creates a rational `numer/denom`, normalising sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert_eq!(Rational::new(4, -8), Rational::new(-1, 2));
    /// ```
    pub fn new(numer: i128, denom: i128) -> Self {
        assert!(denom != 0, "rational denominator must be non-zero");
        let sign = if denom < 0 { -1 } else { 1 };
        let g = gcd(numer, denom);
        if g == 0 {
            return ZERO;
        }
        Rational {
            numer: sign * numer / g,
            denom: sign * denom / g,
        }
    }

    /// Creates an integral rational `n/1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert_eq!(Rational::integer(5), Rational::new(5, 1));
    /// ```
    pub const fn integer(n: i128) -> Self {
        Rational { numer: n, denom: 1 }
    }

    /// The normalised numerator.
    pub const fn numer(&self) -> i128 {
        self.numer
    }

    /// The normalised (strictly positive) denominator.
    pub const fn denom(&self) -> i128 {
        self.denom
    }

    /// Returns `true` iff the value is exactly zero.
    pub const fn is_zero(&self) -> bool {
        self.numer == 0
    }

    /// Returns `true` iff the value is an integer.
    pub const fn is_integer(&self) -> bool {
        self.denom == 1
    }

    /// Returns `true` iff the value is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.numer > 0
    }

    /// Returns `true` iff the value is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.numer < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
    /// ```
    pub fn recip(&self) -> Self {
        assert!(self.numer != 0, "cannot invert zero");
        Rational::new(self.denom, self.numer)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }

    /// Lossy conversion to `f64`, for reporting only.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert!((Rational::new(1, 3).to_f64() - 0.333333).abs() < 1e-5);
    /// ```
    pub fn to_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Floor of the value as an integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert_eq!(Rational::new(7, 2).floor(), 3);
    /// assert_eq!(Rational::new(-7, 2).floor(), -4);
    /// ```
    pub fn floor(&self) -> i128 {
        self.numer.div_euclid(self.denom)
    }

    /// Ceiling of the value as an integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert_eq!(Rational::new(7, 2).ceil(), 4);
    /// assert_eq!(Rational::new(-7, 2).ceil(), -3);
    /// ```
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Smaller of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Checked addition, `None` on `i128` overflow.
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        let n = self
            .numer
            .checked_mul(rhs.denom)?
            .checked_add(rhs.numer.checked_mul(self.denom)?)?;
        let d = self.denom.checked_mul(rhs.denom)?;
        Some(Rational::new(n, d))
    }

    /// Checked multiplication, `None` on `i128` overflow.
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        // Cross-reduce first to keep the intermediate products small.
        let g1 = gcd(self.numer, rhs.denom).max(1);
        let g2 = gcd(rhs.numer, self.denom).max(1);
        let n = (self.numer / g1).checked_mul(rhs.numer / g2)?;
        let d = (self.denom / g2).checked_mul(rhs.denom / g1)?;
        Some(Rational::new(n, d))
    }

    /// Rounds to the nearest multiple of `1/grid` (ties toward `+∞`).
    ///
    /// Values already on the grid — any value whose denominator divides
    /// `grid` — are returned unchanged, so quantisation is exact for "nice"
    /// rationals. Analyses use this to bound denominator growth where exact
    /// arithmetic would overflow `i128` (see the `contention` crate's
    /// estimator).
    ///
    /// # Panics
    ///
    /// Panics if `grid <= 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// // 1/3 is on the 2520 grid: unchanged.
    /// assert_eq!(Rational::new(1, 3).quantize(2520), Rational::new(1, 3));
    /// // 1/7919 (prime) is snapped to the nearest 1/2520 step.
    /// let q = Rational::new(1, 7919).quantize(2520);
    /// assert_eq!(q.denom() % 1, 0);
    /// assert!((q - Rational::new(1, 7919)).abs() <= Rational::new(1, 2 * 2520));
    /// ```
    pub fn quantize(&self, grid: i128) -> Rational {
        assert!(grid > 0, "quantisation grid must be positive");
        if grid % self.denom == 0 {
            return *self;
        }
        // Exact integer path: ⌊(2·n·g + d) / (2·d)⌋ / g (round half up).
        if let Some(scaled) = self
            .numer
            .checked_mul(grid)
            .and_then(|x| x.checked_mul(2))
            .and_then(|x| x.checked_add(self.denom))
        {
            if let Some(two_d) = self.denom.checked_mul(2) {
                return Rational::new(scaled.div_euclid(two_d), grid);
            }
        }
        // Overflow-safe path for huge numerators/denominators: split off the
        // integer part and round the fractional part via f64. The fraction
        // is in [0, 1), so the f64 error (≤ 2⁻⁵² relative) is far below half
        // a grid step for any practical grid.
        let whole = self.numer.div_euclid(self.denom);
        let rem = self.numer.rem_euclid(self.denom);
        let frac = ((rem as f64) / (self.denom as f64) * (grid as f64)).round() as i128;
        Rational::new(whole * grid + frac, grid)
    }

    /// Raises the value to a non-negative integer power.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf::Rational;
    /// assert_eq!(Rational::new(1, 2).pow(3), Rational::new(1, 8));
    /// assert_eq!(Rational::new(5, 7).pow(0), Rational::ONE);
    /// ```
    pub fn pow(&self, exp: u32) -> Self {
        let mut acc = ONE;
        for _ in 0..exp {
            acc *= *self;
        }
        acc
    }
}

impl Default for Rational {
    fn default() -> Self {
        ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::integer(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::integer(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        // lcm-based addition keeps intermediates as small as possible.
        let g = gcd(self.denom, rhs.denom);
        let n = self.numer * (rhs.denom / g) + rhs.numer * (self.denom / g);
        let d = (self.denom / g) * rhs.denom;
        Rational::new(n, d)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul(rhs)
            .expect("rational multiplication overflowed i128")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Self) -> Self {
        assert!(!rhs.is_zero(), "division of rational by zero");
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Fast path: cross-multiplication (denominators are positive).
        if let (Some(l), Some(r)) = (
            self.numer.checked_mul(other.denom),
            other.numer.checked_mul(self.denom),
        ) {
            return l.cmp(&r);
        }
        // Overflow-proof exact path: continued-fraction comparison.
        cmp_fraction(self.numer, self.denom, other.numer, other.denom)
    }
}

/// Compares `a/b` with `c/d` (b, d > 0) without overflowing, by comparing
/// Euclidean quotients and recursing on the remainders.
fn cmp_fraction(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    debug_assert!(b > 0 && d > 0);
    let (qa, ra) = (a.div_euclid(b), a.rem_euclid(b));
    let (qc, rc) = (c.div_euclid(d), c.rem_euclid(d));
    match qa.cmp(&qc) {
        Ordering::Equal => {}
        other => return other,
    }
    match (ra == 0, rc == 0) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        // a/b vs c/d with equal integer parts: compare remainders
        // ra/b vs rc/d ⇔ d/rc vs b/ra (reversed).
        (false, false) => cmp_fraction(d, rc, b, ra),
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), ZERO);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let x = Rational::new(3, 7);
        assert_eq!(x + ZERO, x);
        assert_eq!(x * ONE, x);
        assert_eq!(x - x, ZERO);
        assert_eq!(x / x, ONE);
        assert_eq!(-(-x), x);
    }

    #[test]
    fn paper_waiting_time_example() {
        // µ(a0)·P(a0) = 50 · 1/3 = 50/3 ≈ 17 from the paper's Section 3.
        let mu = Rational::integer(50);
        let p = Rational::new(1, 3);
        let w = mu * p;
        assert_eq!(w, Rational::new(50, 3));
        assert_eq!(w.floor(), 16);
        assert_eq!(w.ceil(), 17);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(10, 2).to_string(), "5");
        assert_eq!(Rational::new(50, 3).to_string(), "50/3");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::integer(4).floor(), 4);
        assert_eq!(Rational::integer(4).ceil(), 4);
        assert_eq!(Rational::new(9, 4).floor(), 2);
        assert_eq!(Rational::new(9, 4).ceil(), 3);
    }

    #[test]
    fn sum_iterator() {
        let total: Rational = (1..=3).map(|n| Rational::new(1, n)).sum();
        assert_eq!(total, Rational::new(11, 6));
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let huge = Rational::integer(i128::MAX / 2);
        assert!(huge.checked_mul(huge).is_none());
        assert!(huge.checked_add(huge).is_some());
        assert!(Rational::integer(i128::MAX)
            .checked_add(Rational::integer(i128::MAX))
            .is_none());
    }

    #[test]
    fn quantize_exact_values_unchanged() {
        for r in [
            Rational::new(1, 3),
            Rational::new(50, 3),
            Rational::new(-7, 8),
            Rational::integer(42),
            ZERO,
        ] {
            assert_eq!(r.quantize(2520), r, "{r}");
        }
    }

    #[test]
    fn quantize_rounds_to_grid() {
        // 1/3 on a grid of 2: 0.333 → 1/2 (round half up of 0.666 is 1).
        assert_eq!(Rational::new(1, 3).quantize(2), Rational::new(1, 2));
        assert_eq!(Rational::new(1, 5).quantize(2), ZERO); // 0.4 → 0
        assert_eq!(Rational::new(3, 10).quantize(5), Rational::new(2, 5)); // 0.3·5 = 1.5 ties up → 2/5
                                                                           // Verify the tie rule explicitly: 1.5 rounds up.
        assert_eq!(Rational::new(3, 2).quantize(1), Rational::integer(2));
        assert_eq!(Rational::new(-3, 2).quantize(1), Rational::integer(-1));
        // Error is at most half a grid step.
        let x = Rational::new(355, 113);
        let q = x.quantize(1000);
        assert!((q - x).abs() <= Rational::new(1, 2000));
    }

    #[test]
    #[should_panic(expected = "grid must be positive")]
    fn quantize_zero_grid_panics() {
        let _ = ONE.quantize(0);
    }

    #[test]
    fn pow() {
        assert_eq!(Rational::new(2, 3).pow(2), Rational::new(4, 9));
        assert_eq!(Rational::new(-1, 2).pow(3), Rational::new(-1, 8));
    }

    #[test]
    fn min_max() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
