//! Classic media-application SDF benchmarks.
//!
//! The paper's domain is "multi-featured media devices"; its evaluation uses
//! random DSP-like graphs. This module additionally provides the classic
//! hand-modelled application graphs from the SDF literature — the workloads
//! a downstream user of this library would actually map onto a platform:
//!
//! * [`cd2dat`] — the CD→DAT sample-rate converter (Lee/Bhattacharyya), the
//!   canonical multi-rate chain with repetition vector `[147, 98, 28, 32, 160]`;
//! * [`h263_decoder`] — QCIF H.263 decoder (after Stuijk et al.): one VLD
//!   firing fans out 594 macroblocks through IQ/IDCT into motion
//!   compensation;
//! * [`mp3_decoder`] — a simplified MP3 decoder granule pipeline;
//! * [`modem`] — a compact V.32-style modem loop (after Bhattacharyya et
//!   al.'s classic example).
//!
//! All graphs are made strongly connected with a full-iteration feedback
//! channel (so every analysis in this crate applies) and carry one-token
//! self-loops bounding auto-concurrency, matching the platform model.
//!
//! Execution times follow the commonly used literature values where
//! published and representative magnitudes otherwise; rates (and therefore
//! repetition vectors) are the published ones.
//!
//! # Examples
//!
//! ```
//! use sdf::{benchmarks, repetition_vector};
//!
//! let g = benchmarks::cd2dat();
//! let q = repetition_vector(&g)?;
//! assert_eq!(q.as_slice(), &[147, 98, 28, 32, 160]);
//! # Ok::<(), sdf::SdfError>(())
//! ```

use crate::graph::{SdfGraph, SdfGraphBuilder};

/// The CD→DAT sample-rate converter: 44.1 kHz → 48 kHz through four
/// fractional stages (`2/3 · 2/7 · 8/7 · 5/1`), repetition vector
/// `[147, 98, 28, 32, 160]`.
///
/// # Examples
///
/// ```
/// let g = sdf::benchmarks::cd2dat();
/// assert_eq!(g.actor_count(), 5);
/// assert!(sdf::validate_analyzable(&g).is_ok());
/// ```
pub fn cd2dat() -> SdfGraph {
    let mut b = SdfGraphBuilder::new("cd2dat");
    let stages = [
        ("cd", 10u64),
        ("fir1", 12),
        ("fir2", 14),
        ("fir3", 16),
        ("dat", 10),
    ];
    let ids: Vec<_> = stages
        .iter()
        .map(|(name, tau)| b.actor(*name, *tau))
        .collect();
    // Balance: q = [147, 98, 28, 32, 160].
    let rates: [(u64, u64); 4] = [(2, 3), (2, 7), (8, 7), (5, 1)];
    for (i, &(p, c)) in rates.iter().enumerate() {
        b.channel(ids[i], ids[i + 1], p, c, 0)
            .expect("literature rates are positive");
    }
    // Feedback with one iteration of tokens: dat fires 160× per iteration,
    // cd consumes 160 of its productions … close the loop at rate
    // (147, 160): 160·q[dat] = 147·… — balance: p·q[dat] = c·q[cd]
    // ⇒ p/c = 147/160.
    b.channel(ids[4], ids[0], 147, 160, 147 * 160 / gcd(147, 160))
        .expect("feedback rates are positive");
    for &a in &ids {
        b.self_loop(a, 1);
    }
    b.build().expect("cd2dat is structurally valid")
}

/// QCIF H.263 decoder: `vld → iq → idct → mc`, with 594 macroblocks per
/// frame (`q = [1, 594, 594, 1]`) and the literature's execution times.
///
/// # Examples
///
/// ```
/// use sdf::{benchmarks, repetition_vector};
/// let g = benchmarks::h263_decoder();
/// assert_eq!(repetition_vector(&g)?.as_slice(), &[1, 594, 594, 1]);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn h263_decoder() -> SdfGraph {
    let mut b = SdfGraphBuilder::new("h263-decoder");
    let vld = b.actor("vld", 26_018);
    let iq = b.actor("iq", 559);
    let idct = b.actor("idct", 486);
    let mc = b.actor("mc", 10_958);
    b.channel(vld, iq, 594, 1, 0).expect("valid");
    b.channel(iq, idct, 1, 1, 0).expect("valid");
    b.channel(idct, mc, 1, 594, 0).expect("valid");
    // Frame feedback: the next VLD firing needs the previous frame done.
    b.channel(mc, vld, 1, 1, 1).expect("valid");
    for a in [vld, iq, idct, mc] {
        b.self_loop(a, 1);
    }
    b.build().expect("h263 decoder is structurally valid")
}

/// Simplified MP3 decoder granule pipeline:
/// `huffman → requantize → stereo → imdct → synthesis`, two granules per
/// frame feeding 18-sample IMDCT blocks (`q = [1, 2, 2, 36, 36]`).
///
/// # Examples
///
/// ```
/// use sdf::{benchmarks, repetition_vector};
/// let g = benchmarks::mp3_decoder();
/// assert_eq!(repetition_vector(&g)?.as_slice(), &[1, 2, 2, 36, 36]);
/// # Ok::<(), sdf::SdfError>(())
/// ```
pub fn mp3_decoder() -> SdfGraph {
    let mut b = SdfGraphBuilder::new("mp3-decoder");
    let huff = b.actor("huffman", 2_600);
    let req = b.actor("requantize", 1_100);
    let stereo = b.actor("stereo", 420);
    let imdct = b.actor("imdct", 210);
    let synth = b.actor("synthesis", 280);
    b.channel(huff, req, 2, 1, 0).expect("valid"); // 2 granules per frame
    b.channel(req, stereo, 1, 1, 0).expect("valid");
    b.channel(stereo, imdct, 18, 1, 0).expect("valid"); // 18 blocks per granule
    b.channel(imdct, synth, 1, 1, 0).expect("valid");
    b.channel(synth, huff, 1, 36, 36).expect("valid"); // frame feedback
    for a in [huff, req, stereo, imdct, synth] {
        b.self_loop(a, 1);
    }
    b.build().expect("mp3 decoder is structurally valid")
}

/// A compact modem loop (after the classic Bhattacharyya/Lee example):
/// `filter → equalizer → detector → decoder`, single-rate with a
/// decision-feedback cycle.
///
/// # Examples
///
/// ```
/// let g = sdf::benchmarks::modem();
/// assert_eq!(g.actor_count(), 4);
/// assert!(sdf::period(&g).is_ok());
/// ```
pub fn modem() -> SdfGraph {
    let mut b = SdfGraphBuilder::new("modem");
    let filter = b.actor("filter", 70);
    let eq = b.actor("equalizer", 120);
    let detect = b.actor("detector", 30);
    let decode = b.actor("decoder", 90);
    b.channel(filter, eq, 1, 1, 0).expect("valid");
    b.channel(eq, detect, 1, 1, 0).expect("valid");
    b.channel(detect, decode, 1, 1, 0).expect("valid");
    // Decision feedback into the equalizer, plus the outer sample loop.
    b.channel(detect, eq, 1, 1, 1).expect("valid");
    b.channel(decode, filter, 1, 1, 1).expect("valid");
    for a in [filter, eq, detect, decode] {
        b.self_loop(a, 1);
    }
    b.build().expect("modem is structurally valid")
}

/// Every benchmark graph, with its name (for sweeping in tests/benches).
pub fn all() -> Vec<SdfGraph> {
    vec![cd2dat(), h263_decoder(), mp3_decoder(), modem()]
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::validate_analyzable;
    use crate::rational::Rational;
    use crate::repetition::repetition_vector;
    use crate::state_space::{analyze_period_with, AnalysisOptions};

    #[test]
    fn all_benchmarks_are_analyzable() {
        for g in all() {
            validate_analyzable(&g).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn cd2dat_repetition_vector() {
        let q = repetition_vector(&cd2dat()).unwrap();
        assert_eq!(q.as_slice(), &[147, 98, 28, 32, 160]);
        assert_eq!(q.total_firings(), 465);
    }

    #[test]
    fn h263_period_is_serial_frame_time() {
        // Single token in the frame loop serialises the decoder:
        // Per = τ(vld) + 594·(τ(iq) + τ(idct)) + τ(mc).
        let g = h263_decoder();
        let opts = AnalysisOptions {
            max_steps: 10_000_000,
            ..Default::default()
        };
        let per = analyze_period_with(&g, opts).unwrap().period;
        // IQ and IDCT pipeline (different resources in pure SDF semantics);
        // the IQ chain dominates (559 > 486), so the frame finishes at
        // τ(vld) + 594·τ(iq) + τ(idct) + τ(mc).
        let expected = 26_018 + 594 * 559 + 486 + 10_958;
        assert_eq!(per, Rational::integer(expected));
    }

    #[test]
    fn mp3_repetition_vector_and_period() {
        let g = mp3_decoder();
        let q = repetition_vector(&g).unwrap();
        assert_eq!(q.as_slice(), &[1, 2, 2, 36, 36]);
        let per = crate::state_space::period(&g).unwrap();
        // Stages pipeline within the frame; the measured self-timed frame
        // time (regression-pinned) sits between the slowest single chain
        // (36·280 = 10 080) and the fully serial sum (23 280).
        assert_eq!(per, Rational::integer(14_410));
        let serial = 2_600 + 2_200 + 840 + 7_560 + 10_080;
        assert!(per < Rational::integer(serial));
        assert!(per > Rational::integer(10_080));
    }

    #[test]
    fn modem_feedback_serialises_inner_loop() {
        let per = crate::state_space::period(&modem()).unwrap();
        // Outer loop: 70 + 120 + 30 + 90 = 310 (single token everywhere).
        assert_eq!(per, Rational::integer(310));
    }

    #[test]
    fn benchmarks_have_distinct_names() {
        let names: Vec<String> = all().iter().map(|g| g.name().to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
