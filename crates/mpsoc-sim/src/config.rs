//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// Arbitration policy of a processing node.
///
/// The paper's platform model is non-preemptive with no imposed order
/// ("actors are allowed to execute with least contention on their own"),
/// which a first-come-first-served queue realises; a static-priority variant
/// is provided for the sensitivity ablation in the `bench` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ArbitrationPolicy {
    /// Non-preemptive first-come-first-served (default; the paper's model).
    #[default]
    Fcfs,
    /// Non-preemptive static priority: among queued requests, the actor with
    /// the lowest `(application, actor)` pair wins.
    StaticPriority,
}

/// Options of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated time horizon (time units). The paper simulates each
    /// use-case for 500 000 cycles.
    pub horizon: u64,
    /// Fraction of *completed iterations* discarded as warm-up before the
    /// average period is measured (self-timed executions have a transient).
    pub warmup_fraction: f64,
    /// Node arbitration policy.
    pub policy: ArbitrationPolicy,
    /// Record a full execution trace ([`crate::trace::TraceEvent`] per
    /// request/start/completion). Off by default — paper-scale runs process
    /// millions of firings.
    pub trace: bool,
    /// Optional execution-time jitter, for validating the stochastic
    /// extension of the contention model (paper conclusions: "execution
    /// times … follow a probabilistic distribution").
    pub jitter: Option<JitterConfig>,
}

/// Multiplicative, uniformly distributed execution-time jitter.
///
/// Each firing's duration is drawn uniformly from
/// `τ · [1 − spread, 1 + spread]` (rounded, minimum 1 cycle), where
/// `spread = spread_percent / 100`. The mean duration stays `τ`, so the
/// blocking probability `P` is unchanged while the residual blocking time
/// `µ` grows with the variance — exactly what
/// `contention::ExecutionTime::uniform` predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JitterConfig {
    /// Half-width of the uniform jitter in percent of `τ` (0–100).
    pub spread_percent: u32,
    /// RNG seed (runs stay deterministic).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: 500_000,
            warmup_fraction: 0.25,
            policy: ArbitrationPolicy::Fcfs,
            trace: false,
            jitter: None,
        }
    }
}

impl SimConfig {
    /// A configuration with a custom horizon and default everything else.
    ///
    /// # Examples
    ///
    /// ```
    /// use mpsoc_sim::SimConfig;
    /// let c = SimConfig::with_horizon(100_000);
    /// assert_eq!(c.horizon, 100_000);
    /// ```
    pub fn with_horizon(horizon: u64) -> Self {
        SimConfig {
            horizon,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.horizon, 500_000);
        assert_eq!(c.policy, ArbitrationPolicy::Fcfs);
        assert!(c.warmup_fraction > 0.0 && c.warmup_fraction < 1.0);
    }

    #[test]
    fn with_horizon() {
        assert_eq!(SimConfig::with_horizon(42).horizon, 42);
    }
}
