//! Execution tracing: a per-firing event log and a text Gantt renderer.
//!
//! Tracing is off by default (the paper-scale runs process millions of
//! firings); enable it with [`crate::SimConfig::trace`] for debugging and
//! for visualising how contention serialises co-mapped actors.
//!
//! # Examples
//!
//! ```
//! use mpsoc_sim::{simulate, SimConfig};
//! use mpsoc_sim::trace::render_gantt;
//! use platform::{Application, Mapping, SystemSpec, UseCase};
//! use sdf::figure2_graphs;
//!
//! let (a, b) = figure2_graphs();
//! let spec = SystemSpec::builder()
//!     .application(Application::new("A", a)?)
//!     .application(Application::new("B", b)?)
//!     .mapping(Mapping::by_actor_index(3))
//!     .build()?;
//! let mut config = SimConfig::with_horizon(1_200);
//! config.trace = true;
//! let result = simulate(&spec, UseCase::full(2), config)?;
//! let gantt = render_gantt(result.trace().unwrap(), 3, 60);
//! assert!(gantt.contains("node#0"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use platform::{AppId, NodeId};
use sdf::ActorId;
use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// What happened in one trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The actor requested its node (became enabled and queued).
    Request,
    /// The node granted the actor; the firing started (tokens consumed).
    Start,
    /// The firing completed (tokens produced, node released).
    Complete,
}

/// One record of the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: u64,
    /// The node involved.
    pub node: NodeId,
    /// The application owning the actor.
    pub app: AppId,
    /// The actor.
    pub actor: ActorId,
    /// Event kind.
    pub kind: TraceKind,
}

/// Renders a text Gantt chart of the trace: one row per node, time bucketed
/// into `width` columns over `[0, max time]`. Each busy bucket shows the
/// application index occupying the node (`.` = idle, `*` = multiple
/// applications within one bucket).
///
/// Returns an empty string for an empty trace.
pub fn render_gantt(trace: &[TraceEvent], node_count: usize, width: usize) -> String {
    let Some(end) = trace.iter().map(|e| e.time).max().filter(|&t| t > 0) else {
        return String::new();
    };
    let width = width.max(1);

    // Reconstruct busy intervals per node from Start/Complete pairs.
    let mut rows = vec![vec![None::<usize>; width]; node_count];
    let mut open: std::collections::HashMap<(usize, usize, usize), u64> =
        std::collections::HashMap::new();
    let mark = |node: usize, from: u64, to: u64, app: usize, rows: &mut Vec<Vec<Option<usize>>>| {
        let lo = (from as u128 * width as u128 / end as u128) as usize;
        let hi = ((to as u128 * width as u128).div_ceil(end as u128) as usize).min(width);
        for cell in rows[node][lo..hi].iter_mut() {
            *cell = match *cell {
                None => Some(app),
                Some(prev) if prev == app => Some(app),
                Some(_) => Some(usize::MAX), // mixed bucket
            };
        }
    };
    for e in trace {
        let key = (e.node.index(), e.app.index(), e.actor.index());
        match e.kind {
            TraceKind::Start => {
                open.insert(key, e.time);
            }
            TraceKind::Complete => {
                if let Some(from) = open.remove(&key) {
                    if e.node.index() < node_count {
                        mark(e.node.index(), from, e.time, e.app.index(), &mut rows);
                    }
                }
            }
            TraceKind::Request => {}
        }
    }

    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(out, "{:<8}|", format!("node#{i}"));
        for cell in row {
            let ch = match cell {
                None => '.',
                Some(usize::MAX) => '*',
                Some(app) => char::from_digit((*app % 36) as u32, 36).unwrap_or('?'),
            };
            out.push(ch);
        }
        out.push_str("|\n");
    }
    let _ = writeln!(out, "{:<8} 0{:>width$}", "time", end, width = width - 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, node: usize, app: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time,
            node: NodeId(node),
            app: AppId(app),
            actor: ActorId(0),
            kind,
        }
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_gantt(&[], 3, 40).is_empty());
    }

    #[test]
    fn single_firing_fills_its_interval() {
        let trace = vec![
            ev(0, 0, 1, TraceKind::Start),
            ev(50, 0, 1, TraceKind::Complete),
            ev(50, 0, 0, TraceKind::Start),
            ev(100, 0, 0, TraceKind::Complete),
        ];
        let g = render_gantt(&trace, 1, 10);
        let row = g.lines().next().unwrap();
        // First half app 1, second half app 0.
        assert!(row.contains("11111"), "{g}");
        assert!(row.contains("00000"), "{g}");
    }

    #[test]
    fn idle_time_is_dots() {
        let trace = vec![
            ev(0, 0, 0, TraceKind::Start),
            ev(10, 0, 0, TraceKind::Complete),
            // node idle 10..100, bound the chart with a request event
            ev(100, 0, 0, TraceKind::Request),
        ];
        let g = render_gantt(&trace, 1, 10);
        assert!(g.lines().next().unwrap().contains("....."), "{g}");
    }

    #[test]
    fn unmatched_start_ignored() {
        let trace = vec![
            ev(0, 0, 0, TraceKind::Start),
            ev(5, 0, 0, TraceKind::Request),
        ];
        let g = render_gantt(&trace, 1, 5);
        assert!(g.lines().next().unwrap().contains("....."), "{g}");
    }
}
