//! Simulation metrics: per-application iteration tracking and period
//! statistics.

use crate::config::SimConfig;
use platform::{AppId, SystemSpec, UseCase};
use sdf::ActorId;
use serde::{Deserialize, Serialize};

/// Per-application measurement state and derived statistics.
///
/// An application completes one *iteration* each time its reference actor
/// (actor 0) completes `q(actor 0)` firings — the repetition-vector
/// definition of an iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMetrics {
    app: AppId,
    q_ref: u64,
    ref_completions: u64,
    total_firings: u64,
    iteration_times: Vec<u64>,
}

impl AppMetrics {
    pub(crate) fn new(app: AppId, q_ref: u64) -> AppMetrics {
        AppMetrics {
            app,
            q_ref,
            ref_completions: 0,
            total_firings: 0,
            iteration_times: Vec::new(),
        }
    }

    pub(crate) fn record_completion(&mut self, actor: ActorId, time: u64) {
        self.total_firings += 1;
        if actor.index() == 0 {
            self.ref_completions += 1;
            if self.ref_completions.is_multiple_of(self.q_ref) {
                self.iteration_times.push(time);
            }
        }
    }

    /// The application these metrics belong to.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// Number of completed iterations.
    pub fn iterations(&self) -> u64 {
        self.iteration_times.len() as u64
    }

    /// Total firings of all actors.
    pub fn total_firings(&self) -> u64 {
        self.total_firings
    }

    /// Completion time of every iteration, ascending.
    pub fn iteration_times(&self) -> &[u64] {
        &self.iteration_times
    }

    /// Average period over the post-warm-up window (`None` when fewer than
    /// two iterations survive the warm-up cut).
    pub fn average_period_with_warmup(&self, warmup_fraction: f64) -> Option<f64> {
        let n = self.iteration_times.len();
        let skip = ((n as f64) * warmup_fraction).floor() as usize;
        let window = &self.iteration_times[skip.min(n.saturating_sub(2))..];
        if window.len() < 2 {
            return None;
        }
        let span = (window[window.len() - 1] - window[0]) as f64;
        Some(span / (window.len() - 1) as f64)
    }

    /// Average period with the default 25 % warm-up cut.
    pub fn average_period(&self) -> Option<f64> {
        self.average_period_with_warmup(0.25)
    }

    /// Worst (largest) gap between consecutive iteration completions — the
    /// "Simulated Worst Case" series of the paper's Figure 5.
    pub fn worst_period(&self) -> Option<u64> {
        self.iteration_times.windows(2).map(|w| w[1] - w[0]).max()
    }

    /// Best (smallest) inter-iteration gap.
    pub fn best_period(&self) -> Option<u64> {
        self.iteration_times.windows(2).map(|w| w[1] - w[0]).min()
    }

    /// Throughput (iterations per time unit) over the measurement window.
    pub fn average_throughput(&self) -> Option<f64> {
        self.average_period().map(|p| 1.0 / p)
    }
}

/// Observed queueing statistics of one actor: how often it requested its
/// node and how long it actually waited — the empirical counterpart of the
/// model's predicted `t_wait` (used by the validation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ActorStats {
    /// Number of node requests (= granted firings).
    pub requests: u64,
    /// Total time spent between request and grant.
    pub total_wait: u64,
}

impl ActorStats {
    /// Mean waiting time per request (`None` before the first request).
    pub fn mean_wait(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.total_wait as f64 / self.requests as f64)
    }
}

/// Observed occupancy of one processing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NodeStats {
    /// Total time the node spent executing firings.
    pub busy_time: u64,
    /// Firings granted on this node.
    pub grants: u64,
}

impl NodeStats {
    /// Fraction of the run the node was busy — the empirical counterpart of
    /// the combined blocking pressure the model derives from the `P(a)`.
    pub fn utilization(&self, end_time: u64) -> f64 {
        if end_time == 0 {
            0.0
        } else {
            self.busy_time as f64 / end_time as f64
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    use_case: UseCase,
    config: SimConfig,
    end_time: u64,
    events_processed: u64,
    apps: Vec<AppMetrics>,
    actor_stats: std::collections::BTreeMap<(AppId, sdf::ActorId), ActorStats>,
    node_stats: Vec<NodeStats>,
    trace: Option<Vec<crate::trace::TraceEvent>>,
}

impl SimResult {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        use_case: UseCase,
        config: SimConfig,
        end_time: u64,
        events_processed: u64,
        apps: Vec<AppMetrics>,
        actor_stats: std::collections::BTreeMap<(AppId, sdf::ActorId), ActorStats>,
        node_stats: Vec<NodeStats>,
        trace: Option<Vec<crate::trace::TraceEvent>>,
        _spec: &SystemSpec,
    ) -> SimResult {
        SimResult {
            use_case,
            config,
            end_time,
            events_processed,
            apps,
            actor_stats,
            node_stats,
            trace,
        }
    }

    /// The recorded execution trace, if [`SimConfig::trace`] was enabled.
    pub fn trace(&self) -> Option<&[crate::trace::TraceEvent]> {
        self.trace.as_deref()
    }

    /// Observed queueing statistics of one actor.
    pub fn actor_stats(&self, app: AppId, actor: sdf::ActorId) -> Option<ActorStats> {
        self.actor_stats.get(&(app, actor)).copied()
    }

    /// All per-actor statistics.
    pub fn all_actor_stats(
        &self,
    ) -> &std::collections::BTreeMap<(AppId, sdf::ActorId), ActorStats> {
        &self.actor_stats
    }

    /// Observed occupancy per node (indexed by node id).
    pub fn node_stats(&self) -> &[NodeStats] {
        &self.node_stats
    }

    /// The simulated use-case.
    pub fn use_case(&self) -> UseCase {
        self.use_case
    }

    /// The configuration of the run.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Simulation end time (≤ horizon).
    pub fn end_time(&self) -> u64 {
        self.end_time
    }

    /// Number of firing-completion events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Metrics of one application, if it was active.
    pub fn app(&self, app: AppId) -> Option<&AppMetrics> {
        self.apps.iter().find(|m| m.app() == app)
    }

    /// Metrics of every active application.
    pub fn apps(&self) -> &[AppMetrics] {
        &self.apps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with_times(times: &[u64]) -> AppMetrics {
        let mut m = AppMetrics::new(AppId(0), 1);
        for &t in times {
            m.record_completion(ActorId(0), t);
        }
        m
    }

    #[test]
    fn iteration_counting_respects_q() {
        let mut m = AppMetrics::new(AppId(0), 2);
        for t in [10, 20, 30, 40, 50] {
            m.record_completion(ActorId(0), t);
        }
        // Every 2nd completion of actor 0 closes an iteration: at 20 and 40.
        assert_eq!(m.iterations(), 2);
        assert_eq!(m.iteration_times(), &[20, 40]);
        assert_eq!(m.total_firings(), 5);
    }

    #[test]
    fn non_reference_actors_do_not_close_iterations() {
        let mut m = AppMetrics::new(AppId(0), 1);
        m.record_completion(ActorId(1), 10);
        m.record_completion(ActorId(2), 20);
        assert_eq!(m.iterations(), 0);
        assert_eq!(m.total_firings(), 2);
    }

    #[test]
    fn average_period_steady_state() {
        // Transient of 100 then steady 50: warm-up cut removes the spike.
        let m = metrics_with_times(&[100, 150, 200, 250, 300, 350, 400, 450]);
        assert_eq!(m.average_period(), Some(50.0));
    }

    #[test]
    fn average_period_needs_two_points() {
        assert_eq!(metrics_with_times(&[5]).average_period(), None);
        assert_eq!(metrics_with_times(&[]).average_period(), None);
        assert_eq!(metrics_with_times(&[5, 15]).average_period(), Some(10.0));
    }

    #[test]
    fn worst_and_best_period() {
        let m = metrics_with_times(&[0, 100, 130, 230]);
        assert_eq!(m.worst_period(), Some(100));
        assert_eq!(m.best_period(), Some(30));
        assert_eq!(metrics_with_times(&[7]).worst_period(), None);
    }

    #[test]
    fn throughput_is_reciprocal() {
        let m = metrics_with_times(&[0, 50, 100, 150]);
        let p = m.average_period().unwrap();
        assert!((m.average_throughput().unwrap() - 1.0 / p).abs() < 1e-12);
    }
}
