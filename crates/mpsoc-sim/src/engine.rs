//! The discrete-event simulation engine.
//!
//! Executes a set of SDF applications on shared processing nodes with
//! non-preemptive arbitration. The firing protocol per actor:
//!
//! 1. when every incoming channel holds enough tokens (and the actor has no
//!    firing in flight — auto-concurrency is additionally bounded by the
//!    graphs' own self-loops), the actor *requests* its node;
//! 2. requests queue at the node; when the node is free the arbiter picks
//!    one ([`ArbitrationPolicy`]), the firing *consumes* its input tokens
//!    and occupies the node for the actor's execution time;
//! 3. on completion the firing *produces* its output tokens, releases the
//!    node, and newly enabled actors issue requests.
//!
//! Arrival order is tracked with a monotonic sequence number, making runs
//! fully deterministic.

use crate::config::{ArbitrationPolicy, SimConfig};
use crate::metrics::{ActorStats, AppMetrics, NodeStats, SimResult};
use crate::trace::{TraceEvent, TraceKind};
use platform::{AppId, NodeId, SystemSpec, UseCase};
use sdf::ActorId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::fmt;

/// Errors of the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An actor's execution time is not a positive integer (the simulator
    /// operates in integer cycles, like the paper's 500 000-cycle POOSL
    /// runs).
    NonIntegerExecutionTime {
        /// Application owning the offending actor.
        app: AppId,
        /// The offending actor.
        actor: ActorId,
    },
    /// The use-case references an application outside the spec.
    UnknownApplication(AppId),
    /// The system deadlocked before the horizon (no event left while
    /// applications still owe firings).
    Deadlock {
        /// Simulation time of the deadlock.
        time: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonIntegerExecutionTime { app, actor } => {
                write!(f, "{app}/{actor} has a non-integer execution time")
            }
            SimError::UnknownApplication(a) => write!(f, "unknown application {a}"),
            SimError::Deadlock { time } => write!(f, "deadlock at time {time}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Dense index of an active (application, actor) pair.
type Slot = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActorState {
    Idle,
    Queued,
    Executing,
}

struct NodeState {
    busy: bool,
    queue: VecDeque<(u64, u64, Slot)>, // (arrival time, seq, slot) — FCFS order
}

/// One actor instance in the flattened simulation state.
struct ActorInstance {
    app: AppId,
    actor: ActorId,
    node: NodeId,
    execution_time: u64,
    state: ActorState,
    /// Incoming channel slots as (channel index into app tokens, consumption).
    inputs: Vec<(usize, u64)>,
    /// Outgoing channel slots as (channel index into app tokens, production).
    outputs: Vec<(usize, u64)>,
}

struct AppState {
    tokens: Vec<u64>,
    /// Slot of each actor, indexed by actor id.
    slots: Vec<Slot>,
}

/// The simulation engine; construct with [`Simulation::new`] and drive with
/// [`Simulation::run`].
pub struct Simulation<'a> {
    spec: &'a SystemSpec,
    use_case: UseCase,
    config: SimConfig,

    actors: Vec<ActorInstance>,
    apps: Vec<(AppId, AppState)>,
    nodes: Vec<NodeState>,

    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<(u64, u64, Slot)>>, // (completion time, seq, slot)
    metrics: Vec<AppMetrics>,
    actor_stats: Vec<ActorStats>,
    node_stats: Vec<NodeStats>,
    trace: Option<Vec<TraceEvent>>,
    jitter_rng: Option<rand::rngs::StdRng>,
    events_processed: u64,
}

impl fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("use_case", &self.use_case)
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation of `use_case` on `spec`.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownApplication`] for out-of-range use-case members;
    /// * [`SimError::NonIntegerExecutionTime`] if any active actor's
    ///   execution time is not a positive integer.
    pub fn new(
        spec: &'a SystemSpec,
        use_case: UseCase,
        config: SimConfig,
    ) -> Result<Simulation<'a>, SimError> {
        for a in use_case.app_ids() {
            if a.index() >= spec.application_count() {
                return Err(SimError::UnknownApplication(a));
            }
        }

        let mut actors = Vec::new();
        let mut apps = Vec::new();
        let mut metrics = Vec::new();

        for app_id in use_case.app_ids() {
            let app = spec.application(app_id);
            let graph = app.graph();
            let mut slots = Vec::with_capacity(graph.actor_count());
            for actor in graph.actor_ids() {
                let tau = graph.execution_time(actor);
                if !tau.is_integer() || !tau.is_positive() || tau.numer() > u64::MAX as i128 {
                    return Err(SimError::NonIntegerExecutionTime { app: app_id, actor });
                }
                let inputs = graph
                    .incoming(actor)
                    .iter()
                    .map(|&cid| (cid.index(), graph.channel(cid).consumption()))
                    .collect();
                let outputs = graph
                    .outgoing(actor)
                    .iter()
                    .map(|&cid| (cid.index(), graph.channel(cid).production()))
                    .collect();
                slots.push(actors.len());
                actors.push(ActorInstance {
                    app: app_id,
                    actor,
                    node: spec.node_of(app_id, actor),
                    execution_time: tau.numer() as u64,
                    state: ActorState::Idle,
                    inputs,
                    outputs,
                });
            }
            let tokens = graph.channels().map(|(_, c)| c.initial_tokens()).collect();
            apps.push((app_id, AppState { tokens, slots }));
            metrics.push(AppMetrics::new(
                app_id,
                app.repetition_vector().get(ActorId(0)),
            ));
        }

        let nodes = (0..spec.node_count())
            .map(|_| NodeState {
                busy: false,
                queue: VecDeque::new(),
            })
            .collect();

        let actor_count = actors.len();
        let node_count = spec.node_count();
        Ok(Simulation {
            spec,
            use_case,
            config,
            actors,
            apps,
            nodes,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            metrics,
            actor_stats: vec![ActorStats::default(); actor_count],
            node_stats: vec![NodeStats::default(); node_count],
            trace: config.trace.then(Vec::new),
            jitter_rng: config.jitter.map(|j| {
                use rand::SeedableRng;
                rand::rngs::StdRng::seed_from_u64(j.seed)
            }),
            events_processed: 0,
        })
    }

    fn app_index(&self, app: AppId) -> usize {
        self.apps
            .iter()
            .position(|(id, _)| *id == app)
            .expect("active app")
    }

    fn actor_enabled(&self, slot: Slot) -> bool {
        let inst = &self.actors[slot];
        let (_, app_state) = &self.apps[self.app_index(inst.app)];
        inst.inputs
            .iter()
            .all(|&(ch, need)| app_state.tokens[ch] >= need)
    }

    fn request_if_enabled(&mut self, slot: Slot) {
        if self.actors[slot].state == ActorState::Idle && self.actor_enabled(slot) {
            self.actors[slot].state = ActorState::Queued;
            let node = self.actors[slot].node.index();
            let seq = self.seq;
            self.seq += 1;
            self.nodes[node].queue.push_back((self.now, seq, slot));
            self.record(slot, TraceKind::Request);
        }
    }

    /// Pops the next request of `node` per policy, returning `(arrival
    /// time, slot)` so the grant can account the time spent queued.
    fn pick_next(&mut self, node: usize) -> Option<(u64, Slot)> {
        let queue = &mut self.nodes[node].queue;
        if queue.is_empty() {
            return None;
        }
        let idx = match self.config.policy {
            ArbitrationPolicy::Fcfs => 0,
            ArbitrationPolicy::StaticPriority => {
                let mut best = 0;
                for i in 1..queue.len() {
                    let a = &self.actors[queue[i].2];
                    let b = &self.actors[queue[best].2];
                    if (a.app, a.actor) < (b.app, b.actor) {
                        best = i;
                    }
                }
                best
            }
        };
        queue.remove(idx).map(|(arrived, _, slot)| (arrived, slot))
    }

    fn grant(&mut self, node: usize) {
        if self.nodes[node].busy {
            return;
        }
        if let Some((arrived, slot)) = self.pick_next(node) {
            // Consume input tokens at firing start.
            let app_idx = self.app_index(self.actors[slot].app);
            {
                let tokens = &mut self.apps[app_idx].1.tokens;
                for &(ch, need) in &self.actors[slot].inputs {
                    debug_assert!(tokens[ch] >= need, "enabled firing lost its tokens");
                    tokens[ch] -= need;
                }
            }
            self.actors[slot].state = ActorState::Executing;
            self.nodes[node].busy = true;
            let duration = self.firing_duration(slot);
            // Queueing accounting: the empirical t_wait of this firing.
            self.actor_stats[slot].requests += 1;
            self.actor_stats[slot].total_wait += self.now - arrived;
            self.node_stats[node].grants += 1;
            self.node_stats[node].busy_time += duration;
            self.record(slot, TraceKind::Start);
            let done = self.now + duration;
            let seq = self.seq;
            self.seq += 1;
            self.events.push(Reverse((done, seq, slot)));
        }
    }

    /// Duration of one firing: the actor's execution time, optionally
    /// jittered uniformly within ±spread (mean preserved, minimum 1 cycle).
    fn firing_duration(&mut self, slot: Slot) -> u64 {
        let tau = self.actors[slot].execution_time;
        let (Some(rng), Some(jitter)) = (&mut self.jitter_rng, self.config.jitter) else {
            return tau;
        };
        use rand::Rng;
        let spread = u64::from(jitter.spread_percent.min(100));
        if spread == 0 {
            return tau;
        }
        // Uniform on [τ·(100−s), τ·(100+s)] / 100, rounded to cycles.
        let lo = tau * (100 - spread);
        let hi = tau * (100 + spread);
        let scaled = rng.gen_range(lo..=hi);
        ((scaled + 50) / 100).max(1)
    }

    fn record(&mut self, slot: Slot, kind: TraceKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: self.now,
                node: self.actors[slot].node,
                app: self.actors[slot].app,
                actor: self.actors[slot].actor,
                kind,
            });
        }
    }

    /// Runs to the configured horizon and returns the collected metrics.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no event remains before the horizon (a
    /// correctly validated spec cannot deadlock, but inflated or hand-built
    /// graphs might).
    pub fn run(mut self) -> Result<SimResult, SimError> {
        // Initial requests and grants.
        for slot in 0..self.actors.len() {
            self.request_if_enabled(slot);
        }
        for node in 0..self.nodes.len() {
            self.grant(node);
        }

        while let Some(Reverse((time, _, slot))) = self.events.pop() {
            if time > self.config.horizon {
                self.now = self.config.horizon;
                break;
            }
            self.now = time;
            self.events_processed += 1;

            // Complete the firing: produce tokens, release the node.
            let app_id = self.actors[slot].app;
            let actor = self.actors[slot].actor;
            let node = self.actors[slot].node.index();
            let app_idx = self.app_index(app_id);
            {
                let tokens = &mut self.apps[app_idx].1.tokens;
                for &(ch, amount) in &self.actors[slot].outputs {
                    tokens[ch] += amount;
                }
            }
            self.actors[slot].state = ActorState::Idle;
            self.nodes[node].busy = false;
            self.record(slot, TraceKind::Complete);

            self.metrics[app_idx].record_completion(actor, self.now);

            // Newly enabled actors of the same application (token-driven),
            // plus the completing actor itself.
            let candidate_slots: Vec<Slot> = self.apps[app_idx].1.slots.clone();
            for s in candidate_slots {
                self.request_if_enabled(s);
            }

            // Grant the released node and any node that received requests.
            for n in 0..self.nodes.len() {
                self.grant(n);
            }
        }

        if self.events.is_empty() && self.now < self.config.horizon {
            // Nothing in flight and nothing enabled: deadlock (all actors
            // idle and unable to fire).
            let any_queued = self.actors.iter().any(|a| a.state != ActorState::Idle);
            if !any_queued {
                return Err(SimError::Deadlock { time: self.now });
            }
        }

        let actor_stats = self
            .actors
            .iter()
            .zip(&self.actor_stats)
            .map(|(inst, stats)| ((inst.app, inst.actor), *stats))
            .collect();
        Ok(SimResult::new(
            self.use_case,
            self.config,
            self.now.min(self.config.horizon),
            self.events_processed,
            self.metrics,
            actor_stats,
            self.node_stats,
            self.trace,
            self.spec,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{Application, Mapping};
    use sdf::figure2_graphs;

    fn figure2_spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    #[test]
    fn isolated_app_achieves_isolation_period() {
        let spec = figure2_spec();
        let sim = Simulation::new(
            &spec,
            UseCase::single(AppId(0)),
            SimConfig::with_horizon(30_000),
        )
        .unwrap();
        let result = sim.run().unwrap();
        let m = result.app(AppId(0)).unwrap();
        assert!((m.average_period().unwrap() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn contended_period_between_isolation_and_serialised() {
        // Paper Section 3.1: A and B contending achieve period 300 (in this
        // rotational alignment) — at most the serial bound 600, at least the
        // isolation 300.
        let spec = figure2_spec();
        let sim =
            Simulation::new(&spec, UseCase::full(2), SimConfig::with_horizon(60_000)).unwrap();
        let result = sim.run().unwrap();
        for id in [AppId(0), AppId(1)] {
            let p = result.app(id).unwrap().average_period().unwrap();
            assert!(p >= 300.0 - 1e-9, "{id}: {p}");
            assert!(p <= 600.0 + 1e-9, "{id}: {p}");
        }
    }

    #[test]
    fn determinism() {
        let spec = figure2_spec();
        let run = || {
            Simulation::new(&spec, UseCase::full(2), SimConfig::with_horizon(50_000))
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.app(AppId(0)).unwrap().iteration_times(),
            b.app(AppId(0)).unwrap().iteration_times()
        );
    }

    #[test]
    fn unknown_app_rejected() {
        let spec = figure2_spec();
        let err =
            Simulation::new(&spec, UseCase::single(AppId(7)), SimConfig::default()).unwrap_err();
        assert_eq!(err, SimError::UnknownApplication(AppId(7)));
    }

    #[test]
    fn non_integer_time_rejected() {
        let (a, _) = figure2_graphs();
        let frac = a.with_execution_times(&[
            sdf::Rational::new(50, 3),
            sdf::Rational::integer(50),
            sdf::Rational::integer(100),
        ]);
        let spec = SystemSpec::builder()
            .application(Application::new("A", frac).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap();
        let err =
            Simulation::new(&spec, UseCase::single(AppId(0)), SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::NonIntegerExecutionTime { .. }));
    }

    #[test]
    fn static_priority_policy_runs() {
        let spec = figure2_spec();
        let cfg = SimConfig {
            horizon: 50_000,
            policy: ArbitrationPolicy::StaticPriority,
            ..Default::default()
        };
        let result = Simulation::new(&spec, UseCase::full(2), cfg)
            .unwrap()
            .run()
            .unwrap();
        // Under static priority, app A (lower ids) is favoured: its period
        // must not exceed app B's.
        let pa = result.app(AppId(0)).unwrap().average_period().unwrap();
        let pb = result.app(AppId(1)).unwrap().average_period().unwrap();
        assert!(pa <= pb + 1e-9);
    }

    #[test]
    fn jitter_preserves_mean_period() {
        // ±30% uniform jitter keeps the mean execution times, so the
        // average period stays near the deterministic one.
        let spec = figure2_spec();
        let mut cfg = SimConfig::with_horizon(300_000);
        cfg.jitter = Some(crate::config::JitterConfig {
            spread_percent: 30,
            seed: 99,
        });
        let jittered = Simulation::new(&spec, UseCase::single(AppId(0)), cfg)
            .unwrap()
            .run()
            .unwrap();
        let p = jittered.app(AppId(0)).unwrap().average_period().unwrap();
        assert!((p - 300.0).abs() / 300.0 < 0.05, "jittered period {p}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let spec = figure2_spec();
        let mut cfg = SimConfig::with_horizon(50_000);
        cfg.jitter = Some(crate::config::JitterConfig {
            spread_percent: 50,
            seed: 7,
        });
        let run = |cfg| {
            Simulation::new(&spec, UseCase::full(2), cfg)
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(
            a.app(AppId(0)).unwrap().iteration_times(),
            b.app(AppId(0)).unwrap().iteration_times()
        );
        let mut other = cfg;
        other.jitter = Some(crate::config::JitterConfig {
            spread_percent: 50,
            seed: 8,
        });
        let c = run(other);
        assert_ne!(
            a.app(AppId(0)).unwrap().iteration_times(),
            c.app(AppId(0)).unwrap().iteration_times(),
            "different seeds must differ"
        );
    }

    #[test]
    fn queueing_stats_recorded() {
        let spec = figure2_spec();
        let result = Simulation::new(&spec, UseCase::full(2), SimConfig::with_horizon(60_000))
            .unwrap()
            .run()
            .unwrap();
        // Every actor fired; total wait is positive somewhere (contention).
        let mut any_wait = false;
        for stats in result.all_actor_stats().values() {
            assert!(stats.requests > 0);
            any_wait |= stats.total_wait > 0;
        }
        assert!(any_wait, "two apps per node must queue at least once");
        // Node utilization is in (0, 1] and busy time ≤ end time.
        for n in result.node_stats() {
            assert!(n.grants > 0);
            assert!(n.busy_time <= result.end_time());
            let u = n.utilization(result.end_time());
            assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        }
    }

    #[test]
    fn isolated_actor_never_waits() {
        let spec = figure2_spec();
        let result = Simulation::new(
            &spec,
            UseCase::single(AppId(0)),
            SimConfig::with_horizon(30_000),
        )
        .unwrap()
        .run()
        .unwrap();
        for stats in result.all_actor_stats().values() {
            assert_eq!(stats.total_wait, 0, "no contention, no waiting");
            assert_eq!(stats.mean_wait(), Some(0.0));
        }
    }

    #[test]
    fn error_display() {
        assert!(SimError::Deadlock { time: 5 }.to_string().contains('5'));
        assert!(SimError::UnknownApplication(AppId(1))
            .to_string()
            .contains("app#1"));
    }
}
