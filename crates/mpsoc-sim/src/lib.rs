//! # mpsoc-sim — multi-application MPSoC simulator
//!
//! A deterministic discrete-event simulator executing several SDF
//! applications on shared processing nodes with **non-preemptive**
//! arbitration — this reproduction's substitute for the POOSL simulations
//! the paper uses as ground truth ("Simulations were performed using POOSL
//! to give actual performance achieved for each use-case", Section 5).
//!
//! The simulator exercises exactly the mechanism the probabilistic model of
//! the `contention` crate abstracts: actors of independent applications
//! arrive at shared nodes at times governed by their own graphs' token flow
//! and queue for the resource without any imposed order.
//!
//! # Quick start
//!
//! ```
//! use mpsoc_sim::{simulate, SimConfig};
//! use platform::{AppId, Application, Mapping, SystemSpec, UseCase};
//! use sdf::figure2_graphs;
//!
//! let (a, b) = figure2_graphs();
//! let spec = SystemSpec::builder()
//!     .application(Application::new("A", a)?)
//!     .application(Application::new("B", b)?)
//!     .mapping(Mapping::by_actor_index(3))
//!     .build()?;
//!
//! let result = simulate(&spec, UseCase::full(2), SimConfig::with_horizon(60_000))?;
//! let period = result.app(AppId(0)).unwrap().average_period().unwrap();
//! assert!(period >= 300.0); // never faster than isolation
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod trace;

pub use config::{ArbitrationPolicy, JitterConfig, SimConfig};
pub use engine::{SimError, Simulation};
pub use metrics::{ActorStats, AppMetrics, NodeStats, SimResult};

use platform::{SystemSpec, UseCase};

/// Simulates `use_case` on `spec` — convenience wrapper around
/// [`Simulation::new`] + [`Simulation::run`].
///
/// # Errors
///
/// See [`Simulation::new`] and [`Simulation::run`].
///
/// # Examples
///
/// See the [crate documentation](crate).
pub fn simulate(
    spec: &SystemSpec,
    use_case: UseCase,
    config: SimConfig,
) -> Result<SimResult, SimError> {
    Simulation::new(spec, use_case, config)?.run()
}
