//! Seeded fleet workload driver — the engine behind `probcon fleet-bench`
//! and the deterministic-replay integration tests.
//!
//! [`seeded_fleet_requests`] produces a deterministic
//! admit/release/rebalance/estimate stream for a workload spec;
//! [`run_fleet_stack`] drains it through **any**
//! [`AdmissionService`] stack layered over a [`FleetManager`] on a worker
//! pool (single-threaded runs are fully deterministic, which is what the
//! replay tests record), and [`run_fleet_requests`] is the bare-fleet
//! convenience. Every decision the run makes lands in the fleet's journal,
//! including the final drain of still-held residents, so a recorded
//! journal always ends on an empty fleet.

use crate::cache::lock;
use crate::fleet::{FleetManager, FleetSnapshot};
use crate::service::{AdmissionDecision, AdmissionRequest, AdmissionService, ServiceSnapshot};
use contention::Method;
use platform::{AppId, SystemSpec, UseCase};
use sdf::Rational;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of fleet work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetRequest {
    /// Admit an instance of the spec's application `app_index`.
    Admit {
        /// Index of the application in the workload spec.
        app_index: usize,
        /// Required minimum throughput, if any.
        required_throughput: Option<Rational>,
        /// Affinity tag steering [`RoutingPolicy::Affinity`](crate::RoutingPolicy::Affinity).
        affinity: Option<String>,
    },
    /// Release the oldest still-held resident (no-op when none).
    Release,
    /// Run one fleet rebalancing pass.
    Rebalance,
    /// Estimate all periods of a use-case through the stack (served by a
    /// [`Cached`](crate::Cached) layer when one is present).
    Estimate {
        /// Active-application mask.
        use_case: UseCase,
        /// Estimation method.
        method: Method,
    },
}

/// Deterministic seeded request stream with a fleet-bench-shaped mix
/// (≈45 % admit, 30 % release, 10 % rebalance, 15 % estimate). Half the
/// admissions carry a throughput contract at 60 % of isolation; half carry
/// an affinity tag `uc{app_index % groups}` matching
/// [`FleetConfig::uniform`](crate::FleetConfig::uniform). Estimates use
/// [`Method::Composability`] — the sign-off default, so
/// [`Cached::warm_from_signoff`](crate::Cached::warm_from_signoff) covers
/// them.
pub fn seeded_fleet_requests(
    spec: &SystemSpec,
    groups: usize,
    count: usize,
    seed: u64,
) -> Vec<FleetRequest> {
    use rand::{rngs::StdRng, RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = move || rng.next_u64();
    let apps = spec.application_count();
    let groups = groups.max(1);
    (0..count)
        .map(|_| {
            let roll = next() % 100;
            if roll < 45 {
                let app_index = next() as usize % apps;
                let required_throughput = if next() % 2 == 0 {
                    Some(
                        spec.application(AppId(app_index)).isolation_throughput()
                            * Rational::new(3, 5),
                    )
                } else {
                    None
                };
                let affinity = if next() % 2 == 0 {
                    Some(format!("uc{}", app_index % groups))
                } else {
                    None
                };
                FleetRequest::Admit {
                    app_index,
                    required_throughput,
                    affinity,
                }
            } else if roll < 75 {
                FleetRequest::Release
            } else if roll < 85 {
                FleetRequest::Rebalance
            } else {
                let mask = next() % ((1u64 << apps.min(20)) - 1) + 1;
                FleetRequest::Estimate {
                    use_case: UseCase::from_mask(mask),
                    method: Method::Composability,
                }
            }
        })
        .collect()
}

/// Outcome counts and fleet state of one executed request stream.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// Requests executed.
    pub requests: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole stream.
    pub wall: Duration,
    /// Residents still held when the stream ended (before the drain).
    pub residents_at_end: usize,
    /// Fleet state after the final drain (journal totals include the drain
    /// releases). `None` when the run drove a service with no local fleet
    /// — e.g. a [`RemoteClient`](crate::RemoteClient), whose fleet lives in
    /// another process and shows up in [`stack`](Self::stack) instead.
    pub snapshot: Option<FleetSnapshot>,
    /// Final service-stack snapshot with per-layer metrics (cache hits,
    /// journal appends, latency counters, queue depth — whatever the
    /// layers in the driven stack surface).
    pub stack: ServiceSnapshot,
    /// Journal entries recorded by the run.
    pub journal_len: usize,
}

impl FleetBenchReport {
    /// Requests per second over the wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }

    /// Renders the metrics block printed by `probcon fleet-bench`: the
    /// per-group fleet table followed by the per-layer service table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests on {} threads in {:.3?}  ({:.1} req/s), \
             {} residents at end, {} journal entries",
            self.requests,
            self.threads,
            self.wall,
            self.throughput(),
            self.residents_at_end,
            self.journal_len,
        );
        if let Some(snapshot) = &self.snapshot {
            out.push_str(&snapshot.render());
        }
        out.push_str(&self.stack.render());
        out
    }
}

/// One periodic sample of a running stream's live telemetry — the points
/// of the trajectory `probcon fleet-bench --telemetry` writes out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryPoint {
    /// Milliseconds since the run started.
    pub t_ms: u64,
    /// Residents live at the sample.
    pub residents: u64,
    /// Admissions granted so far (cumulative).
    pub admitted: u64,
    /// Admissions rejected so far.
    pub rejected: u64,
    /// Admissions bounced for saturation so far.
    pub saturated: u64,
    /// Residents released so far.
    pub released: u64,
    /// Median admit latency (µs) over the whole run so far; 0 without a
    /// [`Metered`](crate::Metered) layer in the driven stack.
    pub admit_p50_us: u64,
    /// 99th-percentile admit latency (µs) so far.
    pub admit_p99_us: u64,
    /// 99.9th-percentile admit latency (µs) so far.
    pub admit_p999_us: u64,
    /// Per-connection fan-in at the sample, when the run drives several
    /// client connections (`probcon fleet-bench --connect
    /// --connections N`). Trailing `skip_none` field: trajectories from
    /// single-connection runs serialize unchanged.
    #[serde(skip_none)]
    pub connections: Option<Vec<ConnectionPoint>>,
}

/// One client connection's cumulative traffic inside a
/// [`TelemetryPoint`] — how the request stream fanned in across the
/// connection pool at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionPoint {
    /// Connection index within the run's pool.
    pub conn: u64,
    /// Request frames this connection has sent.
    pub requests_sent: u64,
    /// Responses it has received.
    pub responses: u64,
    /// Requests failed by transport errors.
    pub transport_errors: u64,
    /// Requests in flight at the sample.
    pub pending: u64,
}

/// Reads the per-connection fan-in for one [`TelemetryPoint`]; `None`
/// when the run has no connection pool to sample.
pub type ConnectionSampler<'a> = &'a (dyn Fn() -> Vec<ConnectionPoint> + Sync);

impl TelemetryPoint {
    fn sample(
        service: &dyn AdmissionService,
        start: Instant,
        connections: Option<ConnectionSampler<'_>>,
    ) -> TelemetryPoint {
        let telemetry = service.telemetry();
        let service = &telemetry.service;
        let admit = telemetry.histogram("metered", "admit");
        TelemetryPoint {
            t_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
            residents: service.residents as u64,
            admitted: service.admitted,
            rejected: service.rejected,
            saturated: service.saturated,
            released: service.released,
            admit_p50_us: admit.map_or(0, |h| h.p50()),
            admit_p99_us: admit.map_or(0, |h| h.p99()),
            admit_p999_us: admit.map_or(0, |h| h.p999()),
            connections: connections.map(|sample| sample()),
        }
    }
}

/// [`run_fleet_stack`] over the bare fleet (no middleware): admissions are
/// dispatched through the fleet's own [`AdmissionService`] implementation.
pub fn run_fleet_requests(
    fleet: &FleetManager,
    requests: Vec<FleetRequest>,
    threads: usize,
) -> FleetBenchReport {
    run_fleet_stack(fleet, fleet, requests, threads)
}

/// [`run_fleet_stack`] with a telemetry sampler: a side thread snapshots
/// the stack's live telemetry every `sample_every` while the workers
/// drain, closing the trajectory with one final post-drain point. The
/// sampler reads the same [`telemetry`](AdmissionService::telemetry)
/// surface `probcon top` polls, so the trajectory shows exactly what a
/// live observer would have seen.
pub fn run_fleet_stack_sampled(
    service: &dyn AdmissionService,
    fleet: &FleetManager,
    requests: Vec<FleetRequest>,
    threads: usize,
    sample_every: Duration,
) -> (FleetBenchReport, Vec<TelemetryPoint>) {
    run_stack_inner(
        service,
        Some(fleet),
        requests,
        threads,
        Some(sample_every),
        None,
    )
}

/// [`run_service_requests`] with a telemetry sampler — the fleetless
/// (e.g. [`RemoteClient`](crate::RemoteClient)) counterpart of
/// [`run_fleet_stack_sampled`].
pub fn run_service_requests_sampled(
    service: &dyn AdmissionService,
    requests: Vec<FleetRequest>,
    threads: usize,
    sample_every: Duration,
) -> (FleetBenchReport, Vec<TelemetryPoint>) {
    run_stack_inner(service, None, requests, threads, Some(sample_every), None)
}

/// [`run_service_requests_sampled`] with a per-connection fan-in
/// sampler: each trajectory point additionally carries one
/// [`ConnectionPoint`] per client connection, read through
/// `connections` — the engine behind
/// `probcon fleet-bench --connect --connections N --telemetry`.
pub fn run_service_requests_sampled_with(
    service: &dyn AdmissionService,
    requests: Vec<FleetRequest>,
    threads: usize,
    sample_every: Duration,
    connections: Option<ConnectionSampler<'_>>,
) -> (FleetBenchReport, Vec<TelemetryPoint>) {
    run_stack_inner(
        service,
        None,
        requests,
        threads,
        Some(sample_every),
        connections,
    )
}

/// [`run_fleet_stack`] for a service with **no local fleet** — a
/// [`RemoteClient`](crate::RemoteClient) or any other stack whose fleet
/// lives elsewhere. [`FleetRequest::Rebalance`] passes become snapshot
/// probes (rebalancing is a fleet operation the wire does not carry), and
/// the report's [`snapshot`](FleetBenchReport::snapshot) is `None`; the
/// fleet's own counters still arrive through the stack snapshot's layers.
pub fn run_service_requests(
    service: &dyn AdmissionService,
    requests: Vec<FleetRequest>,
    threads: usize,
) -> FleetBenchReport {
    run_stack_inner(service, None, requests, threads, None, None).0
}

/// Executes `requests` against `service` — any [`AdmissionService`] stack
/// layered over `fleet` — on `threads` workers and reports the run's
/// metrics. Admissions, releases and estimates go through the stack;
/// rebalance passes go to the fleet directly (rebalancing is a fleet
/// operation, not a service one). Residents admitted during the run are
/// held in a shared pool (drained oldest-first by `Release` requests) and
/// all released when the run ends, so the journal closes on an empty
/// fleet. With `threads == 1` the run — and therefore the journal — is
/// fully deterministic.
pub fn run_fleet_stack(
    service: &dyn AdmissionService,
    fleet: &FleetManager,
    requests: Vec<FleetRequest>,
    threads: usize,
) -> FleetBenchReport {
    run_stack_inner(service, Some(fleet), requests, threads, None, None).0
}

fn run_stack_inner(
    service: &dyn AdmissionService,
    fleet: Option<&FleetManager>,
    requests: Vec<FleetRequest>,
    threads: usize,
    sample_every: Option<Duration>,
    connections: Option<ConnectionSampler<'_>>,
) -> (FleetBenchReport, Vec<TelemetryPoint>) {
    let threads = threads.max(1);
    let total = requests.len();
    let queue = Mutex::new(requests.into_iter().collect::<VecDeque<FleetRequest>>());
    let pool: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);
    let points: Mutex<Vec<TelemetryPoint>> = Mutex::new(Vec::new());

    let start = Instant::now();
    let wall = std::thread::scope(|scope| {
        if let Some(interval) = sample_every {
            let interval = interval.max(Duration::from_millis(1));
            // Poll the stop flag at a finer grain than the sample interval
            // so a finished run is not held open for a whole period.
            let tick = interval.min(Duration::from_millis(5));
            let done = &done;
            let points = &points;
            scope.spawn(move || {
                let mut next_at = start + interval;
                while !done.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    if Instant::now() >= next_at {
                        lock(points).push(TelemetryPoint::sample(service, start, connections));
                        next_at += interval;
                    }
                }
                // Close the trajectory on the end state (pre-drain).
                lock(points).push(TelemetryPoint::sample(service, start, connections));
            });
        }
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let pool = &pool;
                scope.spawn(move || loop {
                    let Some(request) = lock(queue).pop_front() else {
                        return;
                    };
                    match request {
                        FleetRequest::Admit {
                            app_index,
                            required_throughput,
                            affinity,
                        } => {
                            // Analysis errors cannot occur for generator-valid
                            // specs; a saturated or rejected decision is already
                            // journaled and counted by the fleet.
                            let request = AdmissionRequest {
                                app_index,
                                required_throughput,
                                affinity,
                                target: None,
                                span: None,
                            };
                            if let Ok(AdmissionDecision::Admitted { resident, .. }) =
                                service.admit(&request)
                            {
                                lock(pool).push(resident);
                            }
                        }
                        FleetRequest::Release => {
                            let resident = {
                                let mut pool = lock(pool);
                                if pool.is_empty() {
                                    None
                                } else {
                                    Some(pool.remove(0))
                                }
                            };
                            if let Some(resident) = resident {
                                let _ = service.release(resident);
                            }
                        }
                        FleetRequest::Rebalance => match fleet {
                            Some(fleet) => {
                                fleet.rebalance();
                            }
                            // No local fleet: keep the stream shape by probing
                            // the stack instead (a cheap read, like rebalance
                            // evaluation on an already-balanced fleet).
                            None => {
                                let _ = service.snapshot();
                            }
                        },
                        FleetRequest::Estimate { use_case, method } => {
                            let _ = service.estimate(use_case, method);
                        }
                    }
                })
            })
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        let wall = start.elapsed();
        // Stop the sampler only after the workers are done so its final
        // point reflects the fully-executed stream.
        done.store(true, Ordering::Release);
        wall
    });

    let residents_at_end = lock(&pool).len();
    // Drain: journal a release for every still-held resident.
    for resident in lock(&pool).drain(..) {
        let _ = service.release(resident);
    }

    let stack = service.snapshot();
    let journal_len = match fleet {
        Some(fleet) => fleet.journal().len(),
        // Remote/fleetless stacks surface their journal length (if any)
        // through a layer counter instead.
        None => stack
            .counter("fleet", "journal_entries")
            .or_else(|| stack.counter("journaled", "entries"))
            .unwrap_or(0) as usize,
    };
    let report = FleetBenchReport {
        requests: total,
        threads,
        wall,
        residents_at_end,
        snapshot: fleet.map(FleetManager::snapshot),
        stack,
        journal_len,
    };
    (report, points.into_inner().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, RoutingPolicy};
    use crate::service::{Cached, Metered};
    use platform::{Application, Mapping};
    use sdf::figure2_graphs;

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    #[test]
    fn seeded_stream_deterministic_and_mixed() {
        let spec = spec();
        let a = seeded_fleet_requests(&spec, 4, 300, 11);
        let b = seeded_fleet_requests(&spec, 4, 300, 11);
        assert_eq!(a, b);
        assert_ne!(a, seeded_fleet_requests(&spec, 4, 300, 12));
        let admits = a
            .iter()
            .filter(|r| matches!(r, FleetRequest::Admit { .. }))
            .count();
        let rebalances = a
            .iter()
            .filter(|r| matches!(r, FleetRequest::Rebalance))
            .count();
        let estimates = a
            .iter()
            .filter(|r| matches!(r, FleetRequest::Estimate { .. }))
            .count();
        assert!((90..=210).contains(&admits), "{admits}");
        assert!((10..=70).contains(&rebalances), "{rebalances}");
        assert!((15..=90).contains(&estimates), "{estimates}");
        // Affinity tags stay within the group universe.
        for r in &a {
            if let FleetRequest::Admit {
                affinity: Some(tag),
                ..
            } = r
            {
                assert!(tag.starts_with("uc"), "{tag}");
            }
        }
    }

    #[test]
    fn run_drains_and_balances_books() {
        let spec = spec();
        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        let report = run_fleet_requests(&fleet, seeded_fleet_requests(&spec, 2, 120, 5), 1);
        assert_eq!(report.requests, 120);
        assert!(
            report.snapshot.as_ref().is_some_and(|s| s.admitted > 0),
            "{report:?}"
        );
        // Fully drained after the run; admits and releases balance.
        assert_eq!(fleet.resident_count(), 0);
        let snap = fleet.snapshot();
        assert_eq!(snap.admitted, snap.released);
        assert_eq!(report.journal_len, fleet.journal().len());
        let text = report.render();
        for needle in ["req/s", "journal entries", "fleet:", "admitted", "service:"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn sampled_run_records_a_monotone_trajectory() {
        let spec = spec();
        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        let stack = Metered::new(Cached::new(fleet.clone(), 32));
        let (report, points) = run_fleet_stack_sampled(
            &stack,
            &fleet,
            seeded_fleet_requests(&spec, 2, 400, 5),
            2,
            Duration::from_millis(1),
        );
        assert_eq!(report.requests, 400);
        // At least the closing point lands, and time never runs backwards.
        assert!(!points.is_empty());
        for pair in points.windows(2) {
            assert!(pair[0].t_ms <= pair[1].t_ms, "{points:?}");
            assert!(pair[0].admitted <= pair[1].admitted, "{points:?}");
        }
        let last = points.last().unwrap();
        assert!(last.admitted > 0, "{last:?}");
        assert!(last.admit_p999_us >= last.admit_p50_us, "{last:?}");
        // The trajectory serializes as JSON for --telemetry output.
        let json = serde_json::to_string(&points).unwrap();
        let back: Vec<TelemetryPoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, points);
    }

    #[test]
    fn stack_run_surfaces_layer_metrics_and_matches_bare_decisions() {
        let spec = spec();
        let requests = seeded_fleet_requests(&spec, 2, 120, 5);

        let bare = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        let _ = run_fleet_requests(&bare, requests.clone(), 1);

        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        let stack = Metered::new(Cached::new(fleet.clone(), 32));
        let report = run_fleet_stack(&stack, &fleet, requests, 1);

        // Middleware is decision-transparent: the journals agree event for
        // event with the bare run.
        assert_eq!(fleet.journal().events(), bare.journal().events());
        // ... and the stack surfaced cache + latency metrics.
        assert!(report.stack.counter("cached", "misses").unwrap_or(0) > 0);
        assert!(report.stack.counter("metered", "operations").unwrap_or(0) > 0);
        let text = report.render();
        for needle in ["cached", "metered", "hits"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
