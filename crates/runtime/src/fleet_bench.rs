//! Seeded fleet workload driver — the engine behind `probcon fleet-bench`
//! and the deterministic-replay integration tests.
//!
//! [`seeded_fleet_requests`] produces a deterministic admit/release/
//! rebalance stream for a workload spec; [`run_fleet_requests`] drains it
//! through a [`FleetManager`] on a worker pool (single-threaded runs are
//! fully deterministic, which is what the replay tests record). Every
//! decision the run makes lands in the fleet's journal, including the final
//! drain of still-held tickets, so a recorded journal always ends on an
//! empty fleet.

use crate::cache::lock;
use crate::fleet::{FleetAdmission, FleetManager, FleetSnapshot, FleetTicket};
use platform::{AppId, SystemSpec};
use sdf::Rational;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of fleet work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetRequest {
    /// Admit an instance of the spec's application `app_index`.
    Admit {
        /// Index of the application in the workload spec.
        app_index: usize,
        /// Required minimum throughput, if any.
        required_throughput: Option<Rational>,
        /// Affinity tag steering [`RoutingPolicy::Affinity`](crate::RoutingPolicy::Affinity).
        affinity: Option<String>,
    },
    /// Release the oldest still-held ticket (no-op when none).
    Release,
    /// Run one fleet rebalancing pass.
    Rebalance,
}

/// Deterministic seeded request stream with a fleet-bench-shaped mix
/// (≈50 % admit, 35 % release, 15 % rebalance). Half the admissions carry
/// a throughput contract at 60 % of isolation; half carry an affinity tag
/// `uc{app_index % groups}` matching [`FleetConfig::uniform`](crate::FleetConfig::uniform).
pub fn seeded_fleet_requests(
    spec: &SystemSpec,
    groups: usize,
    count: usize,
    seed: u64,
) -> Vec<FleetRequest> {
    use rand::{rngs::StdRng, RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = move || rng.next_u64();
    let apps = spec.application_count();
    let groups = groups.max(1);
    (0..count)
        .map(|_| {
            let roll = next() % 100;
            if roll < 50 {
                let app_index = next() as usize % apps;
                let required_throughput = if next() % 2 == 0 {
                    Some(
                        spec.application(AppId(app_index)).isolation_throughput()
                            * Rational::new(3, 5),
                    )
                } else {
                    None
                };
                let affinity = if next() % 2 == 0 {
                    Some(format!("uc{}", app_index % groups))
                } else {
                    None
                };
                FleetRequest::Admit {
                    app_index,
                    required_throughput,
                    affinity,
                }
            } else if roll < 85 {
                FleetRequest::Release
            } else {
                FleetRequest::Rebalance
            }
        })
        .collect()
}

/// Outcome counts and fleet state of one executed request stream.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// Requests executed.
    pub requests: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole stream.
    pub wall: Duration,
    /// Residents still held when the stream ended (before the drain).
    pub residents_at_end: usize,
    /// Fleet state after the final drain (journal totals include the drain
    /// releases).
    pub snapshot: FleetSnapshot,
    /// Journal entries recorded by the run.
    pub journal_len: usize,
}

impl FleetBenchReport {
    /// Requests per second over the wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }

    /// Renders the metrics block printed by `probcon fleet-bench`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests on {} threads in {:.3?}  ({:.1} req/s), \
             {} residents at end, {} journal entries",
            self.requests,
            self.threads,
            self.wall,
            self.throughput(),
            self.residents_at_end,
            self.journal_len,
        );
        out.push_str(&self.snapshot.render());
        out
    }
}

/// Executes `requests` against `fleet` on `threads` workers and reports the
/// run's metrics. Tickets admitted during the run are held in a shared pool
/// (drained oldest-first by `Release` requests) and all released when the
/// run ends, so the journal closes on an empty fleet. With `threads == 1`
/// the run — and therefore the journal — is fully deterministic.
pub fn run_fleet_requests(
    fleet: &FleetManager,
    requests: Vec<FleetRequest>,
    threads: usize,
) -> FleetBenchReport {
    let threads = threads.max(1);
    let total = requests.len();
    let queue = Mutex::new(requests.into_iter().collect::<VecDeque<FleetRequest>>());
    let pool: Mutex<Vec<FleetTicket>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let pool = &pool;
            scope.spawn(move || loop {
                let Some(request) = lock(queue).pop_front() else {
                    return;
                };
                match request {
                    FleetRequest::Admit {
                        app_index,
                        required_throughput,
                        affinity,
                    } => {
                        // Analysis errors cannot occur for generator-valid
                        // specs; a saturated or rejected decision is already
                        // journaled and counted by the fleet.
                        if let Ok(FleetAdmission::Admitted(ticket)) =
                            fleet.admit(app_index, required_throughput, affinity.as_deref())
                        {
                            lock(pool).push(ticket);
                        }
                    }
                    FleetRequest::Release => {
                        let ticket = {
                            let mut pool = lock(pool);
                            if pool.is_empty() {
                                None
                            } else {
                                Some(pool.remove(0))
                            }
                        };
                        if let Some(ticket) = ticket {
                            ticket.release();
                        }
                    }
                    FleetRequest::Rebalance => {
                        fleet.rebalance();
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    let residents_at_end = fleet.resident_count();
    // Drain: journal a release for every still-held ticket.
    lock(&pool).clear();

    FleetBenchReport {
        requests: total,
        threads,
        wall,
        residents_at_end,
        snapshot: fleet.snapshot(),
        journal_len: fleet.journal().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, RoutingPolicy};
    use platform::{Application, Mapping};
    use sdf::figure2_graphs;

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    #[test]
    fn seeded_stream_deterministic_and_mixed() {
        let spec = spec();
        let a = seeded_fleet_requests(&spec, 4, 300, 11);
        let b = seeded_fleet_requests(&spec, 4, 300, 11);
        assert_eq!(a, b);
        assert_ne!(a, seeded_fleet_requests(&spec, 4, 300, 12));
        let admits = a
            .iter()
            .filter(|r| matches!(r, FleetRequest::Admit { .. }))
            .count();
        let rebalances = a
            .iter()
            .filter(|r| matches!(r, FleetRequest::Rebalance))
            .count();
        assert!((90..=210).contains(&admits), "{admits}");
        assert!((15..=90).contains(&rebalances), "{rebalances}");
        // Affinity tags stay within the group universe.
        for r in &a {
            if let FleetRequest::Admit {
                affinity: Some(tag),
                ..
            } = r
            {
                assert!(tag.starts_with("uc"), "{tag}");
            }
        }
    }

    #[test]
    fn run_drains_and_balances_books() {
        let spec = spec();
        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(2, 1, 3, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        let report = run_fleet_requests(&fleet, seeded_fleet_requests(&spec, 2, 120, 5), 1);
        assert_eq!(report.requests, 120);
        assert!(report.snapshot.admitted > 0, "{report:?}");
        // Fully drained after the run; admits and releases balance.
        assert_eq!(fleet.resident_count(), 0);
        let snap = fleet.snapshot();
        assert_eq!(snap.admitted, snap.released);
        assert_eq!(report.journal_len, fleet.journal().len());
        let text = report.render();
        for needle in ["req/s", "journal entries", "fleet:", "admitted"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
