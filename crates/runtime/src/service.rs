//! The unified, layered admission-service API.
//!
//! Every online surface of this crate used to expose its own
//! request/response shape: [`ResourceManager`] returned tickets, the
//! [`FleetManager`] its own admission enum, caching and journaling were
//! bolted on *beside* the managers. This module turns them into **one
//! protocol with many channels**: a typed [`AdmissionRequest`] /
//! [`AdmissionDecision`] vocabulary and an [`AdmissionService`] trait that
//! both managers implement, plus tower-style middleware that composes via
//! generics:
//!
//! * [`Cached<S>`] — serves [`estimate`](AdmissionService::estimate)
//!   requests from an LRU [`EstimateCache`], with per-layer hit/miss
//!   metrics and [sign-off warming](Cached::warm_from_signoff);
//! * [`Journaled<S>`] — records every decision of *any* service into an
//!   append-only [`Journal`] replayable by
//!   [`JournalReplayer`](crate::JournalReplayer);
//! * [`Metered<S>`] — per-operation latency/throughput counters that used
//!   to be re-implemented by every driver.
//!
//! Layers compose in any order with equivalent decisions (`Cached` and
//! `Metered` are decision-transparent; `Journaled` only observes), so a
//! stack like `Metered<Cached<Journaled<FleetManager>>>` is built from
//! plain constructors and driven through `Box<dyn AdmissionService>` — the
//! [`FrontEnd`](crate::FrontEnd) event loop multiplexes thousands of
//! queued admissions over exactly this object.
//!
//! # Example
//!
//! ```
//! use platform::{Application, Mapping, SystemSpec};
//! use runtime::{
//!     AdmissionRequest, AdmissionService, Cached, FleetConfig, FleetManager, Journaled,
//!     RoutingPolicy,
//! };
//! use sdf::figure2_graphs;
//!
//! let (a, b) = figure2_graphs();
//! let spec = SystemSpec::builder()
//!     .application(Application::new("A", a)?)
//!     .application(Application::new("B", b)?)
//!     .mapping(Mapping::by_actor_index(3))
//!     .build()?;
//! let fleet = FleetManager::new(spec, FleetConfig::default())?;
//!
//! // Layer journal recording and estimate caching over the fleet; the
//! // stack is still one AdmissionService.
//! let stack = Cached::new(Journaled::new(fleet), 64);
//! let decision = stack.admit(&AdmissionRequest::new(0))?;
//! assert!(decision.is_admitted());
//! stack.release(decision.resident().expect("admitted"))?;
//!
//! let snapshot = stack.snapshot();
//! assert_eq!(snapshot.admitted, 1);
//! assert_eq!(snapshot.released, 1);
//! assert_eq!(snapshot.counter("journaled", "entries"), Some(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cache::{lock, CacheKey, EstimateCache};
use crate::fleet::{FleetAdmission, FleetError, FleetManager};
use crate::journal::{DecisionEvent, Journal, JournalHeader, JournalOutcome};
use crate::manager::{Admission, AdmitError, ResourceManager, Ticket};
use crate::metrics::LatencySummary;
use crate::telemetry::{
    HistogramRecorder, LatencyHistogram, SpanContext, SpanScope, TelemetrySnapshot, TraceEvent,
    TraceKind, TraceRecorder,
};
use contention::{AdmissionOutcome, ContentionError, Estimate, Method, Violation};
use experiments::signoff::SignOffReport;
use platform::{AppId, Application, NodeId, SystemSpec, UseCase};
use sdf::Rational;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One admission request, phrased against the service's workload spec.
///
/// Requests are *spec-relative*: they name the application by index, so the
/// same request stream can drive any [`AdmissionService`] — a single
/// manager, a fleet, or a middleware stack — without knowing how the
/// service instantiates and maps the application.
///
/// Serializable: the [`remote`](crate::remote) transport ships requests
/// between processes exactly as drivers phrase them.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionRequest {
    /// Index of the application in the service's workload spec (reduced
    /// modulo the application count).
    pub app_index: usize,
    /// Required minimum throughput, if the request carries a contract.
    pub required_throughput: Option<Rational>,
    /// Affinity tag steering tag-aware routing (ignored by services without
    /// affinity routing).
    pub affinity: Option<String>,
    /// Explicit admission domain (fleet group / manager shard) bypassing
    /// the service's routing; `None` lets the service route.
    pub target: Option<usize>,
    /// Causal span context minted at the outermost layer that saw the
    /// request (remote client / front-end); layers derive child spans
    /// from it. Trailing `skip_none` field: requests to and from peers
    /// that predate spans interop byte-identically on both codecs.
    #[serde(skip_none)]
    pub span: Option<SpanContext>,
}

impl AdmissionRequest {
    /// Request for an instance of application `app_index`, routed by the
    /// service, with no contract.
    pub fn new(app_index: usize) -> AdmissionRequest {
        AdmissionRequest {
            app_index,
            ..AdmissionRequest::default()
        }
    }

    /// Demands a minimum throughput.
    #[must_use]
    pub fn with_contract(mut self, required_throughput: Rational) -> AdmissionRequest {
        self.required_throughput = Some(required_throughput);
        self
    }

    /// Steers affinity-aware routing.
    #[must_use]
    pub fn with_affinity(mut self, tag: impl Into<String>) -> AdmissionRequest {
        self.affinity = Some(tag.into());
        self
    }

    /// Targets an explicit admission domain, bypassing routing.
    #[must_use]
    pub fn on(mut self, domain: usize) -> AdmissionRequest {
        self.target = Some(domain);
        self
    }

    /// Attaches an explicit span context (normally minted by the
    /// outermost layer, not by callers).
    #[must_use]
    pub fn with_span(mut self, span: SpanContext) -> AdmissionRequest {
        self.span = Some(span);
        self
    }
}

/// The shared decision vocabulary: what any [`AdmissionService`] answers.
///
/// This is the one decision enum the crate's previously divergent shapes
/// (`contention::AdmissionOutcome`, `runtime::Admission`,
/// `runtime::FleetAdmission`) convert into — see the `From` conversions —
/// and the only shape middleware layers and the
/// [`FrontEnd`](crate::FrontEnd) ever see.
///
/// Serializable: decisions cross the [`remote`](crate::remote) wire with
/// exact rational periods and full violation lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admitted: the service holds the capacity under `resident` until
    /// [`release`](AdmissionService::release)d.
    Admitted {
        /// Service-scoped resident id keying the later release.
        resident: u64,
        /// Admission domain (fleet group / manager shard) that decided.
        domain: usize,
        /// Period predicted for the new resident at admission time.
        predicted_period: Rational,
    },
    /// Rejected by throughput contracts; no capacity was consumed.
    Rejected {
        /// Admission domain that decided.
        domain: usize,
        /// Every violated requirement.
        violations: Vec<Violation>,
    },
    /// The routed domain had no free capacity; no capacity was consumed.
    Saturated {
        /// Admission domain that decided.
        domain: usize,
    },
}

impl AdmissionDecision {
    /// `true` iff admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admitted { .. })
    }

    /// The resident id, if admitted.
    pub fn resident(&self) -> Option<u64> {
        match self {
            AdmissionDecision::Admitted { resident, .. } => Some(*resident),
            _ => None,
        }
    }

    /// The admission domain that decided.
    pub fn domain(&self) -> usize {
        match self {
            AdmissionDecision::Admitted { domain, .. }
            | AdmissionDecision::Rejected { domain, .. }
            | AdmissionDecision::Saturated { domain } => *domain,
        }
    }
}

impl fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionDecision::Admitted {
                resident,
                domain,
                predicted_period,
            } => write!(
                f,
                "admitted #{resident} on domain {domain} (predicted period {predicted_period})"
            ),
            AdmissionDecision::Rejected { domain, violations } => {
                write!(
                    f,
                    "rejected on domain {domain} ({} violations)",
                    violations.len()
                )
            }
            AdmissionDecision::Saturated { domain } => write!(f, "saturated on domain {domain}"),
        }
    }
}

/// Conversion from the admission controller's outcome, given the domain
/// that ran the analysis.
impl From<(usize, &AdmissionOutcome)> for AdmissionDecision {
    fn from((domain, outcome): (usize, &AdmissionOutcome)) -> AdmissionDecision {
        match outcome {
            AdmissionOutcome::Admitted {
                id,
                predicted_periods,
            } => AdmissionDecision::Admitted {
                resident: id.0 as u64,
                domain,
                predicted_period: predicted_periods.get(id).copied().unwrap_or(Rational::ZERO),
            },
            AdmissionOutcome::Rejected { violations } => AdmissionDecision::Rejected {
                domain,
                violations: violations.clone(),
            },
        }
    }
}

/// Conversion from the fleet's admission shape (non-owning: the ticket
/// keeps the capacity).
impl From<&FleetAdmission> for AdmissionDecision {
    fn from(admission: &FleetAdmission) -> AdmissionDecision {
        match admission {
            FleetAdmission::Admitted(ticket) => AdmissionDecision::Admitted {
                resident: ticket.resident_id(),
                domain: ticket.group(),
                predicted_period: ticket.predicted_period(),
            },
            FleetAdmission::Rejected { group, violations } => AdmissionDecision::Rejected {
                domain: *group,
                violations: violations.clone(),
            },
            FleetAdmission::Saturated { group } => AdmissionDecision::Saturated { domain: *group },
        }
    }
}

/// Why a service operation failed outright (as opposed to deciding a
/// rejection or saturation — those are [`AdmissionDecision`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has no workload spec bound
    /// (see [`ResourceManager::bind_workload`]).
    NoWorkload,
    /// The resident id is not (or no longer) live on this service.
    UnknownResident(u64),
    /// The requested admission domain is out of range.
    UnknownDomain(usize),
    /// The service (or its front-end) was stopped before deciding.
    Stopped,
    /// A front-end submission queue was full.
    QueueFull,
    /// The configuration or an artefact was unusable (parse failures, …).
    Config(String),
    /// The underlying analysis failed; no decision was computed.
    Analysis(ContentionError),
    /// A remote transport failed before a decision arrived (disconnect,
    /// malformed frame, handshake refusal) — see [`crate::remote`]. The
    /// request may or may not have been decided by the far end.
    Transport(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoWorkload => write!(f, "service has no workload spec bound"),
            ServiceError::UnknownResident(r) => write!(f, "resident #{r} is not live"),
            ServiceError::UnknownDomain(d) => write!(f, "admission domain {d} out of range"),
            ServiceError::Stopped => write!(f, "service is stopped"),
            ServiceError::QueueFull => write!(f, "submission queue is full"),
            ServiceError::Config(e) => write!(f, "service configuration error: {e}"),
            ServiceError::Analysis(e) => write!(f, "analysis failure: {e}"),
            ServiceError::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContentionError> for ServiceError {
    fn from(e: ContentionError) -> Self {
        ServiceError::Analysis(e)
    }
}

/// Rate and quantile summary of one operation class on one layer,
/// surfaced in the [`ServiceSnapshot`] ops table. All fields are plain
/// integers so snapshots stay `Eq` and wire-serializable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRate {
    /// Operation class (`"admit"`, `"release"`, …).
    pub op: String,
    /// Operations recorded.
    pub count: u64,
    /// Operations per second over the layer's measurement window
    /// (since the previous snapshot for [`Metered`], since start-up
    /// otherwise), rounded.
    pub ops_per_sec: u64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency in microseconds.
    pub p999_us: u64,
    /// Maximum latency in microseconds.
    pub max_us: u64,
}

/// One middleware layer's own counters, surfaced through
/// [`AdmissionService::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMetrics {
    /// Layer name (`"manager"`, `"fleet"`, `"cached"`, `"journaled"`,
    /// `"metered"`, `"traced"`, `"front-end"`).
    pub layer: String,
    /// Ordered `(metric, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// Per-operation rate/quantile rows (empty on layers that do not
    /// time operations).
    pub ops: Vec<OpRate>,
}

impl LayerMetrics {
    /// Empty metrics for a named layer.
    pub fn new(layer: impl Into<String>) -> LayerMetrics {
        LayerMetrics {
            layer: layer.into(),
            counters: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Appends one counter.
    #[must_use]
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> LayerMetrics {
        self.counters.push((name.into(), value));
        self
    }

    /// Appends one per-operation rate row.
    #[must_use]
    pub fn op_rate(mut self, rate: OpRate) -> LayerMetrics {
        self.ops.push(rate);
        self
    }
}

/// Point-in-time state of a whole service stack: the base service's
/// utilisation/outcome totals plus one [`LayerMetrics`] entry per layer,
/// innermost first. Serializable, so a [`RemoteClient`](crate::remote)
/// surfaces the far end's layer table as its own inner layers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Live residents.
    pub residents: usize,
    /// Total resident capacity.
    pub capacity: usize,
    /// Admissions granted.
    pub admitted: u64,
    /// Admissions rejected by throughput contracts.
    pub rejected: u64,
    /// Admissions bounced for lack of capacity.
    pub saturated: u64,
    /// Residents released.
    pub released: u64,
    /// Per-layer metrics, innermost layer first.
    pub layers: Vec<LayerMetrics>,
}

impl ServiceSnapshot {
    /// Resident/capacity ratio.
    pub fn utilisation(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.residents as f64 / self.capacity as f64
        }
    }

    /// Looks up one layer counter by layer and metric name.
    pub fn counter(&self, layer: &str, name: &str) -> Option<u64> {
        self.layers
            .iter()
            .filter(|l| l.layer == layer)
            .flat_map(|l| l.counters.iter())
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Renders the consistent per-layer metrics table shared by
    /// `probcon serve-bench` and `probcon fleet-bench`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service: {}/{} residents ({:.0}% util), {} admitted, {} rejected, \
             {} saturated, {} released",
            self.residents,
            self.capacity,
            100.0 * self.utilisation(),
            self.admitted,
            self.rejected,
            self.saturated,
            self.released,
        );
        if self.layers.is_empty() {
            return out;
        }
        let _ = writeln!(out, "{:<12} {:<26} {:>14}", "layer", "metric", "value");
        for layer in &self.layers {
            for (name, value) in &layer.counters {
                let _ = writeln!(out, "{:<12} {:<26} {:>14}", layer.layer, name, value);
            }
        }
        if self.layers.iter().any(|l| !l.ops.is_empty()) {
            let _ = writeln!(
                out,
                "{:<12} {:<10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "layer", "op", "count", "ops/s", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"
            );
            for layer in &self.layers {
                for rate in &layer.ops {
                    let _ = writeln!(
                        out,
                        "{:<12} {:<10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                        layer.layer,
                        rate.op,
                        rate.count,
                        rate.ops_per_sec,
                        rate.p50_us,
                        rate.p90_us,
                        rate.p99_us,
                        rate.p999_us,
                        rate.max_us
                    );
                }
            }
        }
        out
    }
}

/// The unified admission-service abstraction (see the [module docs](self)).
///
/// Implementations decide **without blocking for capacity**: a full domain
/// answers [`AdmissionDecision::Saturated`] immediately (callers wanting
/// bounded waiting queue *submissions*, not decisions — that is the
/// [`FrontEnd`](crate::FrontEnd)'s job). Every method takes `&self`; all
/// implementations in this crate are thread-safe.
pub trait AdmissionService: Send + Sync {
    /// Decides one admission request.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when no decision could be computed; rejection and
    /// saturation are decisions, not errors.
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError>;

    /// Releases a resident admitted through this service.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownResident`] when not (or no longer) live.
    fn release(&self, resident: u64) -> Result<(), ServiceError>;

    /// Point-in-time utilisation/outcome summary of the whole stack, with
    /// per-layer metrics appended by every middleware layer.
    fn snapshot(&self) -> ServiceSnapshot;

    /// The workload spec requests index into (`None` when unbound).
    fn workload(&self) -> Option<&SystemSpec>;

    /// Estimates all per-application periods of `use_case` under `method`.
    ///
    /// The default implementation computes a fresh estimate from the
    /// workload spec; a [`Cached`] layer serves repeats from its LRU.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoWorkload`] / [`ServiceError::Analysis`].
    fn estimate(&self, use_case: UseCase, method: Method) -> Result<Arc<Estimate>, ServiceError> {
        let spec = self.workload().ok_or(ServiceError::NoWorkload)?;
        Ok(Arc::new(contention::estimate(spec, use_case, method)?))
    }

    /// Begins an admission without blocking the caller: the decision is
    /// delivered through the returned [`Completion`], which can be polled
    /// or waited on.
    ///
    /// The default implementation decides synchronously and returns an
    /// already-completed completion; the [`FrontEnd`](crate::FrontEnd)
    /// overrides this with a genuinely queued submission.
    fn submit(&self, request: AdmissionRequest) -> Completion {
        Completion::ready(self.admit(&request))
    }

    /// Live telemetry for the whole stack: the layered snapshot plus full
    /// per-op latency distributions and flight-recorder stats.
    ///
    /// The default implementation wraps [`snapshot`](Self::snapshot) with
    /// no distributions; instrumented layers ([`Metered`],
    /// [`Traced`](crate::Traced), [`FrontEnd`](crate::FrontEnd)) append
    /// their histograms, and a [`RemoteClient`](crate::RemoteClient)
    /// forwards the request over the wire.
    fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::from_service(self.snapshot())
    }

    /// Up to the last `limit` flight-recorder events, oldest first.
    ///
    /// Empty by default; a [`Traced`](crate::Traced) layer answers from
    /// its ring buffer, middleware forwards inward, and a
    /// [`RemoteClient`](crate::RemoteClient) fetches the far end's tail.
    fn trace_tail(&self, limit: usize) -> Vec<TraceEvent> {
        let _ = limit;
        Vec::new()
    }

    /// The stack's shared flight recorder, if one is present — how a
    /// server layer records transport spans (frame decode, dispatch)
    /// into the same ring as the decision layers. Middleware forwards
    /// inward; a [`Traced`](crate::Traced) layer answers its own.
    fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        None
    }
}

impl<S: AdmissionService + ?Sized> AdmissionService for Arc<S> {
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError> {
        (**self).admit(request)
    }

    fn release(&self, resident: u64) -> Result<(), ServiceError> {
        (**self).release(resident)
    }

    fn snapshot(&self) -> ServiceSnapshot {
        (**self).snapshot()
    }

    fn workload(&self) -> Option<&SystemSpec> {
        (**self).workload()
    }

    fn estimate(&self, use_case: UseCase, method: Method) -> Result<Arc<Estimate>, ServiceError> {
        (**self).estimate(use_case, method)
    }

    fn submit(&self, request: AdmissionRequest) -> Completion {
        (**self).submit(request)
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        (**self).telemetry()
    }

    fn trace_tail(&self, limit: usize) -> Vec<TraceEvent> {
        (**self).trace_tail(limit)
    }

    fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        (**self).trace_recorder()
    }
}

// ---------------------------------------------------------------------------
// Completions: the poll/wait handle for non-blocking submissions.
// ---------------------------------------------------------------------------

struct CompletionState<T> {
    slot: Mutex<Option<Result<T, ServiceError>>>,
    cond: Condvar,
    /// One-shot callback run when the result arrives, so event loops can
    /// be woken instead of parking a thread per completion.
    watcher: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl<T: fmt::Debug> fmt::Debug for CompletionState<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionState")
            .field("slot", &self.slot)
            .finish_non_exhaustive()
    }
}

/// A one-shot completion: the receiving half of
/// [`AdmissionService::submit`] (and of queued releases, which complete
/// with `()`).
///
/// Poll it ([`poll`](Completion::poll) / [`is_ready`](Completion::is_ready))
/// from an event loop, or block on [`wait`](Completion::wait). The result
/// can be read any number of times.
#[derive(Debug)]
pub struct Completion<T = AdmissionDecision> {
    state: Arc<CompletionState<T>>,
}

impl<T> Clone for Completion<T> {
    fn clone(&self) -> Self {
        Completion {
            state: Arc::clone(&self.state),
        }
    }
}

/// The fulfilling half of a pending [`Completion`]. Dropping a completer
/// without completing delivers [`ServiceError::Stopped`] — a submission can
/// never be silently lost.
#[derive(Debug)]
pub struct Completer<T = AdmissionDecision> {
    state: Arc<CompletionState<T>>,
    done: bool,
}

impl<T: Clone> Completion<T> {
    /// An already-decided completion.
    pub fn ready(result: Result<T, ServiceError>) -> Completion<T> {
        Completion {
            state: Arc::new(CompletionState {
                slot: Mutex::new(Some(result)),
                cond: Condvar::new(),
                watcher: Mutex::new(None),
            }),
        }
    }

    /// A pending completion and its fulfilling half.
    pub fn pending() -> (Completer<T>, Completion<T>) {
        let state = Arc::new(CompletionState {
            slot: Mutex::new(None),
            cond: Condvar::new(),
            watcher: Mutex::new(None),
        });
        (
            Completer {
                state: Arc::clone(&state),
                done: false,
            },
            Completion { state },
        )
    }

    /// `true` once the result arrived.
    pub fn is_ready(&self) -> bool {
        lock(&self.state.slot).is_some()
    }

    /// The result, if it arrived (non-blocking).
    pub fn poll(&self) -> Option<Result<T, ServiceError>> {
        lock(&self.state.slot).clone()
    }

    /// Blocks until the result arrives.
    pub fn wait(&self) -> Result<T, ServiceError> {
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .state
                .cond
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Registers a one-shot callback run exactly once when the result
    /// arrives (immediately, on this thread, if it already has). Event
    /// loops use this to be woken instead of parking a thread per
    /// completion — the callback should only signal (set a flag, write a
    /// wake pipe), never block. A second `watch` replaces an undelivered
    /// earlier callback.
    pub fn watch(&self, f: impl FnOnce() + Send + 'static) {
        // Hold the watcher lock across the slot check: `Completer::fill`
        // sets the slot *before* taking the watcher lock, so either we see
        // the slot filled here (run inline) or the filler sees our stored
        // callback (runs it after delivery) — exactly one side fires.
        let mut watcher = lock(&self.state.watcher);
        if lock(&self.state.slot).is_some() {
            drop(watcher);
            f();
        } else {
            *watcher = Some(Box::new(f));
        }
    }

    /// Blocks until the result arrives or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, ServiceError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .cond
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }
}

impl<T> Completer<T> {
    /// Delivers the result, waking every waiter.
    pub fn complete(mut self, result: Result<T, ServiceError>) {
        self.fill(result);
    }

    fn fill(&mut self, result: Result<T, ServiceError>) {
        if self.done {
            return;
        }
        self.done = true;
        let mut slot = lock(&self.state.slot);
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.state.cond.notify_all();
        // Fire a registered watcher outside both locks, so a callback that
        // itself drops completers or re-registers cannot deadlock.
        let watcher = lock(&self.state.watcher).take();
        if let Some(f) = watcher {
            f();
        }
    }
}

impl<T> Drop for Completer<T> {
    fn drop(&mut self) {
        self.fill(Err(ServiceError::Stopped));
    }
}

// ---------------------------------------------------------------------------
// Base implementations: ResourceManager, FleetManager.
// ---------------------------------------------------------------------------

/// Per-manager service bookkeeping: the bound workload spec and the
/// resident registry keying service releases.
#[derive(Debug, Default)]
pub(crate) struct ServiceState {
    pub(crate) spec: OnceLock<SystemSpec>,
    pub(crate) residents: Mutex<BTreeMap<u64, Ticket>>,
    pub(crate) next_resident: AtomicU64,
}

/// Fresh instance + node assignment of the spec's application `app_index`
/// (reduced modulo the application count).
pub(crate) fn instantiate(spec: &SystemSpec, app_index: usize) -> (Application, Vec<NodeId>) {
    let id = AppId(app_index % spec.application_count());
    let app = spec.application(id).clone();
    let assignment = app
        .graph()
        .actor_ids()
        .map(|actor| spec.node_of(id, actor))
        .collect();
    (app, assignment)
}

impl AdmissionService for ResourceManager {
    /// Admissions are routed to `request.target` (a shard index) or the
    /// least-loaded shard (a deterministic function of the resident mix, so
    /// all shards fill evenly and journaled decisions stay replayable), and
    /// never wait: a full shard answers [`AdmissionDecision::Saturated`].
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError> {
        let state = self.service_state();
        let spec = state.spec.get().ok_or(ServiceError::NoWorkload)?;
        let app_index = request.app_index % spec.application_count();
        let (app, assignment) = instantiate(spec, app_index);
        let shard = match request.target {
            Some(shard) if shard >= self.shard_count() => {
                return Err(ServiceError::UnknownDomain(shard))
            }
            Some(shard) => shard,
            None => self.least_loaded_shard(),
        };
        match self.admit_within(
            shard,
            app,
            &assignment,
            request.required_throughput,
            Some(Duration::ZERO),
        ) {
            Ok(Admission::Admitted(ticket)) => {
                let resident = state.next_resident.fetch_add(1, Ordering::Relaxed);
                let predicted_period = ticket.predicted_period().unwrap_or(Rational::ZERO);
                lock(&state.residents).insert(resident, ticket);
                Ok(AdmissionDecision::Admitted {
                    resident,
                    domain: shard,
                    predicted_period,
                })
            }
            Ok(Admission::Rejected { violations }) => Ok(AdmissionDecision::Rejected {
                domain: shard,
                violations,
            }),
            Err(AdmitError::Timeout) => Ok(AdmissionDecision::Saturated { domain: shard }),
            Err(AdmitError::Stopped) => Err(ServiceError::Stopped),
            Err(AdmitError::InvalidShard(s)) => Err(ServiceError::UnknownDomain(s)),
            Err(AdmitError::Analysis(e)) => Err(ServiceError::Analysis(e)),
        }
    }

    fn release(&self, resident: u64) -> Result<(), ServiceError> {
        let ticket = lock(&self.service_state().residents).remove(&resident);
        match ticket {
            Some(ticket) => {
                ticket.release();
                Ok(())
            }
            None => Err(ServiceError::UnknownResident(resident)),
        }
    }

    fn snapshot(&self) -> ServiceSnapshot {
        let metrics = self.metrics();
        ServiceSnapshot {
            residents: self.resident_count(),
            capacity: self.capacity(),
            admitted: metrics.admitted(),
            rejected: metrics.rejected(),
            saturated: metrics.timeouts(),
            released: metrics.released(),
            layers: vec![LayerMetrics::new("manager")
                .counter("shards", self.shard_count() as u64)
                .counter("stopped_rejections", metrics.stopped_rejections())
                .counter("analysis_errors", metrics.analysis_errors())
                .counter(
                    "mean_queue_wait_us",
                    metrics.mean_queue_wait().as_micros() as u64,
                )],
        }
    }

    fn workload(&self) -> Option<&SystemSpec> {
        self.service_state().spec.get()
    }
}

impl AdmissionService for FleetManager {
    /// Admissions go through the fleet's routing policy (or
    /// `request.target` as an explicit group) and are journaled by the
    /// fleet exactly like ticket-based admissions. When a flight recorder
    /// is [attached](FleetManager::attach_trace) and the request is
    /// traced, the decision is also recorded as the innermost
    /// [`TraceKind::FleetAdmit`] span.
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError> {
        let start = Instant::now();
        let result = match request.target {
            // Pass the affinity tag through even on targeted admissions:
            // it does not steer the decision (the target does), but the
            // journaled entry must carry it so replays re-record the
            // recorded stream byte for byte.
            Some(group) => self.admit_to_with_affinity(
                group,
                request.app_index,
                request.required_throughput,
                request.affinity.as_deref(),
            ),
            None => FleetManager::admit(
                self,
                request.app_index,
                request.required_throughput,
                request.affinity.as_deref(),
            ),
        };
        match result {
            Ok(admission) => {
                let decision = AdmissionDecision::from(&admission);
                if let FleetAdmission::Admitted(ticket) = admission {
                    // The fleet's resident registry keeps the capacity; the
                    // service path releases by id, not by RAII ticket.
                    ticket.forget();
                }
                if let Some(recorder) = self.attached_trace() {
                    if SpanScope::current().is_some() || request.span.is_some() {
                        recorder.record(
                            TraceEvent::new(TraceKind::FleetAdmit)
                                .app(request.app_index)
                                .domain(decision.domain())
                                .duration(start.elapsed()),
                        );
                    }
                }
                Ok(decision)
            }
            Err(FleetError::UnknownGroup(g)) => Err(ServiceError::UnknownDomain(g)),
            Err(FleetError::Admit(AdmitError::Stopped)) => Err(ServiceError::Stopped),
            Err(FleetError::Admit(AdmitError::Analysis(e))) => Err(ServiceError::Analysis(e)),
            Err(e) => Err(ServiceError::Config(e.to_string())),
        }
    }

    fn release(&self, resident: u64) -> Result<(), ServiceError> {
        if self.release_resident(resident) {
            Ok(())
        } else {
            Err(ServiceError::UnknownResident(resident))
        }
    }

    fn snapshot(&self) -> ServiceSnapshot {
        let snapshot = FleetManager::snapshot(self);
        ServiceSnapshot {
            residents: snapshot.residents,
            capacity: snapshot.capacity,
            admitted: snapshot.admitted,
            rejected: snapshot.rejected,
            saturated: snapshot.saturated,
            released: snapshot.released,
            layers: vec![LayerMetrics::new("fleet")
                .counter("groups", self.group_count() as u64)
                .counter("rebalances", snapshot.rebalances)
                .counter("resizes", snapshot.resizes)
                .counter("resize_refusals", snapshot.resize_refusals)
                .counter("journal_entries", self.journal().len() as u64)],
        }
    }

    fn workload(&self) -> Option<&SystemSpec> {
        Some(self.spec())
    }

    /// The base telemetry view plus a `"fleet-groups"` layer carrying each
    /// group's residents, capacity and utilisation — the per-group detail
    /// `probcon top` renders that the aggregate snapshot flattens away.
    fn telemetry(&self) -> TelemetrySnapshot {
        let mut telemetry = TelemetrySnapshot::from_service(AdmissionService::snapshot(self));
        let snapshot = FleetManager::snapshot(self);
        let mut groups = LayerMetrics::new("fleet-groups");
        for group in &snapshot.groups {
            groups = groups
                .counter(format!("{}_residents", group.name), group.residents as u64)
                .counter(format!("{}_capacity", group.name), group.capacity as u64)
                .counter(
                    format!("{}_util_percent", group.name),
                    group.utilisation_percent(),
                );
        }
        telemetry.service.layers.push(groups);
        telemetry
    }

    fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.attached_trace().cloned()
    }
}

// ---------------------------------------------------------------------------
// Middleware: Cached, Journaled, Metered.
// ---------------------------------------------------------------------------

/// Estimate-caching middleware: serves
/// [`estimate`](AdmissionService::estimate) requests from an LRU
/// [`EstimateCache`] keyed by (spec fingerprint, use-case mask, method),
/// passing admissions straight through — decisions are untouched in any
/// layer order.
///
/// The layer surfaces its own hit/miss/entry counters through
/// [`snapshot`](AdmissionService::snapshot) under the `"cached"` layer, and
/// can be pre-populated from a sign-off artefact with
/// [`warm_from_signoff`](Cached::warm_from_signoff).
#[derive(Debug)]
pub struct Cached<S> {
    inner: S,
    cache: EstimateCache,
    fingerprint: OnceLock<u64>,
    warmed: AtomicU64,
    trace: OnceLock<Arc<TraceRecorder>>,
}

impl<S: AdmissionService> Cached<S> {
    /// Caching layer retaining up to `capacity` estimates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: S, capacity: usize) -> Cached<S> {
        Cached {
            inner,
            cache: EstimateCache::new(capacity),
            fingerprint: OnceLock::new(),
            warmed: AtomicU64::new(0),
            trace: OnceLock::new(),
        }
    }

    /// Attaches a flight recorder: every estimate served afterwards is
    /// recorded as a [`TraceKind::Estimate`](crate::TraceKind)
    /// event with its cache hit/miss attribution. Attach the recorder of
    /// the stack's outer [`Traced`](crate::Traced) layer to see cache
    /// behaviour inline with decisions. The first attachment wins.
    pub fn attach_trace(&self, recorder: Arc<TraceRecorder>) {
        let _ = self.trace.set(recorder);
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The layer's estimate cache (for direct inspection).
    pub fn cache(&self) -> &EstimateCache {
        &self.cache
    }

    /// Estimates warmed in via [`warm_from_signoff`](Self::warm_from_signoff).
    pub fn warmed(&self) -> u64 {
        self.warmed.load(Ordering::Relaxed)
    }

    fn spec_fingerprint(&self) -> Option<u64> {
        if let Some(f) = self.fingerprint.get() {
            return Some(*f);
        }
        let spec = self.inner.workload()?;
        let f = EstimateCache::fingerprint(spec);
        Some(*self.fingerprint.get_or_init(|| f))
    }

    /// Pre-populates the cache from a sign-off artefact: every one of the
    /// `2ⁿ − 1` use-cases the report enumerated is estimated (with the
    /// report's method) and inserted **before traffic arrives**, so online
    /// estimate requests hit a warm cache. Warming bypasses the hit/miss
    /// counters — the reported hit rate describes traffic only.
    ///
    /// Returns the number of warmed entries.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] when the report's method does not parse,
    /// [`ServiceError::NoWorkload`] when the service has no spec, and any
    /// estimation failure. The report must describe the service's workload.
    pub fn warm_from_signoff(&self, report: &SignOffReport) -> Result<usize, ServiceError> {
        let method: Method = report.method.parse().map_err(ServiceError::Config)?;
        let fingerprint = self.spec_fingerprint().ok_or(ServiceError::NoWorkload)?;
        let mut warmed = 0usize;
        for use_case in UseCase::iter_all(report.apps.len()) {
            let estimate = self.inner.estimate(use_case, method)?;
            self.cache.insert(
                CacheKey {
                    fingerprint,
                    use_case_mask: use_case.mask(),
                    method,
                },
                estimate,
            );
            warmed += 1;
        }
        self.warmed.fetch_add(warmed as u64, Ordering::Relaxed);
        Ok(warmed)
    }

    fn layer(&self) -> LayerMetrics {
        LayerMetrics::new("cached")
            .counter("hits", self.cache.hits())
            .counter("misses", self.cache.misses())
            .counter("entries", self.cache.len() as u64)
            .counter("capacity", self.cache.capacity() as u64)
            .counter("warmed", self.warmed())
    }

    fn trace_estimate(&self, hit: bool, start: Instant) {
        if let Some(recorder) = self.trace.get() {
            recorder.record(
                TraceEvent::new(TraceKind::Estimate)
                    .cache(hit)
                    .duration(start.elapsed()),
            );
        }
    }
}

impl<S: AdmissionService> AdmissionService for Cached<S> {
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError> {
        self.inner.admit(request)
    }

    fn release(&self, resident: u64) -> Result<(), ServiceError> {
        self.inner.release(resident)
    }

    fn snapshot(&self) -> ServiceSnapshot {
        let mut snapshot = self.inner.snapshot();
        snapshot.layers.push(self.layer());
        snapshot
    }

    fn workload(&self) -> Option<&SystemSpec> {
        self.inner.workload()
    }

    fn estimate(&self, use_case: UseCase, method: Method) -> Result<Arc<Estimate>, ServiceError> {
        let start = Instant::now();
        let Some(fingerprint) = self.spec_fingerprint() else {
            return self.inner.estimate(use_case, method); // surfaces NoWorkload
        };
        let key = CacheKey {
            fingerprint,
            use_case_mask: use_case.mask(),
            method,
        };
        if let Some(hit) = self.cache.lookup(&key) {
            self.trace_estimate(true, start);
            return Ok(hit);
        }
        let estimate = self.inner.estimate(use_case, method)?;
        self.cache.insert(key, Arc::clone(&estimate));
        self.trace_estimate(false, start);
        Ok(estimate)
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        let mut telemetry = self.inner.telemetry();
        telemetry.service.layers.push(self.layer());
        telemetry
    }

    fn trace_tail(&self, limit: usize) -> Vec<TraceEvent> {
        self.inner.trace_tail(limit)
    }

    fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.inner.trace_recorder()
    }
}

/// Journal-recording middleware: appends every decision of *any* wrapped
/// service — not just fleets — to an append-only, checksummed
/// [`Journal`].
///
/// Decision and append happen under one internal lock, so the journal
/// order is a valid serialization of the decision order even under
/// concurrent submission — the property
/// [`JournalReplayer`](crate::JournalReplayer) rests on. (The lock
/// serializes decisions across domains; services needing per-domain
/// parallelism at scale keep their own internal journals, like the
/// [`FleetManager`] does.)
///
/// The recorded journal feeds more than verification: entries are stamped
/// with the appending thread's [`ClientScope`](crate::ClientScope) (how a
/// [`RemoteServer`](crate::RemoteServer) attributes decisions per
/// connection), and the capacity planner's [`PlanRun`](crate::PlanRun)
/// replays any recorded journal against hypothetical
/// [`FleetShape`](crate::FleetShape)s — stamp the shape fields with
/// [`with_header`](Self::with_header) so those consumers can rebuild the
/// recorded fleet.
#[derive(Debug)]
pub struct Journaled<S> {
    inner: S,
    journal: Journal,
    order: Mutex<()>,
}

impl<S: AdmissionService> Journaled<S> {
    /// Journaling layer with a default header.
    pub fn new(inner: S) -> Journaled<S> {
        Journaled::with_header(inner, JournalHeader::default())
    }

    /// Journaling layer with an explicit header (stamp the workload and
    /// shape fields so the journal file is self-contained for replay).
    pub fn with_header(inner: S, header: JournalHeader) -> Journaled<S> {
        Journaled {
            inner,
            journal: Journal::new(header),
            order: Mutex::new(()),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The layer's decision journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

impl<S: AdmissionService> AdmissionService for Journaled<S> {
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError> {
        let _order = lock(&self.order);
        let decision = self.inner.admit(request)?;
        let outcome = match &decision {
            AdmissionDecision::Admitted {
                resident,
                predicted_period,
                ..
            } => JournalOutcome::Admitted {
                resident: *resident,
                predicted_period: *predicted_period,
            },
            AdmissionDecision::Rejected { violations, .. } => JournalOutcome::Rejected {
                violations: violations.len() as u64,
            },
            AdmissionDecision::Saturated { .. } => JournalOutcome::Saturated,
        };
        self.journal.append(DecisionEvent::Admit {
            group: decision.domain() as u64,
            app_index: request.app_index as u64,
            required_throughput: request.required_throughput,
            outcome,
            affinity: request.affinity.clone(),
        });
        Ok(decision)
    }

    fn release(&self, resident: u64) -> Result<(), ServiceError> {
        let _order = lock(&self.order);
        self.inner.release(resident)?;
        self.journal.append(DecisionEvent::Release { resident });
        Ok(())
    }

    fn snapshot(&self) -> ServiceSnapshot {
        let mut snapshot = self.inner.snapshot();
        snapshot
            .layers
            .push(LayerMetrics::new("journaled").counter("entries", self.journal.len() as u64));
        snapshot
    }

    fn workload(&self) -> Option<&SystemSpec> {
        self.inner.workload()
    }

    fn estimate(&self, use_case: UseCase, method: Method) -> Result<Arc<Estimate>, ServiceError> {
        // Estimates change no state and are not journaled.
        self.inner.estimate(use_case, method)
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        let mut telemetry = self.inner.telemetry();
        telemetry
            .service
            .layers
            .push(LayerMetrics::new("journaled").counter("entries", self.journal.len() as u64));
        telemetry
    }

    fn trace_tail(&self, limit: usize) -> Vec<TraceEvent> {
        self.inner.trace_tail(limit)
    }

    fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.inner.trace_recorder()
    }
}

/// The operation classes a [`Metered`] layer samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOp {
    /// [`AdmissionService::admit`] calls.
    Admit,
    /// [`AdmissionService::release`] calls.
    Release,
    /// [`AdmissionService::estimate`] calls.
    Estimate,
    /// [`AdmissionService::snapshot`] calls (the cheap read probe).
    Snapshot,
}

const SERVICE_OPS: [ServiceOp; 4] = [
    ServiceOp::Admit,
    ServiceOp::Release,
    ServiceOp::Estimate,
    ServiceOp::Snapshot,
];

impl ServiceOp {
    fn index(self) -> usize {
        self as usize
    }

    /// Lower-case operation name used in layer metrics.
    pub fn name(self) -> &'static str {
        match self {
            ServiceOp::Admit => "admit",
            ServiceOp::Release => "release",
            ServiceOp::Estimate => "estimate",
            ServiceOp::Snapshot => "snapshot",
        }
    }
}

/// Latency/throughput middleware: samples the wall-clock latency of every
/// operation against the wrapped service into bounded
/// [`LatencyHistogram`]s and surfaces order
/// statistics (count, mean, p50…p999, max) per class — the counters
/// previously re-implemented by both `BatchExecutor` and the fleet bench
/// driver. Memory stays flat no matter how many operations are recorded
/// (the layer used to keep every raw sample forever).
#[derive(Debug)]
pub struct Metered<S> {
    inner: S,
    stats: [HistogramRecorder; 4],
    started: Instant,
    /// Interval window backing the per-op `ops/s since last snapshot`
    /// rates: instant and per-op counts at the previous `snapshot()`.
    probe: Mutex<(Instant, [u64; 4])>,
}

impl<S: AdmissionService> Metered<S> {
    /// Metering layer over `inner`.
    pub fn new(inner: S) -> Metered<S> {
        let started = Instant::now();
        Metered {
            inner,
            stats: Default::default(),
            started,
            probe: Mutex::new((started, [0; 4])),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Latency order statistics for one operation class, derived from the
    /// class's bounded histogram (quantiles carry ≤ 1/16 relative error;
    /// count, mean and max are exact).
    pub fn latency(&self, op: ServiceOp) -> LatencySummary {
        self.histogram(op).summary()
    }

    /// The full bounded latency distribution for one operation class.
    pub fn histogram(&self, op: ServiceOp) -> LatencyHistogram {
        self.stats[op.index()].snapshot()
    }

    /// Operations sampled across all classes.
    pub fn operations(&self) -> u64 {
        self.stats.iter().map(HistogramRecorder::count).sum()
    }

    /// Operations per second since the layer was created.
    pub fn throughput(&self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed == 0.0 {
            0.0
        } else {
            self.operations() as f64 / elapsed
        }
    }

    fn record<T>(&self, op: ServiceOp, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = f();
        self.stats[op.index()].record_duration(start.elapsed());
        result
    }

    /// The `"metered"` layer row: O(1) aggregate counters plus one
    /// [`OpRate`] per active class, whose `ops_per_sec` covers the window
    /// since the previous snapshot (advancing the window).
    fn layer(&self) -> LayerMetrics {
        let now = Instant::now();
        let counts: [u64; 4] = std::array::from_fn(|i| self.stats[i].count());
        let (last_instant, last_counts) = {
            let mut probe = lock(&self.probe);
            std::mem::replace(&mut *probe, (now, counts))
        };
        let window = now.saturating_duration_since(last_instant).as_secs_f64();
        let mut layer = LayerMetrics::new("metered")
            .counter("operations", counts.iter().sum())
            .counter("ops_per_sec", self.throughput() as u64);
        for op in SERVICE_OPS {
            let count = counts[op.index()];
            if count == 0 {
                continue;
            }
            let recorder = &self.stats[op.index()];
            layer = layer
                .counter(format!("{}_count", op.name()), count)
                .counter(
                    format!("{}_mean_us", op.name()),
                    recorder.sum_micros() / count,
                )
                .counter(format!("{}_max_us", op.name()), recorder.max_micros());
            let delta = count.saturating_sub(last_counts[op.index()]);
            let rate = if window > 0.0 {
                (delta as f64 / window).round() as u64
            } else {
                0
            };
            let hist = recorder.snapshot();
            layer = layer.op_rate(OpRate {
                op: op.name().to_string(),
                count,
                ops_per_sec: rate,
                p50_us: hist.p50(),
                p90_us: hist.p90(),
                p99_us: hist.p99(),
                p999_us: hist.p999(),
                max_us: hist.max_micros(),
            });
        }
        layer
    }
}

impl<S: AdmissionService> AdmissionService for Metered<S> {
    fn admit(&self, request: &AdmissionRequest) -> Result<AdmissionDecision, ServiceError> {
        self.record(ServiceOp::Admit, || self.inner.admit(request))
    }

    fn release(&self, resident: u64) -> Result<(), ServiceError> {
        self.record(ServiceOp::Release, || self.inner.release(resident))
    }

    fn snapshot(&self) -> ServiceSnapshot {
        let mut snapshot = self.record(ServiceOp::Snapshot, || self.inner.snapshot());
        snapshot.layers.push(self.layer());
        snapshot
    }

    fn workload(&self) -> Option<&SystemSpec> {
        self.inner.workload()
    }

    fn estimate(&self, use_case: UseCase, method: Method) -> Result<Arc<Estimate>, ServiceError> {
        self.record(ServiceOp::Estimate, || {
            self.inner.estimate(use_case, method)
        })
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        let mut telemetry = self.inner.telemetry();
        telemetry.service.layers.push(self.layer());
        for op in SERVICE_OPS {
            let hist = self.histogram(op);
            if !hist.is_empty() {
                telemetry.push_histogram("metered", op.name(), hist);
            }
        }
        telemetry
    }

    fn trace_tail(&self, limit: usize) -> Vec<TraceEvent> {
        self.inner.trace_tail(limit)
    }

    fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.inner.trace_recorder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, RoutingPolicy};
    use crate::manager::{QueueMode, ResourceManagerConfig};
    use platform::{Application, Mapping};
    use sdf::figure2_graphs;

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    fn bound_manager(shards: usize, capacity: usize) -> ResourceManager {
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards,
            capacity_per_shard: capacity,
            queue_mode: QueueMode::Fifo,
            admit_timeout: Some(Duration::from_millis(50)),
        });
        assert!(manager.bind_workload(spec()));
        manager
    }

    fn fleet(groups: usize, capacity: usize) -> FleetManager {
        FleetManager::new(
            spec(),
            FleetConfig::uniform(groups, 1, capacity, RoutingPolicy::LeastUtilised),
        )
        .unwrap()
    }

    #[test]
    fn request_builder_composes() {
        let request = AdmissionRequest::new(3)
            .with_contract(Rational::new(1, 400))
            .with_affinity("uc1")
            .on(2);
        assert_eq!(request.app_index, 3);
        assert_eq!(request.required_throughput, Some(Rational::new(1, 400)));
        assert_eq!(request.affinity.as_deref(), Some("uc1"));
        assert_eq!(request.target, Some(2));
    }

    #[test]
    fn manager_service_roundtrip() {
        let manager = bound_manager(1, 2);
        let decision = AdmissionService::admit(&manager, &AdmissionRequest::new(0)).unwrap();
        let AdmissionDecision::Admitted {
            resident,
            domain,
            predicted_period,
        } = decision
        else {
            panic!("first admission fits");
        };
        assert_eq!(domain, 0);
        assert!(predicted_period.is_positive());
        assert_eq!(manager.resident_count(), 1);
        manager.release(resident).unwrap();
        assert_eq!(manager.resident_count(), 0);
        assert_eq!(
            manager.release(resident).unwrap_err(),
            ServiceError::UnknownResident(resident)
        );
    }

    #[test]
    fn manager_service_saturates_and_validates_domain() {
        let manager = bound_manager(1, 1);
        let first = AdmissionService::admit(&manager, &AdmissionRequest::new(0).on(0)).unwrap();
        assert!(first.is_admitted());
        // Full shard: a service admission saturates instead of waiting.
        let second = AdmissionService::admit(&manager, &AdmissionRequest::new(1).on(0)).unwrap();
        assert_eq!(second, AdmissionDecision::Saturated { domain: 0 });
        assert_eq!(
            AdmissionService::admit(&manager, &AdmissionRequest::new(0).on(9)).unwrap_err(),
            ServiceError::UnknownDomain(9)
        );
        let snapshot = AdmissionService::snapshot(&manager);
        assert_eq!(snapshot.residents, 1);
        assert_eq!(snapshot.capacity, 1);
        assert_eq!(snapshot.admitted, 1);
        assert_eq!(snapshot.saturated, 1);
        assert_eq!(snapshot.counter("manager", "shards"), Some(1));
    }

    #[test]
    fn unbound_manager_requires_workload() {
        let manager = ResourceManager::new(ResourceManagerConfig::default());
        assert_eq!(
            AdmissionService::admit(&manager, &AdmissionRequest::new(0)).unwrap_err(),
            ServiceError::NoWorkload
        );
        assert!(manager.workload().is_none());
        assert!(manager
            .estimate(UseCase::full(2), Method::SECOND_ORDER)
            .is_err());
        // The first bind wins; rebinding is refused.
        assert!(manager.bind_workload(spec()));
        assert!(!manager.bind_workload(spec()));
        assert!(manager.workload().is_some());
    }

    #[test]
    fn fleet_service_roundtrip_and_conversions() {
        let f = FleetManager::new(
            spec(),
            FleetConfig::uniform(2, 1, 2, RoutingPolicy::Affinity),
        )
        .unwrap();
        let decision =
            AdmissionService::admit(&f, &AdmissionRequest::new(0).with_affinity("uc1")).unwrap();
        assert!(decision.is_admitted());
        assert_eq!(decision.domain(), 1); // affinity routes to the tagged group
        let resident = decision.resident().unwrap();
        assert_eq!(f.resident_count(), 1);

        // Contract rejection converts with its violations.
        let iso = spec().application(AppId(0)).isolation_throughput();
        let rejected =
            AdmissionService::admit(&f, &AdmissionRequest::new(0).on(1).with_contract(iso))
                .unwrap();
        assert!(matches!(
            rejected,
            AdmissionDecision::Rejected { domain: 1, .. }
        ));

        f.release(resident).unwrap();
        assert_eq!(f.resident_count(), 0);
        assert_eq!(
            f.release(resident).unwrap_err(),
            ServiceError::UnknownResident(resident)
        );
        // Admit + reject + release all landed in the fleet's own journal.
        assert_eq!(f.journal().len(), 3);
        assert_eq!(
            AdmissionService::snapshot(&f).counter("fleet", "journal_entries"),
            Some(3)
        );
    }

    #[test]
    fn decision_from_outcome_conversion() {
        let (a, _) = figure2_graphs();
        let mut ctrl = contention::AdmissionController::new();
        let outcome = ctrl
            .admit(
                Application::new("A", a).unwrap(),
                &[NodeId(0), NodeId(1), NodeId(2)],
                None,
            )
            .unwrap();
        let decision = AdmissionDecision::from((3usize, &outcome));
        assert_eq!(
            decision,
            AdmissionDecision::Admitted {
                resident: 0,
                domain: 3,
                predicted_period: Rational::integer(300),
            }
        );
        assert!(decision.to_string().contains("domain 3"));
    }

    #[test]
    fn cached_layer_is_decision_transparent_and_caches_estimates() {
        let bare = fleet(2, 2);
        let cached = Cached::new(fleet(2, 2), 16);

        let request = AdmissionRequest::new(0);
        assert_eq!(
            AdmissionService::admit(&bare, &request).unwrap(),
            cached.admit(&request).unwrap()
        );

        let uc = UseCase::full(2);
        let first = cached.estimate(uc, Method::SECOND_ORDER).unwrap();
        let second = cached.estimate(uc, Method::SECOND_ORDER).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cached.cache().hits(), cached.cache().misses()), (1, 1));
        let snapshot = cached.snapshot();
        assert_eq!(snapshot.counter("cached", "hits"), Some(1));
        assert_eq!(snapshot.counter("cached", "misses"), Some(1));
    }

    #[test]
    fn cached_warm_from_signoff_prepopulates_without_counting() {
        let cached = Cached::new(fleet(2, 4), 16);
        let report = experiments::signoff::sign_off(&spec(), Method::Composability, None).unwrap();
        let warmed = cached.warm_from_signoff(&report).unwrap();
        assert_eq!(warmed, 3); // 2² − 1 use-cases
        assert_eq!(cached.warmed(), 3);
        assert_eq!(cached.cache().len(), 3);
        // Warming bypassed the counters; the first traffic lookup hits.
        assert_eq!((cached.cache().hits(), cached.cache().misses()), (0, 0));
        cached
            .estimate(UseCase::full(2), Method::Composability)
            .unwrap();
        assert_eq!((cached.cache().hits(), cached.cache().misses()), (1, 0));
        // A garbage method name is a configuration error.
        let mut bad = report;
        bad.method = "bogus".to_string();
        assert!(matches!(
            cached.warm_from_signoff(&bad).unwrap_err(),
            ServiceError::Config(_)
        ));
    }

    #[test]
    fn journaled_layer_records_decisions_and_releases() {
        let journaled = Journaled::new(fleet(1, 1));
        let admitted = journaled.admit(&AdmissionRequest::new(0)).unwrap();
        let saturated = journaled.admit(&AdmissionRequest::new(1)).unwrap();
        assert!(matches!(saturated, AdmissionDecision::Saturated { .. }));
        journaled.release(admitted.resident().unwrap()).unwrap();
        let events = journaled.journal().events();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            &events[0],
            DecisionEvent::Admit {
                outcome: JournalOutcome::Admitted { .. },
                ..
            }
        ));
        assert!(matches!(
            &events[1],
            DecisionEvent::Admit {
                outcome: JournalOutcome::Saturated,
                ..
            }
        ));
        assert!(matches!(&events[2], DecisionEvent::Release { .. }));
        journaled.journal().verify().unwrap();
        // Failed releases journal nothing.
        assert!(journaled.release(99).is_err());
        assert_eq!(journaled.journal().len(), 3);
    }

    #[test]
    fn metered_layer_samples_every_class() {
        let metered = Metered::new(Cached::new(bound_manager(2, 4), 8));
        let decision = metered.admit(&AdmissionRequest::new(0)).unwrap();
        metered
            .estimate(UseCase::full(2), Method::Composability)
            .unwrap();
        let _probe = metered.snapshot();
        metered.release(decision.resident().unwrap()).unwrap();
        assert_eq!(metered.latency(ServiceOp::Admit).count, 1);
        assert_eq!(metered.latency(ServiceOp::Estimate).count, 1);
        assert_eq!(metered.latency(ServiceOp::Release).count, 1);
        assert!(metered.latency(ServiceOp::Snapshot).count >= 1);
        assert!(metered.operations() >= 4);
        assert!(!metered.histogram(ServiceOp::Admit).is_empty());
        let snapshot = metered.snapshot();
        assert_eq!(snapshot.counter("metered", "admit_count"), Some(1));
        // Every active class also surfaces an OpRate row.
        let metered_layer = snapshot
            .layers
            .iter()
            .find(|l| l.layer == "metered")
            .unwrap();
        assert!(metered_layer.ops.iter().any(|r| r.op == "admit"));
        // The stack renders the consistent per-layer table.
        let table = snapshot.render();
        for needle in [
            "service:",
            "layer",
            "cached",
            "metered",
            "hits",
            "admit_count",
            "p999_us",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
        // Telemetry carries the full distributions.
        let telemetry = metered.telemetry();
        assert!(telemetry.histogram("metered", "admit").is_some());
        assert!(telemetry.histogram("cached", "admit").is_none());
    }

    /// Golden-output test pinning the exact `ServiceSnapshot::render()`
    /// format (satellite of ISSUE 6) so the table stops drifting.
    #[test]
    fn snapshot_render_golden_output() {
        let snapshot = ServiceSnapshot {
            residents: 4,
            capacity: 8,
            admitted: 120,
            rejected: 5,
            saturated: 2,
            released: 116,
            layers: vec![
                LayerMetrics::new("fleet").counter("groups", 2),
                LayerMetrics::new("metered")
                    .counter("operations", 242)
                    .op_rate(OpRate {
                        op: "admit".to_string(),
                        count: 120,
                        ops_per_sec: 40,
                        p50_us: 210,
                        p90_us: 300,
                        p99_us: 480,
                        p999_us: 1200,
                        max_us: 1500,
                    }),
            ],
        };
        let expected = "\
service: 4/8 residents (50% util), 120 admitted, 5 rejected, 2 saturated, 116 released
layer        metric                              value
fleet        groups                                  2
metered      operations                            242
layer        op              count    ops/s   p50_us   p90_us   p99_us  p999_us   max_us
metered      admit             120       40      210      300      480     1200     1500
";
        assert_eq!(snapshot.render(), expected);
    }

    #[test]
    fn composition_order_is_equivalent() {
        let a = Cached::new(Journaled::new(fleet(2, 2)), 8);
        let b = Journaled::new(Cached::new(fleet(2, 2), 8));
        let bare = fleet(2, 2);
        let requests = [
            AdmissionRequest::new(0),
            AdmissionRequest::new(1).with_contract(Rational::new(1, 300)),
            AdmissionRequest::new(0).on(0),
            AdmissionRequest::new(1),
        ];
        for request in &requests {
            let expected = AdmissionService::admit(&bare, request).unwrap();
            assert_eq!(a.admit(request).unwrap(), expected);
            assert_eq!(b.admit(request).unwrap(), expected);
        }
        assert_eq!(a.inner().journal().events(), b.journal().events());
    }

    #[test]
    fn completion_poll_wait_and_drop_semantics() {
        let ready = Completion::ready(Ok(AdmissionDecision::Saturated { domain: 0 }));
        assert!(ready.is_ready());
        assert_eq!(
            ready.poll().unwrap().unwrap(),
            AdmissionDecision::Saturated { domain: 0 }
        );
        // The decision can be read repeatedly.
        assert_eq!(
            ready.wait().unwrap(),
            AdmissionDecision::Saturated { domain: 0 }
        );

        let (completer, completion) = Completion::pending();
        assert!(!completion.is_ready());
        assert!(completion.poll().is_none());
        assert!(completion.wait_timeout(Duration::from_millis(5)).is_none());
        let waiter = {
            let completion = completion.clone();
            std::thread::spawn(move || completion.wait())
        };
        completer.complete(Ok(AdmissionDecision::Saturated { domain: 7 }));
        assert_eq!(
            waiter.join().unwrap().unwrap(),
            AdmissionDecision::Saturated { domain: 7 }
        );

        // Dropping a completer without completing delivers Stopped.
        let (dropped, orphan) = Completion::<AdmissionDecision>::pending();
        drop(dropped);
        assert_eq!(orphan.wait().unwrap_err(), ServiceError::Stopped);
    }

    #[test]
    fn default_submit_completes_synchronously() {
        let manager = bound_manager(1, 2);
        let completion = manager.submit(AdmissionRequest::new(0));
        assert!(completion.is_ready());
        assert!(completion.wait().unwrap().is_admitted());
    }

    #[test]
    fn arc_dyn_stack_composes() {
        let stack: Arc<dyn AdmissionService> = Arc::new(Cached::new(fleet(2, 2), 8));
        let metered = Metered::new(Arc::clone(&stack));
        let decision = metered.admit(&AdmissionRequest::new(0)).unwrap();
        assert!(decision.is_admitted());
        assert!(metered.workload().is_some());
        metered.release(decision.resident().unwrap()).unwrap();
        fn is_send_sync<T: Send + Sync>() {}
        is_send_sync::<Arc<dyn AdmissionService>>();
    }
}
