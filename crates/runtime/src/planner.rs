//! Offline capacity planning: what-if journal replay over hypothetical
//! fleet shapes.
//!
//! The paper's argument is *conservative admission at design time*:
//! predicting whether a use-case fits a platform before committing silicon
//! or capacity. The [`Journal`] gives us the raw material — every real
//! admit/reject/saturate/release/rebalance decision a fleet ever made —
//! and this module closes the loop by re-executing a recorded decision
//! stream against a **hypothetical** fleet instead of the recorded one:
//!
//! * [`FleetShape`] — a serde-able description of a candidate fleet
//!   (per-group shapes + routing policy), derivable from any
//!   [`JournalHeader`] and mutated through builder ops like
//!   [`scale_capacity`](FleetShape::scale_capacity),
//!   [`add_group`](FleetShape::add_group) and
//!   [`swap_policy`](FleetShape::swap_policy);
//! * [`PlanRun`] — one counterfactual replay: the journal's admission
//!   stream is re-decided through the fleet's [`AdmissionService`] path
//!   against the hypothetical shape, producing a [`PlanReport`] with
//!   per-event [`Flip`] records ([`RejectedNowAdmitted`],
//!   [`AdmittedNowRejected`], [`Rerouted`]), per-group peak/mean
//!   utilisation and saturation windows;
//! * [`PlanSweep`] — a grid of shapes executed in parallel on a worker
//!   pool, summarized by a frontier: the smallest shape with zero
//!   regressions and the cheapest shape within an acceptable flip budget.
//!
//! Unlike [`JournalReplayer`](crate::JournalReplayer), a plan run **never
//! verifies outcomes** — on a different shape the outcomes are *supposed*
//! to differ, so divergence is recorded as data (flips), not failure. For
//! the *identical* shape a plan run reproduces the recording decision for
//! decision and reports zero flips (property-tested), which is the
//! planner ≡ replayer anchor every what-if answer hangs off.
//!
//! [`RejectedNowAdmitted`]: FlipKind::RejectedNowAdmitted
//! [`AdmittedNowRejected`]: FlipKind::AdmittedNowRejected
//! [`Rerouted`]: FlipKind::Rerouted
//!
//! # Example
//!
//! ```
//! use platform::{Application, Mapping, SystemSpec};
//! use runtime::{FleetConfig, FleetManager, FleetShape, PlanRun, RoutingPolicy};
//! use sdf::figure2_graphs;
//!
//! let (a, b) = figure2_graphs();
//! let spec = SystemSpec::builder()
//!     .application(Application::new("A", a)?)
//!     .application(Application::new("B", b)?)
//!     .mapping(Mapping::by_actor_index(3))
//!     .build()?;
//!
//! // Record a little history on a 1-group fleet of capacity 2.
//! let fleet = FleetManager::new(
//!     spec.clone(),
//!     FleetConfig::uniform(1, 1, 2, RoutingPolicy::LeastUtilised),
//! )?;
//! let _t0 = fleet.admit(0, None, None)?.ticket().expect("fits");
//! let _t1 = fleet.admit(1, None, None)?.ticket().expect("fits");
//!
//! // What if the same traffic had hit a fleet with HALF the capacity?
//! let recorded = FleetShape::from_header(fleet.journal().header());
//! let halved = recorded.clone().scale_capacity(0.5);
//! let report = PlanRun::new(&spec, fleet.journal(), &halved).execute()?;
//! assert_eq!(report.regressions(), 1); // one admission no longer fits
//!
//! // ... and against the recorded shape, nothing flips.
//! let identity = PlanRun::new(&spec, fleet.journal(), &recorded).execute()?;
//! assert!(identity.flips.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::fleet::{FleetConfig, FleetError, FleetManager, GroupConfig, RoutingPolicy};
use crate::journal::{
    DecisionEvent, GroupShape, Journal, JournalHeader, JournalOutcome, ScaleOutcome,
};
use crate::service::{AdmissionDecision, AdmissionRequest, AdmissionService, ServiceError};
use crate::wal::FleetCheckpoint;
use platform::SystemSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// FleetShape: the hypothetical fleet description.
// ---------------------------------------------------------------------------

/// A candidate fleet: per-group shapes plus a routing policy name.
///
/// Shapes are plain serde-able data (they reuse the journal header's
/// [`GroupShape`] vocabulary), so sweep grids can be built, stored and
/// compared without touching a live fleet. Derive one from a recorded
/// journal with [`from_header`](Self::from_header), then mutate it through
/// the builder ops; [`to_config`](Self::to_config) turns it back into a
/// buildable [`FleetConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetShape {
    /// The platform groups (≥ 1 for a buildable shape).
    pub groups: Vec<GroupShape>,
    /// Routing policy name (`Display`/`FromStr` of [`RoutingPolicy`]).
    pub policy: String,
}

impl FleetShape {
    /// The exact shape a journal header records: the per-group
    /// [`GroupShape`]s when stamped (every [`FleetManager`] stamps them),
    /// synthesized from the uniform summary fields otherwise.
    pub fn from_header(header: &JournalHeader) -> FleetShape {
        let groups = if header.group_shapes.is_empty() {
            (0..header.groups.max(1))
                .map(|i| GroupShape {
                    name: format!("group{i}"),
                    shards: header.shards_per_group.max(1),
                    capacity_per_shard: header.capacity_per_shard.max(1),
                    tags: vec![format!("uc{i}")],
                })
                .collect()
        } else {
            header.group_shapes.clone()
        };
        FleetShape {
            groups,
            policy: header.policy.clone(),
        }
    }

    /// The shape of an existing [`FleetConfig`].
    pub fn from_config(config: &FleetConfig) -> FleetShape {
        FleetShape {
            groups: config.groups.iter().map(GroupConfig::to_shape).collect(),
            policy: config.policy.to_string(),
        }
    }

    /// Builds the [`FleetConfig`] this shape describes.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when the shape has no groups or its policy
    /// name does not parse.
    pub fn to_config(&self) -> Result<FleetConfig, FleetError> {
        if self.groups.is_empty() {
            return Err(FleetError::Config("shape has no groups".into()));
        }
        let policy = self
            .policy
            .parse::<RoutingPolicy>()
            .map_err(FleetError::Config)?;
        Ok(FleetConfig {
            groups: self.groups.iter().map(GroupConfig::from_shape).collect(),
            policy,
        })
    }

    /// Stamps this shape over `base`, producing a header that `probcon
    /// replay`-style consumers rebuild exactly this fleet from (workload
    /// fields are kept from `base`).
    pub fn to_header(&self, base: &JournalHeader) -> JournalHeader {
        let first = self.groups.first();
        JournalHeader {
            groups: self.groups.len() as u64,
            shards_per_group: first.map_or(1, |g| g.shards),
            capacity_per_shard: first.map_or(1, |g| g.capacity_per_shard),
            policy: self.policy.clone(),
            group_shapes: self.groups.clone(),
            ..base.clone()
        }
    }

    /// Scales every group's per-shard capacity by `factor` (rounded to the
    /// nearest integer, floored at 1 — a group never vanishes by scaling).
    #[must_use]
    pub fn scale_capacity(mut self, factor: f64) -> FleetShape {
        for group in &mut self.groups {
            let scaled = (group.capacity_per_shard as f64 * factor).round();
            group.capacity_per_shard = if scaled < 1.0 { 1 } else { scaled as u64 };
        }
        self
    }

    /// Appends one more group.
    #[must_use]
    pub fn add_group(mut self, group: GroupShape) -> FleetShape {
        self.groups.push(group);
        self
    }

    /// Grows or shrinks to exactly `count` groups: extra groups are
    /// truncated from the end; missing ones clone the last group's shards
    /// and capacity under fresh `group{i}` / `uc{i}` names (matching
    /// [`FleetConfig::uniform`]'s naming).
    #[must_use]
    pub fn with_group_count(mut self, count: usize) -> FleetShape {
        let count = count.max(1);
        self.groups.truncate(count);
        while self.groups.len() < count {
            let template = self.groups.last().cloned().unwrap_or(GroupShape {
                name: String::new(),
                shards: 1,
                capacity_per_shard: 1,
                tags: Vec::new(),
            });
            let i = self.groups.len();
            self.groups.push(GroupShape {
                name: format!("group{i}"),
                shards: template.shards,
                capacity_per_shard: template.capacity_per_shard,
                tags: vec![format!("uc{i}")],
            });
        }
        self
    }

    /// Replaces the routing policy.
    #[must_use]
    pub fn swap_policy(mut self, policy: RoutingPolicy) -> FleetShape {
        self.policy = policy.to_string();
        self
    }

    /// Total resident capacity across all groups — the "cost" axis the
    /// sweep frontier minimizes.
    pub fn total_capacity(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.shards * g.capacity_per_shard)
            .sum()
    }

    /// `true` when this shape routes like the recorded one (same group
    /// count and policy), which lets a plan run reuse the recorded routing
    /// instead of re-deciding it — see [`RouteMode::Auto`].
    pub fn routes_like(&self, header: &JournalHeader) -> bool {
        let recorded = FleetShape::from_header(header);
        self.groups.len() == recorded.groups.len() && self.policy == recorded.policy
    }

    /// Compact display label, e.g. `3g×1s×4c least-utilised` for uniform
    /// shapes or `3g/14c affinity` for heterogeneous ones.
    pub fn label(&self) -> String {
        let uniform = self.groups.windows(2).all(|w| {
            w[0].shards == w[1].shards && w[0].capacity_per_shard == w[1].capacity_per_shard
        });
        match (uniform, self.groups.first()) {
            (true, Some(first)) => format!(
                "{}g×{}s×{}c {}",
                self.groups.len(),
                first.shards,
                first.capacity_per_shard,
                self.policy
            ),
            _ => format!(
                "{}g/{}c {}",
                self.groups.len(),
                self.total_capacity(),
                self.policy
            ),
        }
    }
}

impl fmt::Display for FleetShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

// ---------------------------------------------------------------------------
// Flips: divergence as data.
// ---------------------------------------------------------------------------

/// How a counterfactual decision differed from the recorded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlipKind {
    /// The recording denied this admission (rejected or saturated); the
    /// hypothetical fleet admits it — spare headroom recovered.
    RejectedNowAdmitted,
    /// The recording admitted this request; the hypothetical fleet denies
    /// it (contract rejection or saturation) — a **regression**: real
    /// served traffic this shape would have turned away.
    AdmittedNowRejected,
    /// Same outcome class, different group: the hypothetical routing sent
    /// the request elsewhere.
    Rerouted,
    /// A recorded elastic resize ([`DecisionEvent::Resize`]) came out
    /// differently on the hypothetical fleet — it applied where the
    /// recording refused, or vice versa.
    ResizeDiverged,
}

impl fmt::Display for FlipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipKind::RejectedNowAdmitted => write!(f, "rejected-now-admitted"),
            FlipKind::AdmittedNowRejected => write!(f, "admitted-now-rejected"),
            FlipKind::Rerouted => write!(f, "rerouted"),
            FlipKind::ResizeDiverged => write!(f, "resize-diverged"),
        }
    }
}

/// One journal event whose counterfactual outcome differed from the
/// recording.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flip {
    /// Sequence number of the event in the source journal.
    pub seq: u64,
    /// What kind of difference.
    pub kind: FlipKind,
    /// The recorded outcome, rendered.
    pub recorded: String,
    /// The hypothetical outcome, rendered.
    pub hypothetical: String,
}

impl fmt::Display for Flip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq {}: {} (recorded `{}`, hypothetical `{}`)",
            self.seq, self.kind, self.recorded, self.hypothetical
        )
    }
}

/// Admission outcome counts of one side of a plan run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeTotals {
    /// Admissions granted.
    pub admitted: u64,
    /// Admissions rejected by throughput contracts.
    pub rejected: u64,
    /// Admissions bounced for lack of capacity.
    pub saturated: u64,
}

impl fmt::Display for OutcomeTotals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} admitted / {} rejected / {} saturated",
            self.admitted, self.rejected, self.saturated
        )
    }
}

/// A maximal stretch of journal positions during which a group sat at full
/// capacity in the counterfactual run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaturationWindow {
    /// First sequence number at which the group was full.
    pub from_seq: u64,
    /// Last sequence number at which the group was still full (inclusive).
    pub until_seq: u64,
}

impl fmt::Display for SaturationWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.from_seq, self.until_seq)
    }
}

/// Per-group load profile of a counterfactual run, sampled after every
/// journal event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupUsage {
    /// Group name (from the hypothetical shape).
    pub name: String,
    /// Resident capacity of the group under the hypothetical shape.
    pub capacity: u64,
    /// Highest resident count observed.
    pub peak_residents: u64,
    /// Mean resident/capacity ratio over all events.
    pub mean_utilisation: f64,
    /// Events after which the group sat at full capacity.
    pub saturated_events: u64,
    /// Maximal full-capacity stretches, in journal order.
    pub saturation_windows: Vec<SaturationWindow>,
}

// ---------------------------------------------------------------------------
// PlanRun: one counterfactual replay.
// ---------------------------------------------------------------------------

/// How a plan run picks the group each recorded admission is tried on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Reuse the recorded routing when the shape still
    /// [routes like](FleetShape::routes_like) the recording (same group
    /// count and policy) — isolating pure capacity effects and keeping
    /// even concurrency-recorded journals flip-free on the identity shape
    /// — and re-route by policy otherwise (the recorded groups may not
    /// even exist). The default.
    #[default]
    Auto,
    /// Always prefer the recorded group (falling back to policy routing
    /// for events whose recorded group is out of range).
    Recorded,
    /// Always re-route through the hypothetical fleet's policy, as if the
    /// traffic arrived fresh. Journals do not record affinity tags, so
    /// affinity policies fall back to least-utilised here.
    Replan,
}

impl RouteMode {
    /// Rendered name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RouteMode::Auto => "auto",
            RouteMode::Recorded => "recorded",
            RouteMode::Replan => "replanned",
        }
    }
}

/// Why a plan run (or sweep) failed outright — as opposed to *flipping*,
/// which is the result, not a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The hypothetical fleet could not be built.
    Fleet(FleetError),
    /// Re-deciding an admission failed (analysis error, stopped service).
    Service(ServiceError),
    /// The sweep was misconfigured (empty grid, …).
    Config(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Fleet(e) => write!(f, "cannot build hypothetical fleet: {e}"),
            PlanError::Service(e) => write!(f, "counterfactual decision failed: {e}"),
            PlanError::Config(e) => write!(f, "invalid plan configuration: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Fleet(e) => Some(e),
            PlanError::Service(e) => Some(e),
            PlanError::Config(_) => None,
        }
    }
}

impl From<FleetError> for PlanError {
    fn from(e: FleetError) -> Self {
        PlanError::Fleet(e)
    }
}

impl From<ServiceError> for PlanError {
    fn from(e: ServiceError) -> Self {
        PlanError::Service(e)
    }
}

/// One counterfactual replay of a journal against a hypothetical
/// [`FleetShape`] (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct PlanRun<'a> {
    spec: &'a SystemSpec,
    journal: &'a Journal,
    shape: &'a FleetShape,
    routing: RouteMode,
    scale_policy: Option<(crate::autoscaler::ScalePolicy, u64)>,
}

impl<'a> PlanRun<'a> {
    /// A run re-deciding `journal`'s stream — phrased against `spec`, the
    /// workload the journal was recorded for — on a fleet shaped like
    /// `shape`.
    pub fn new(spec: &'a SystemSpec, journal: &'a Journal, shape: &'a FleetShape) -> PlanRun<'a> {
        PlanRun {
            spec,
            journal,
            shape,
            routing: RouteMode::Auto,
            scale_policy: None,
        }
    }

    /// Overrides the [`RouteMode`].
    #[must_use]
    pub fn with_routing(mut self, routing: RouteMode) -> PlanRun<'a> {
        self.routing = routing;
        self
    }

    /// Evaluates an elastic [`ScalePolicy`](crate::ScalePolicy) against
    /// the recorded stream: an [`Autoscaler`](crate::Autoscaler) over the
    /// hypothetical fleet ticks every `every` replayed events, its
    /// actions land in [`PlanReport::policy_actions`], and the journal's
    /// own recorded resizes are *skipped* (the policy under evaluation
    /// decides capacity instead). `probcon plan --policy-file` drives
    /// this.
    #[must_use]
    pub fn with_scale_policy(
        mut self,
        policy: crate::autoscaler::ScalePolicy,
        every: u64,
    ) -> PlanRun<'a> {
        self.scale_policy = Some((policy, every.max(1)));
        self
    }

    /// Executes the counterfactual replay.
    ///
    /// Every recorded admission is re-decided through the hypothetical
    /// fleet's [`AdmissionService`] path; releases apply to the residents
    /// the counterfactual actually admitted (releases of flipped-away
    /// admissions are skipped and counted); recorded rebalances are
    /// re-attempted when both the resident and the target group still
    /// exist. Outcomes are **never verified** — differences land in the
    /// report as [`Flip`]s.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the fleet cannot be built or an admission cannot
    /// be *decided* (rejections and saturations are decisions, not
    /// errors).
    pub fn execute(&self) -> Result<PlanReport, PlanError> {
        let checkpoint = self.journal.base_checkpoint();
        self.journal
            .with_entries(|entries| self.execute_over(checkpoint.as_ref(), entries))
    }

    /// [`execute`](Self::execute) over an already-snapshotted checkpoint
    /// and entry slice. [`PlanSweep`] snapshots once and shares the slice
    /// across its workers — `execute` would hold the journal's entry lock
    /// for the whole replay, serializing concurrent runs over the same
    /// journal.
    fn execute_over(
        &self,
        checkpoint: Option<&FleetCheckpoint>,
        entries: &[crate::journal::JournalEntry],
    ) -> Result<PlanReport, PlanError> {
        let config = self.shape.to_config()?;
        let fleet = FleetManager::new(self.spec.clone(), config)?;
        let service: &dyn AdmissionService = &fleet;
        let reuse_recorded = match self.routing {
            RouteMode::Replan => false,
            RouteMode::Recorded => true,
            RouteMode::Auto => self.shape.routes_like(self.journal.header()),
        };

        // Recorded resident id -> counterfactual resident id.
        let mut live: HashMap<u64, u64> = HashMap::new();
        let mut report = PlanReport {
            shape: self.shape.clone(),
            routing: if reuse_recorded {
                RouteMode::Recorded.name().to_string()
            } else {
                RouteMode::Replan.name().to_string()
            },
            events: 0,
            flips: Vec::new(),
            recorded: OutcomeTotals::default(),
            hypothetical: OutcomeTotals::default(),
            releases_applied: 0,
            releases_skipped: 0,
            untracked_admissions: 0,
            rebalances_applied: 0,
            rebalances_failed: 0,
            rebalances_skipped: 0,
            resizes_applied: 0,
            resizes_refused: 0,
            resizes_skipped: 0,
            restored: 0,
            groups: Vec::new(),
            residents_at_end: 0,
            policy: self.scale_policy.as_ref().map(|(policy, _)| policy.label()),
            policy_actions: Vec::new(),
        };
        let mut usage = UsageTracker::new(&fleet);
        // Policy evaluation: the controller observes the same fleet the
        // replay mutates, so its decisions see the replayed load.
        let controller = self.scale_policy.as_ref().map(|(policy, every)| {
            (
                crate::autoscaler::Autoscaler::new(
                    std::sync::Arc::new(fleet.clone()),
                    policy.clone(),
                ),
                *every,
            )
        });

        // Journals compacted into a snapshot checkpoint carry the fleet's
        // resident state instead of the admissions that built it: seed the
        // hypothetical fleet from the snapshot before replaying the tail.
        // A resident the hypothetical shape cannot seat is a regression of
        // traffic the recording was serving — an AdmittedNowRejected flip
        // anchored at its recorded admission seq.
        if let Some(checkpoint) = checkpoint {
            let mut residents: Vec<_> = checkpoint.residents.iter().collect();
            residents.sort_by_key(|r| r.admitted_seq);
            for r in residents {
                report.recorded.admitted += 1;
                match fleet.restore_resident(r) {
                    Ok(()) => {
                        live.insert(r.resident, r.resident);
                        report.restored += 1;
                        report.hypothetical.admitted += 1;
                    }
                    Err(e) => {
                        report.hypothetical.rejected += 1;
                        report.flips.push(Flip {
                            seq: r.admitted_seq,
                            kind: FlipKind::AdmittedNowRejected,
                            recorded: format!("admitted on group {}", r.group),
                            hypothetical: format!("snapshot restore failed: {e}"),
                        });
                    }
                }
            }
        }

        {
            for entry in entries {
                report.events += 1;
                match &entry.event {
                    DecisionEvent::Admit {
                        group,
                        app_index,
                        required_throughput,
                        outcome,
                        affinity,
                    } => {
                        self.replay_admit(
                            service,
                            &mut live,
                            &mut report,
                            reuse_recorded,
                            fleet.group_count(),
                            entry.seq,
                            *group,
                            *app_index,
                            *required_throughput,
                            outcome,
                            affinity.clone(),
                        )?;
                    }
                    DecisionEvent::Release { resident } => match live.remove(resident) {
                        Some(id) => {
                            service.release(id)?;
                            report.releases_applied += 1;
                        }
                        // The counterfactual never admitted this resident
                        // (its admission flipped away): nothing to free.
                        None => report.releases_skipped += 1,
                    },
                    DecisionEvent::Rebalance {
                        resident, to_group, ..
                    } => match live.get(resident) {
                        Some(&id) if (*to_group as usize) < fleet.group_count() => {
                            match fleet.move_resident(id, *to_group as usize) {
                                Ok(_) => report.rebalances_applied += 1,
                                // Already there in the counterfactual (its
                                // admission routed differently).
                                Err(FleetError::SameGroup { .. }) => report.rebalances_skipped += 1,
                                Err(
                                    FleetError::MoveSaturated { .. }
                                    | FleetError::MoveRejected { .. },
                                ) => report.rebalances_failed += 1,
                                Err(e) => return Err(PlanError::Fleet(e)),
                            }
                        }
                        // Target group absent from the shape, or the
                        // resident was never admitted here.
                        Some(_) | None => report.rebalances_skipped += 1,
                    },
                    // Under policy evaluation the policy decides capacity;
                    // the recording's own resizes are skipped wholesale.
                    DecisionEvent::Resize { .. } if controller.is_some() => {
                        report.resizes_skipped += 1;
                    }
                    DecisionEvent::Resize { action, outcome } => match outcome {
                        // Re-execute applied resizes so the hypothetical
                        // fleet's shape evolves the way the recording's
                        // did. Actions carry absolute capacities and the
                        // fleet-assigned group index, so on the identity
                        // shape they re-apply verbatim; on a different
                        // shape a refusal is a genuine divergence.
                        ScaleOutcome::Applied => match fleet.resize(action.clone())? {
                            ScaleOutcome::Applied => report.resizes_applied += 1,
                            ScaleOutcome::Refused { reason } => {
                                report.resizes_refused += 1;
                                report.flips.push(Flip {
                                    seq: entry.seq,
                                    kind: FlipKind::ResizeDiverged,
                                    recorded: format!("resize applied: {action}"),
                                    hypothetical: format!("resize refused: {reason}"),
                                });
                            }
                        },
                        // A refused resize mutated nothing in the
                        // recording; the counterfactual leaves its fleet
                        // alone too.
                        ScaleOutcome::Refused { .. } => report.resizes_skipped += 1,
                    },
                }
                usage.observe(entry.seq, &fleet);
                if let Some((controller, every)) = &controller {
                    if (report.events as u64).is_multiple_of(*every) {
                        if let Some((action, outcome)) =
                            controller.tick().map_err(PlanError::Fleet)?
                        {
                            match &outcome {
                                ScaleOutcome::Applied => report.resizes_applied += 1,
                                ScaleOutcome::Refused { .. } => report.resizes_refused += 1,
                            }
                            report.policy_actions.push(PolicyDecision {
                                after_event: report.events as u64,
                                action: action.to_string(),
                                outcome: match &outcome {
                                    ScaleOutcome::Applied => "applied".to_string(),
                                    ScaleOutcome::Refused { reason } => {
                                        format!("refused ({reason})")
                                    }
                                },
                            });
                        }
                    }
                }
            }
        }

        report.groups = usage.finish();
        report.residents_at_end = fleet.resident_count();
        fleet.stop();
        Ok(report)
    }

    /// Re-decides one recorded admission and classifies the difference.
    #[allow(clippy::too_many_arguments)]
    fn replay_admit(
        &self,
        service: &dyn AdmissionService,
        live: &mut HashMap<u64, u64>,
        report: &mut PlanReport,
        reuse_recorded: bool,
        groups: usize,
        seq: u64,
        recorded_group: u64,
        app_index: u64,
        required_throughput: Option<sdf::Rational>,
        outcome: &JournalOutcome,
        affinity: Option<String>,
    ) -> Result<(), PlanError> {
        let recorded_admitted = match outcome {
            JournalOutcome::Admitted { .. } => {
                report.recorded.admitted += 1;
                true
            }
            JournalOutcome::Rejected { .. } => {
                report.recorded.rejected += 1;
                false
            }
            JournalOutcome::Saturated => {
                report.recorded.saturated += 1;
                false
            }
        };
        let recorded_text = match outcome {
            JournalOutcome::Admitted { .. } => format!("admitted on group {recorded_group}"),
            JournalOutcome::Rejected { violations } => {
                format!("rejected on group {recorded_group} ({violations} violations)")
            }
            JournalOutcome::Saturated => format!("saturated on group {recorded_group}"),
        };

        let target = if reuse_recorded && (recorded_group as usize) < groups {
            Some(recorded_group as usize)
        } else {
            None
        };
        // The recorded affinity tag rides along so `RouteMode::Replan`
        // re-routes through the same affinity path the recording used
        // (under `Recorded` routing the explicit target wins anyway).
        let request = AdmissionRequest {
            app_index: app_index as usize,
            required_throughput,
            affinity,
            target,
            span: None,
        };
        let decision = service.admit(&request)?;

        let (now_admitted, domain, hypothetical_text) = match &decision {
            AdmissionDecision::Admitted {
                resident, domain, ..
            } => {
                report.hypothetical.admitted += 1;
                if let JournalOutcome::Admitted {
                    resident: recorded, ..
                } = outcome
                {
                    live.insert(*recorded, *resident);
                } else {
                    // The recording never released this admission (it never
                    // happened there); its capacity stays held to the end —
                    // the conservative reading of recovered headroom.
                    report.untracked_admissions += 1;
                }
                (true, *domain, format!("admitted on group {domain}"))
            }
            AdmissionDecision::Rejected { domain, violations } => {
                report.hypothetical.rejected += 1;
                (
                    false,
                    *domain,
                    format!(
                        "rejected on group {domain} ({} violations)",
                        violations.len()
                    ),
                )
            }
            AdmissionDecision::Saturated { domain } => {
                report.hypothetical.saturated += 1;
                (false, *domain, format!("saturated on group {domain}"))
            }
        };

        let kind = if recorded_admitted && !now_admitted {
            Some(FlipKind::AdmittedNowRejected)
        } else if !recorded_admitted && now_admitted {
            Some(FlipKind::RejectedNowAdmitted)
        } else if domain != recorded_group as usize {
            Some(FlipKind::Rerouted)
        } else {
            None
        };
        if let Some(kind) = kind {
            report.flips.push(Flip {
                seq,
                kind,
                recorded: recorded_text,
                hypothetical: hypothetical_text,
            });
        }
        Ok(())
    }
}

/// Per-group utilisation accumulator sampled after every journal event.
struct UsageTracker {
    names: Vec<String>,
    capacities: Vec<u64>,
    peaks: Vec<u64>,
    resident_sums: Vec<u64>,
    saturated_events: Vec<u64>,
    open_window: Vec<Option<u64>>,
    windows: Vec<Vec<SaturationWindow>>,
    events: u64,
    last_seq: u64,
}

impl UsageTracker {
    fn new(fleet: &FleetManager) -> UsageTracker {
        let mut tracker = UsageTracker {
            names: Vec::new(),
            capacities: Vec::new(),
            peaks: Vec::new(),
            resident_sums: Vec::new(),
            saturated_events: Vec::new(),
            open_window: Vec::new(),
            windows: Vec::new(),
            events: 0,
            last_seq: 0,
        };
        tracker.sync_groups(fleet);
        tracker
    }

    /// Grows the per-group accumulators to the fleet's current group
    /// count (a replayed `AddGroup` can appear mid-journal) and refreshes
    /// capacities, which elastic resizes move under the replay.
    fn sync_groups(&mut self, fleet: &FleetManager) {
        for g in self.capacities.len()..fleet.group_count() {
            self.names
                .push(fleet.group_name(g).unwrap_or_else(|_| "?".to_string()));
            self.capacities.push(0);
            self.peaks.push(0);
            self.resident_sums.push(0);
            self.saturated_events.push(0);
            self.open_window.push(None);
            self.windows.push(Vec::new());
        }
        for g in 0..self.capacities.len() {
            self.capacities[g] = fleet.capacity_of(g).unwrap_or(0) as u64;
        }
    }

    fn observe(&mut self, seq: u64, fleet: &FleetManager) {
        self.sync_groups(fleet);
        self.events += 1;
        self.last_seq = seq;
        for g in 0..self.capacities.len() {
            let residents = fleet.resident_count_of(g).unwrap_or(0) as u64;
            self.peaks[g] = self.peaks[g].max(residents);
            self.resident_sums[g] += residents;
            let full = self.capacities[g] > 0 && residents >= self.capacities[g];
            if full {
                self.saturated_events[g] += 1;
                if self.open_window[g].is_none() {
                    self.open_window[g] = Some(seq);
                }
            } else if let Some(from_seq) = self.open_window[g].take() {
                self.windows[g].push(SaturationWindow {
                    from_seq,
                    // The previous event was the last full one; `seq` is
                    // the first event after which the group had headroom
                    // again. Clamp for the degenerate single-event case.
                    until_seq: seq.saturating_sub(1).max(from_seq),
                });
            }
        }
    }

    fn finish(mut self) -> Vec<GroupUsage> {
        (0..self.capacities.len())
            .map(|g| {
                if let Some(from_seq) = self.open_window[g].take() {
                    self.windows[g].push(SaturationWindow {
                        from_seq,
                        until_seq: self.last_seq,
                    });
                }
                GroupUsage {
                    name: std::mem::take(&mut self.names[g]),
                    capacity: self.capacities[g],
                    peak_residents: self.peaks[g],
                    mean_utilisation: if self.events == 0 || self.capacities[g] == 0 {
                        0.0
                    } else {
                        self.resident_sums[g] as f64
                            / (self.events as f64 * self.capacities[g] as f64)
                    },
                    saturated_events: self.saturated_events[g],
                    saturation_windows: std::mem::take(&mut self.windows[g]),
                }
            })
            .collect()
    }
}

/// Result of one counterfactual replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// The hypothetical shape the journal was replayed against.
    pub shape: FleetShape,
    /// Effective routing (`"recorded"` or `"replanned"`, after
    /// [`RouteMode::Auto`] resolution).
    pub routing: String,
    /// Journal events replayed.
    pub events: usize,
    /// Every outcome difference, in sequence order.
    pub flips: Vec<Flip>,
    /// Outcome counts of the recording.
    pub recorded: OutcomeTotals,
    /// Outcome counts of the counterfactual.
    pub hypothetical: OutcomeTotals,
    /// Recorded releases applied to a counterfactually live resident.
    pub releases_applied: u64,
    /// Recorded releases skipped because the counterfactual never admitted
    /// the resident.
    pub releases_skipped: u64,
    /// Counterfactual admissions the recording denied — they hold capacity
    /// to the end because the recording has no release for them.
    pub untracked_admissions: u64,
    /// Recorded rebalances that applied cleanly.
    pub rebalances_applied: u64,
    /// Recorded rebalances refused by the hypothetical target group (full
    /// or contract-bound).
    pub rebalances_failed: u64,
    /// Recorded rebalances skipped (resident flipped away, target group
    /// absent, or resident already on the target).
    pub rebalances_skipped: u64,
    /// Recorded elastic resizes that re-applied cleanly.
    pub resizes_applied: u64,
    /// Recorded applied resizes the hypothetical fleet refused (each is
    /// also a [`FlipKind::ResizeDiverged`] flip).
    pub resizes_refused: u64,
    /// Recorded refused resizes (nothing to re-apply — a refusal mutates
    /// nothing).
    pub resizes_skipped: u64,
    /// Residents seeded from the journal's snapshot checkpoint before the
    /// entry replay (zero for uncompacted journals).
    pub restored: u64,
    /// Per-group load profile of the counterfactual run.
    pub groups: Vec<GroupUsage>,
    /// Residents still live when the journal ended.
    pub residents_at_end: usize,
    /// Label of the elastic policy under evaluation
    /// ([`PlanRun::with_scale_policy`]); absent on plain replays.
    #[serde(skip_none)]
    pub policy: Option<String>,
    /// Resize timeline the evaluated policy produced, in replay order.
    pub policy_actions: Vec<PolicyDecision>,
}

/// One action an evaluated [`ScalePolicy`](crate::ScalePolicy) took
/// during a counterfactual replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyDecision {
    /// Number of journal events replayed when the action fired.
    pub after_event: u64,
    /// The action, rendered.
    pub action: String,
    /// `"applied"` or `"refused (...)"`.
    pub outcome: String,
}

impl PlanReport {
    /// Total flips.
    pub fn flip_count(&self) -> usize {
        self.flips.len()
    }

    /// Flips of one kind.
    pub fn count(&self, kind: FlipKind) -> usize {
        self.flips.iter().filter(|f| f.kind == kind).count()
    }

    /// Flips that deny traffic the recording served
    /// ([`FlipKind::AdmittedNowRejected`]) — the frontier's "no worse than
    /// reality" criterion.
    pub fn regressions(&self) -> usize {
        self.count(FlipKind::AdmittedNowRejected)
    }

    /// `true` when the shape serves everything the recording served (it
    /// may still reroute or recover denied admissions).
    pub fn is_clean(&self) -> bool {
        self.regressions() == 0
    }

    /// Highest per-group peak utilisation, in `[0, 1]`.
    pub fn peak_utilisation(&self) -> f64 {
        self.groups
            .iter()
            .filter(|g| g.capacity > 0)
            .map(|g| g.peak_residents as f64 / g.capacity as f64)
            .fold(0.0, f64::max)
    }

    /// Renders the table printed by `probcon plan`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan: shape {} (capacity {}), {} routing",
            self.shape.label(),
            self.shape.total_capacity(),
            self.routing,
        );
        let _ = writeln!(
            out,
            "replayed {} events: {} flips ({} admitted-now-rejected, \
             {} rejected-now-admitted, {} rerouted)",
            self.events,
            self.flip_count(),
            self.count(FlipKind::AdmittedNowRejected),
            self.count(FlipKind::RejectedNowAdmitted),
            self.count(FlipKind::Rerouted),
        );
        let _ = writeln!(
            out,
            "outcomes: recorded {} -> hypothetical {}",
            self.recorded, self.hypothetical
        );
        if self.restored > 0 {
            let _ = writeln!(
                out,
                "restored {} residents from the snapshot checkpoint before replay",
                self.restored
            );
        }
        let _ = writeln!(
            out,
            "releases: {} applied, {} skipped; rebalances: {} applied, {} failed, \
             {} skipped; {} untracked admissions, {} residents at end",
            self.releases_applied,
            self.releases_skipped,
            self.rebalances_applied,
            self.rebalances_failed,
            self.rebalances_skipped,
            self.untracked_admissions,
            self.residents_at_end,
        );
        if self.resizes_applied + self.resizes_refused + self.resizes_skipped > 0 {
            let _ = writeln!(
                out,
                "resizes: {} applied, {} refused ({} resize-diverged flips), {} skipped",
                self.resizes_applied,
                self.resizes_refused,
                self.count(FlipKind::ResizeDiverged),
                self.resizes_skipped,
            );
        }
        if let Some(policy) = &self.policy {
            let _ = writeln!(
                out,
                "policy under evaluation: {policy} ({} action(s))",
                self.policy_actions.len()
            );
            for decision in &self.policy_actions {
                let _ = writeln!(
                    out,
                    "  after event {:>6}: {} -> {}",
                    decision.after_event, decision.action, decision.outcome
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>9} {:>10} {:>10}  saturation windows",
            "group", "capacity", "peak", "mean-util", "sat-events"
        );
        for g in &self.groups {
            let windows: Vec<String> = g
                .saturation_windows
                .iter()
                .take(4)
                .map(SaturationWindow::to_string)
                .collect();
            let suffix = if g.saturation_windows.len() > 4 {
                format!(" (+{} more)", g.saturation_windows.len() - 4)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{:<12} {:>9} {:>9} {:>9.0}% {:>10}  {}{}",
                g.name,
                g.capacity,
                g.peak_residents,
                100.0 * g.mean_utilisation,
                g.saturated_events,
                if windows.is_empty() {
                    "-".to_string()
                } else {
                    windows.join(", ")
                },
                suffix,
            );
        }
        let shown = self.flips.len().min(8);
        for flip in &self.flips[..shown] {
            let _ = writeln!(out, "  FLIP {flip}");
        }
        if self.flips.len() > shown {
            let _ = writeln!(out, "  ... {} more flips", self.flips.len() - shown);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PlanSweep: many shapes on a worker pool, with a frontier summary.
// ---------------------------------------------------------------------------

/// A grid of hypothetical shapes replayed in parallel (see the
/// [module docs](self)).
pub struct PlanSweep<'a> {
    spec: &'a SystemSpec,
    journal: &'a Journal,
    shapes: Vec<FleetShape>,
    routing: RouteMode,
    workers: usize,
    flip_budget: u64,
}

impl<'a> PlanSweep<'a> {
    /// An empty sweep over `journal` (recorded for `spec`); add shapes
    /// with [`shape`](Self::shape) / [`shapes`](Self::shapes) or build a
    /// grid with [`grid`](Self::grid).
    pub fn new(spec: &'a SystemSpec, journal: &'a Journal) -> PlanSweep<'a> {
        PlanSweep {
            spec,
            journal,
            shapes: Vec::new(),
            routing: RouteMode::Auto,
            workers: 1,
            flip_budget: 0,
        }
    }

    /// Adds one candidate shape.
    #[must_use]
    pub fn shape(mut self, shape: FleetShape) -> PlanSweep<'a> {
        self.shapes.push(shape);
        self
    }

    /// Adds many candidate shapes.
    #[must_use]
    pub fn shapes(mut self, shapes: impl IntoIterator<Item = FleetShape>) -> PlanSweep<'a> {
        self.shapes.extend(shapes);
        self
    }

    /// Worker threads replaying shapes concurrently (each shape runs on
    /// one worker; results are deterministic regardless of worker count).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> PlanSweep<'a> {
        self.workers = workers.max(1);
        self
    }

    /// Regressions ([`FlipKind::AdmittedNowRejected`] flips) a shape may
    /// show and still qualify for the
    /// [`cheapest_within_budget`](SweepReport::cheapest_within_budget)
    /// frontier pick.
    #[must_use]
    pub fn flip_budget(mut self, budget: u64) -> PlanSweep<'a> {
        self.flip_budget = budget;
        self
    }

    /// Overrides the [`RouteMode`] for every run.
    #[must_use]
    pub fn routing(mut self, routing: RouteMode) -> PlanSweep<'a> {
        self.routing = routing;
        self
    }

    /// Cross product of group counts × capacity scales × policies applied
    /// to `base` — the grid `probcon plan --sweep` builds. Empty axes keep
    /// the base value. Duplicate shapes (e.g. from a scale of 1.0 and a
    /// group count equal to the base) are emitted once.
    pub fn grid(
        base: &FleetShape,
        group_counts: &[usize],
        capacity_scales: &[f64],
        policies: &[RoutingPolicy],
    ) -> Vec<FleetShape> {
        let counts: Vec<usize> = if group_counts.is_empty() {
            vec![base.groups.len()]
        } else {
            group_counts.to_vec()
        };
        let scales: Vec<f64> = if capacity_scales.is_empty() {
            vec![1.0]
        } else {
            capacity_scales.to_vec()
        };
        let policy_names: Vec<String> = if policies.is_empty() {
            vec![base.policy.clone()]
        } else {
            policies.iter().map(RoutingPolicy::to_string).collect()
        };
        let mut shapes: Vec<FleetShape> = Vec::new();
        for &count in &counts {
            for &scale in &scales {
                for policy in &policy_names {
                    let mut shape = base.clone().with_group_count(count).scale_capacity(scale);
                    shape.policy = policy.clone();
                    if !shapes.contains(&shape) {
                        shapes.push(shape);
                    }
                }
            }
        }
        shapes
    }

    /// Replays every shape (in parallel on the worker pool) and summarizes
    /// the frontier. Report order always matches shape insertion order, so
    /// the same grid yields the same report regardless of worker count.
    ///
    /// # Errors
    ///
    /// [`PlanError::Config`] for an empty sweep; the first per-shape
    /// [`PlanError`] otherwise.
    pub fn execute(&self) -> Result<SweepReport, PlanError> {
        if self.shapes.is_empty() {
            return Err(PlanError::Config("sweep has no shapes".into()));
        }
        let started = Instant::now();
        // One shared snapshot for the whole sweep: replaying through
        // `PlanRun::execute` would hold the journal's entry lock per run
        // and serialize the workers against each other.
        let checkpoint = self.journal.base_checkpoint();
        let entries = self.journal.entries();
        let next = Mutex::new(0usize);
        let results: Mutex<Vec<Option<Result<PlanReport, PlanError>>>> =
            Mutex::new(vec![None; self.shapes.len()]);
        let workers = self.workers.min(self.shapes.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = {
                        let mut next = crate::cache::lock(&next);
                        let index = *next;
                        if index >= self.shapes.len() {
                            return;
                        }
                        *next += 1;
                        index
                    };
                    let result = PlanRun::new(self.spec, self.journal, &self.shapes[index])
                        .with_routing(self.routing)
                        .execute_over(checkpoint.as_ref(), &entries);
                    crate::cache::lock(&results)[index] = Some(result);
                });
            }
        });

        let mut reports = Vec::with_capacity(self.shapes.len());
        for slot in crate::cache::lock(&results).drain(..) {
            reports.push(slot.expect("every sweep slot is filled")?);
        }
        let smallest_clean = frontier_pick(&reports, 0);
        let cheapest_within_budget = frontier_pick(&reports, self.flip_budget);
        Ok(SweepReport {
            reports,
            smallest_clean,
            cheapest_within_budget,
            flip_budget: self.flip_budget,
            workers,
            wall: started.elapsed(),
        })
    }
}

/// Index of the cheapest shape whose regressions fit `budget`: minimal
/// total capacity, then fewest groups, then insertion order — a
/// deterministic pick for a deterministic grid.
fn frontier_pick(reports: &[PlanReport], budget: u64) -> Option<usize> {
    reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.regressions() as u64 <= budget)
        .min_by_key(|(i, r)| (r.shape.total_capacity(), r.shape.groups.len(), *i))
        .map(|(i, _)| i)
}

/// Result of a [`PlanSweep`]: one report per shape plus the frontier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// One report per candidate shape, in insertion order.
    pub reports: Vec<PlanReport>,
    /// Index (into [`reports`](Self::reports)) of the smallest shape with
    /// zero regressions, if any.
    pub smallest_clean: Option<usize>,
    /// Index of the cheapest shape within the regression budget, if any.
    pub cheapest_within_budget: Option<usize>,
    /// The regression budget the sweep was asked to respect.
    pub flip_budget: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// The smallest clean shape's report, if any shape qualified.
    pub fn smallest_clean_report(&self) -> Option<&PlanReport> {
        self.smallest_clean.map(|i| &self.reports[i])
    }

    /// Renders the frontier table printed by `probcon plan --sweep`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep: {} shapes on {} workers in {:.3?} (regression budget {})",
            self.reports.len(),
            self.workers,
            self.wall,
            self.flip_budget,
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>6} {:>6} {:>6} {:>9} {:>9}  verdict",
            "shape", "capacity", "a->r", "r->a", "rerte", "peak-util", "residents"
        );
        for (i, report) in self.reports.iter().enumerate() {
            let verdict = match (
                Some(i) == self.smallest_clean,
                Some(i) == self.cheapest_within_budget,
                report.is_clean(),
            ) {
                (true, true, _) => "<= frontier (smallest clean, cheapest in budget)",
                (true, false, _) => "<= smallest clean",
                (false, true, _) => "<= cheapest in budget",
                (false, false, true) => "clean",
                (false, false, false) => "regresses",
            };
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>6} {:>6} {:>6} {:>8.0}% {:>9}  {}",
                report.shape.label(),
                report.shape.total_capacity(),
                report.count(FlipKind::AdmittedNowRejected),
                report.count(FlipKind::RejectedNowAdmitted),
                report.count(FlipKind::Rerouted),
                100.0 * report.peak_utilisation(),
                report.residents_at_end,
                verdict,
            );
        }
        match self.smallest_clean_report() {
            Some(report) => {
                let _ = writeln!(
                    out,
                    "frontier: smallest clean shape is {} (capacity {}), serving every \
                     recorded admission",
                    report.shape.label(),
                    report.shape.total_capacity(),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "frontier: no candidate shape serves every recorded admission"
                );
            }
        }
        if self.cheapest_within_budget != self.smallest_clean {
            if let Some(report) = self.cheapest_within_budget.map(|i| &self.reports[i]) {
                let _ = writeln!(
                    out,
                    "frontier: cheapest within budget is {} (capacity {}, {} regressions)",
                    report.shape.label(),
                    report.shape.total_capacity(),
                    report.regressions(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::DecisionEvent;
    use platform::{Application, Mapping};
    use sdf::{figure2_graphs, Rational};

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    fn uniform_shape(groups: usize, capacity: u64, policy: &str) -> FleetShape {
        FleetShape {
            groups: (0..groups)
                .map(|i| GroupShape {
                    name: format!("group{i}"),
                    shards: 1,
                    capacity_per_shard: capacity,
                    tags: vec![format!("uc{i}")],
                })
                .collect(),
            policy: policy.to_string(),
        }
    }

    /// Hand-built journal whose header matches `shape`.
    fn journal_for(shape: &FleetShape, events: Vec<DecisionEvent>) -> Journal {
        let journal = Journal::new(shape.to_header(&JournalHeader::default()));
        for event in events {
            journal.append(event);
        }
        journal
    }

    fn admit_event(group: u64, app_index: u64, outcome: JournalOutcome) -> DecisionEvent {
        DecisionEvent::Admit {
            group,
            app_index,
            required_throughput: None,
            outcome,
            affinity: None,
        }
    }

    fn admitted(resident: u64) -> JournalOutcome {
        JournalOutcome::Admitted {
            resident,
            // Periods are never verified by the planner; any value works.
            predicted_period: Rational::integer(300),
        }
    }

    #[test]
    fn shape_builder_ops_compose() {
        let base = uniform_shape(2, 4, "least-utilised");
        assert_eq!(base.total_capacity(), 8);
        assert_eq!(base.label(), "2g×1s×4c least-utilised");

        let scaled = base.clone().scale_capacity(0.5);
        assert_eq!(scaled.total_capacity(), 4);
        // Scaling never erases a group: capacity floors at 1.
        let floored = base.clone().scale_capacity(0.01);
        assert!(floored.groups.iter().all(|g| g.capacity_per_shard == 1));

        let grown = base.clone().with_group_count(4);
        assert_eq!(grown.groups.len(), 4);
        assert_eq!(grown.groups[3].name, "group3");
        assert_eq!(grown.groups[3].capacity_per_shard, 4);
        assert_eq!(base.clone().with_group_count(1).groups.len(), 1);

        let swapped = base.clone().swap_policy(RoutingPolicy::RoundRobin);
        assert_eq!(swapped.policy, "round-robin");
        let added = base.clone().add_group(GroupShape {
            name: "extra".into(),
            shards: 2,
            capacity_per_shard: 3,
            tags: vec![],
        });
        assert_eq!(added.total_capacity(), 14);
        assert!(added.label().contains("3g/14c"));

        // Header round trip preserves the shape exactly.
        let header = added.to_header(&JournalHeader::default());
        assert_eq!(FleetShape::from_header(&header), added);
        // Config round trip too.
        let config = added.to_config().unwrap();
        assert_eq!(FleetShape::from_config(&config), added);
        // Bad policies and empty shapes refuse to build.
        let mut bad = base.clone();
        bad.policy = "bogus".into();
        assert!(bad.to_config().is_err());
        let empty = FleetShape {
            groups: vec![],
            policy: "least-utilised".into(),
        };
        assert!(empty.to_config().is_err());
    }

    #[test]
    fn identity_shape_reports_zero_flips_on_real_journal() {
        let spec = spec();
        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(2, 1, 2, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        // Real traffic: admits (some denied), releases, a rebalance.
        let t0 = fleet.admit(0, None, None).unwrap().ticket().unwrap();
        let _t1 = fleet.admit(1, None, None).unwrap().ticket().unwrap();
        let _t2 = fleet.admit(0, None, None).unwrap().ticket().unwrap();
        let _t3 = fleet.admit(1, None, None).unwrap().ticket().unwrap();
        let _denied = fleet.admit(0, None, None).unwrap(); // saturated
        t0.release();
        let _t4 = fleet.admit(1, None, None).unwrap().ticket().unwrap();

        let shape = FleetShape::from_header(fleet.journal().header());
        let report = PlanRun::new(&spec, fleet.journal(), &shape)
            .execute()
            .expect("plans");
        assert_eq!(report.flips, vec![], "identity must not flip");
        assert_eq!(report.routing, "recorded");
        assert_eq!(report.events, fleet.journal().len());
        assert_eq!(report.recorded, report.hypothetical);
        assert_eq!(report.releases_skipped, 0);
        assert_eq!(report.untracked_admissions, 0);
        assert_eq!(report.residents_at_end, fleet.resident_count());
    }

    #[test]
    fn halved_capacity_flips_admissions_to_denied() {
        let shape = uniform_shape(1, 2, "least-utilised");
        let journal = journal_for(
            &shape,
            vec![
                admit_event(0, 0, admitted(0)),
                admit_event(0, 1, admitted(1)),
                DecisionEvent::Release { resident: 1 },
            ],
        );
        let halved = shape.clone().scale_capacity(0.5);
        let report = PlanRun::new(&spec(), &journal, &halved)
            .execute()
            .expect("plans");
        assert_eq!(report.count(FlipKind::AdmittedNowRejected), 1);
        assert_eq!(report.regressions(), 1);
        assert!(!report.is_clean());
        // The flipped-away resident's release is skipped, not an error.
        assert_eq!(report.releases_skipped, 1);
        assert_eq!(report.releases_applied, 0);
        assert_eq!(report.hypothetical.saturated, 1);
        let rendered = report.render();
        for needle in ["admitted-now-rejected", "FLIP", "group0", "saturation"] {
            assert!(
                rendered.contains(needle),
                "missing {needle} in:\n{rendered}"
            );
        }
    }

    #[test]
    fn doubled_capacity_flips_saturation_to_admitted() {
        let shape = uniform_shape(1, 1, "least-utilised");
        let journal = journal_for(
            &shape,
            vec![
                admit_event(0, 0, admitted(0)),
                admit_event(0, 1, JournalOutcome::Saturated),
            ],
        );
        let doubled = shape.clone().scale_capacity(2.0);
        let report = PlanRun::new(&spec(), &journal, &doubled)
            .execute()
            .expect("plans");
        assert_eq!(report.count(FlipKind::RejectedNowAdmitted), 1);
        assert!(report.is_clean(), "recovered headroom is not a regression");
        // The recovered admission has no recorded release: it stays live.
        assert_eq!(report.untracked_admissions, 1);
        assert_eq!(report.residents_at_end, 2);
    }

    #[test]
    fn contract_rejection_recovers_on_added_group() {
        let spec = spec();
        // Record reality: on one group of capacity 4, the second admission
        // rejects because the first insists on its isolation throughput.
        let fleet = FleetManager::new(
            spec.clone(),
            FleetConfig::uniform(1, 1, 4, RoutingPolicy::LeastUtilised),
        )
        .unwrap();
        let iso = spec.application(platform::AppId(0)).isolation_throughput();
        let _t0 = fleet.admit(0, Some(iso), None).unwrap().ticket().unwrap();
        let denied = fleet.admit(1, None, None).unwrap();
        assert!(denied.ticket().is_none(), "second admission must reject");

        // What if a second group had existed? Group counts differ, so Auto
        // re-routes: the rejected admission lands alone on the new group.
        let shape = FleetShape::from_header(fleet.journal().header()).with_group_count(2);
        let report = PlanRun::new(&spec, fleet.journal(), &shape)
            .execute()
            .expect("plans");
        assert_eq!(report.routing, "replanned");
        assert_eq!(report.count(FlipKind::RejectedNowAdmitted), 1);
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn reroute_detected_when_group_count_changes() {
        let shape = uniform_shape(2, 2, "least-utilised");
        // Recorded on group 1; a 3-group hypothetical re-routes by
        // least-utilised, which picks group 0 first.
        let journal = journal_for(&shape, vec![admit_event(1, 0, admitted(0))]);
        let grown = shape.clone().with_group_count(3);
        let report = PlanRun::new(&spec(), &journal, &grown)
            .execute()
            .expect("plans");
        assert_eq!(report.count(FlipKind::Rerouted), 1);
        assert_eq!(report.flips[0].kind, FlipKind::Rerouted);
        assert!(report.flips[0].recorded.contains("group 1"));
        assert!(report.flips[0].hypothetical.contains("group 0"));
        assert!(report.is_clean(), "a reroute serves the traffic elsewhere");
    }

    #[test]
    fn route_mode_overrides_auto() {
        let shape = uniform_shape(2, 2, "round-robin");
        // Two admissions recorded round-robin on groups 0 and 1.
        let journal = journal_for(
            &shape,
            vec![
                admit_event(0, 0, admitted(0)),
                admit_event(1, 1, admitted(1)),
            ],
        );
        // Replan on the identical shape: round-robin re-routes 0, 1 — the
        // same groups — so even forced replanning stays flip-free here.
        let replanned = PlanRun::new(&spec(), &journal, &shape)
            .with_routing(RouteMode::Replan)
            .execute()
            .expect("plans");
        assert_eq!(replanned.routing, "replanned");
        assert_eq!(replanned.flips, vec![]);
        // Recorded mode on a shrunken shape: group 1 is gone, so its
        // admission falls back to policy routing.
        let shrunk = shape.clone().with_group_count(1);
        let recorded = PlanRun::new(&spec(), &journal, &shrunk)
            .with_routing(RouteMode::Recorded)
            .execute()
            .expect("plans");
        assert_eq!(recorded.count(FlipKind::Rerouted), 1);
    }

    #[test]
    fn rebalance_counterfactuals_apply_skip_and_fail() {
        let shape = uniform_shape(2, 2, "least-utilised");
        let journal = journal_for(
            &shape,
            vec![
                admit_event(0, 0, admitted(0)),
                DecisionEvent::Rebalance {
                    resident: 0,
                    from_group: 0,
                    to_group: 1,
                    predicted_period: Rational::integer(300),
                },
                // Rebalance of a resident the counterfactual may not have.
                DecisionEvent::Rebalance {
                    resident: 99,
                    from_group: 0,
                    to_group: 1,
                    predicted_period: Rational::integer(300),
                },
            ],
        );
        // Identity: the real move applies; the bogus resident is skipped.
        let identity = PlanRun::new(&spec(), &journal, &shape)
            .execute()
            .expect("plans");
        assert_eq!(identity.rebalances_applied, 1);
        assert_eq!(identity.rebalances_skipped, 1);
        // One group: the move's target does not exist — skipped as data.
        let single = shape.clone().with_group_count(1);
        let report = PlanRun::new(&spec(), &journal, &single)
            .execute()
            .expect("plans");
        assert_eq!(report.rebalances_applied, 0);
        assert_eq!(report.rebalances_skipped, 2);
    }

    #[test]
    fn usage_tracks_peaks_means_and_saturation_windows() {
        let shape = uniform_shape(1, 1, "least-utilised");
        let journal = journal_for(
            &shape,
            vec![
                admit_event(0, 0, admitted(0)),               // seq 0: full
                admit_event(0, 1, JournalOutcome::Saturated), // seq 1: full
                DecisionEvent::Release { resident: 0 },       // seq 2: empty
                admit_event(0, 0, admitted(1)),               // seq 3: full to end
            ],
        );
        let report = PlanRun::new(&spec(), &journal, &shape)
            .execute()
            .expect("plans");
        let usage = &report.groups[0];
        assert_eq!(usage.capacity, 1);
        assert_eq!(usage.peak_residents, 1);
        assert_eq!(usage.saturated_events, 3);
        assert!((usage.mean_utilisation - 0.75).abs() < 1e-9);
        assert_eq!(
            usage.saturation_windows,
            vec![
                SaturationWindow {
                    from_seq: 0,
                    until_seq: 1
                },
                SaturationWindow {
                    from_seq: 3,
                    until_seq: 3
                },
            ]
        );
    }

    #[test]
    fn sweep_grid_crosses_axes_and_dedupes() {
        let base = uniform_shape(2, 4, "least-utilised");
        let shapes = PlanSweep::grid(&base, &[1, 2], &[0.5, 1.0], &[]);
        assert_eq!(shapes.len(), 4);
        assert!(shapes.contains(&base));
        // Empty axes keep the base.
        assert_eq!(PlanSweep::grid(&base, &[], &[], &[]), vec![base.clone()]);
        // Duplicates collapse: scaling by 1.0 twice is one shape.
        assert_eq!(PlanSweep::grid(&base, &[2, 2], &[1.0, 1.0], &[]).len(), 1);
    }

    #[test]
    fn sweep_finds_frontier_and_is_deterministic_under_workers() {
        let spec = spec();
        let shape = uniform_shape(1, 3, "least-utilised");
        // Three residents at peak: capacity 3 is the smallest clean shape.
        let journal = journal_for(
            &shape,
            vec![
                admit_event(0, 0, admitted(0)),
                admit_event(0, 1, admitted(1)),
                admit_event(0, 0, admitted(2)),
                DecisionEvent::Release { resident: 0 },
                DecisionEvent::Release { resident: 1 },
                DecisionEvent::Release { resident: 2 },
            ],
        );
        let grid = PlanSweep::grid(&shape, &[1], &[1.0 / 3.0, 2.0 / 3.0, 1.0, 4.0 / 3.0], &[]);
        assert_eq!(grid.len(), 4);
        let sweep = |workers: usize| {
            PlanSweep::new(&spec, &journal)
                .shapes(grid.clone())
                .workers(workers)
                .flip_budget(1)
                .execute()
                .expect("sweeps")
        };
        let report = sweep(8);
        let clean = report.smallest_clean_report().expect("one shape is clean");
        assert_eq!(clean.shape.total_capacity(), 3);
        // Budget 1 admits the capacity-2 shape (exactly one regression).
        let cheap = &report.reports[report.cheapest_within_budget.unwrap()];
        assert_eq!(cheap.shape.total_capacity(), 2);
        assert_eq!(cheap.regressions(), 1);
        // Same grid, different worker counts: identical reports + frontier.
        for workers in [1, 3, 8] {
            let again = sweep(workers);
            assert_eq!(again.reports, report.reports);
            assert_eq!(again.smallest_clean, report.smallest_clean);
            assert_eq!(again.cheapest_within_budget, report.cheapest_within_budget);
        }
        let rendered = report.render();
        for needle in ["frontier", "smallest clean", "cheapest", "verdict", "a->r"] {
            assert!(
                rendered.contains(needle),
                "missing {needle} in:\n{rendered}"
            );
        }
    }

    #[test]
    fn empty_sweep_and_bad_shape_are_config_errors() {
        let spec = spec();
        let journal = Journal::new(JournalHeader::default());
        assert!(matches!(
            PlanSweep::new(&spec, &journal).execute(),
            Err(PlanError::Config(_))
        ));
        let mut bad = uniform_shape(1, 1, "least-utilised");
        bad.policy = "bogus".into();
        assert!(matches!(
            PlanRun::new(&spec, &journal, &bad).execute(),
            Err(PlanError::Fleet(FleetError::Config(_)))
        ));
    }

    #[test]
    fn report_serializes_to_json() {
        let shape = uniform_shape(1, 2, "least-utilised");
        let journal = journal_for(&shape, vec![admit_event(0, 0, admitted(0))]);
        let report = PlanRun::new(&spec(), &journal, &shape)
            .execute()
            .expect("plans");
        let json = serde_json::to_string(&report).expect("serializes");
        for needle in ["\"shape\"", "\"flips\"", "\"mean_utilisation\"", "group0"] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let back: PlanReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, report);
    }
}
