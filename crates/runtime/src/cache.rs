//! Memoization of [`contention::estimate`] results.
//!
//! The paper's speed argument makes a single estimate cheap (milliseconds);
//! an online manager serving *repeated* use-case queries should not pay
//! even that. [`EstimateCache`] memoizes estimates keyed by
//! (spec fingerprint, use-case mask, method) with LRU eviction and
//! observable hit/miss counters.

use contention::{ContentionError, Estimate, Method};
use platform::{SystemSpec, UseCase};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: which estimate a request asks for.
///
/// The fingerprint is a structural hash of the [`SystemSpec`] (application
/// names, execution times, channel rates, mapping), so distinct workloads
/// get distinct keys up to 64-bit hash collisions — astronomically
/// unlikely for the handful of specs a process serves, but not impossible;
/// a colliding spec would silently share entries. Fingerprints are stable
/// within a process — exactly the lifetime of the cache — but not across
/// Rust versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural hash of the system specification.
    pub fingerprint: u64,
    /// Active-application bit mask of the use-case.
    pub use_case_mask: u64,
    /// Estimation method.
    pub method: Method,
}

#[derive(Debug)]
struct LruState {
    entries: HashMap<CacheKey, (Arc<Estimate>, u64)>,
    /// `stamp -> key`, oldest stamp first: the eviction order.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

/// Thread-safe LRU cache of estimation results.
///
/// Lookups and insertions take one short mutex; the estimate itself is
/// computed *outside* the lock, so concurrent misses never serialize the
/// analysis (two racing misses on the same key may both compute — the
/// second insert wins, both callers get a correct result).
#[derive(Debug)]
pub struct EstimateCache {
    capacity: usize,
    state: Mutex<LruState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EstimateCache {
    /// Cache retaining up to `capacity` estimates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> EstimateCache {
        assert!(capacity > 0, "cache capacity must be positive");
        EstimateCache {
            capacity,
            state: Mutex::new(LruState {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Structural fingerprint of a spec (see [`CacheKey::fingerprint`]).
    pub fn fingerprint(spec: &SystemSpec) -> u64 {
        let mut h = DefaultHasher::new();
        spec.application_count().hash(&mut h);
        for (id, app) in spec.iter() {
            app.name().hash(&mut h);
            for actor in app.graph().actor_ids() {
                app.graph().execution_time(actor).hash(&mut h);
                spec.node_of(id, actor).index().hash(&mut h);
            }
            for (_, c) in app.graph().channels() {
                (c.src().0, c.dst().0).hash(&mut h);
                (c.production(), c.consumption(), c.initial_tokens()).hash(&mut h);
            }
        }
        h.finish()
    }

    /// The memoized estimate for `(spec, use_case, method)`, computing and
    /// inserting it on a miss.
    ///
    /// Hashes the whole spec on every call to build the key; callers on a
    /// hot path should compute [`fingerprint`](Self::fingerprint) once per
    /// spec and use [`get_or_estimate_with`](Self::get_or_estimate_with).
    ///
    /// # Errors
    ///
    /// Propagates [`ContentionError`] from the underlying
    /// [`contention::estimate`]; errors are not cached.
    pub fn get_or_estimate(
        &self,
        spec: &SystemSpec,
        use_case: UseCase,
        method: Method,
    ) -> Result<Arc<Estimate>, ContentionError> {
        self.get_or_estimate_with(Self::fingerprint(spec), spec, use_case, method)
    }

    /// [`get_or_estimate`](Self::get_or_estimate) with a precomputed spec
    /// fingerprint, skipping the per-call structural hash.
    ///
    /// # Errors
    ///
    /// See [`get_or_estimate`](Self::get_or_estimate).
    pub fn get_or_estimate_with(
        &self,
        fingerprint: u64,
        spec: &SystemSpec,
        use_case: UseCase,
        method: Method,
    ) -> Result<Arc<Estimate>, ContentionError> {
        let key = CacheKey {
            fingerprint,
            use_case_mask: use_case.mask(),
            method,
        };
        if let Some(found) = self.lookup(&key) {
            return Ok(found);
        }
        // Compute outside the lock.
        let estimate = Arc::new(contention::estimate(spec, use_case, method)?);
        self.insert(key, Arc::clone(&estimate));
        Ok(estimate)
    }

    /// The cached estimate for `key`, bumping its recency. Counts a hit or
    /// a miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<Estimate>> {
        let mut state = lock(&self.state);
        let state = &mut *state;
        match state.entries.get_mut(key) {
            Some((estimate, stamp)) => {
                state.order.remove(stamp);
                state.tick += 1;
                *stamp = state.tick;
                state.order.insert(state.tick, *key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(estimate))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// entry beyond capacity.
    pub fn insert(&self, key: CacheKey, estimate: Arc<Estimate>) {
        let mut state = lock(&self.state);
        let state = &mut *state;
        state.tick += 1;
        let stamp = state.tick;
        if let Some((_, old_stamp)) = state.entries.insert(key, (estimate, stamp)) {
            state.order.remove(&old_stamp);
        }
        state.order.insert(stamp, key);
        while state.entries.len() > self.capacity {
            let (&oldest, &victim) = state.order.iter().next().expect("non-empty order");
            state.order.remove(&oldest);
            state.entries.remove(&victim);
        }
    }

    /// Number of cached estimates.
    pub fn len(&self) -> usize {
        lock(&self.state).entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained estimates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required (or will require) a fresh estimate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Drops every cached estimate (counters are kept).
    pub fn clear(&self) {
        let mut state = lock(&self.state);
        state.entries.clear();
        state.order.clear();
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (a panicked
/// worker must not wedge the whole service).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{Application, Mapping};
    use sdf::{figure2_graphs, Rational};

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    #[test]
    fn hit_after_miss() {
        let cache = EstimateCache::new(8);
        let spec = spec();
        let uc = UseCase::full(2);
        let first = cache
            .get_or_estimate(&spec, uc, Method::SECOND_ORDER)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache
            .get_or_estimate(&spec, uc, Method::SECOND_ORDER)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.period(platform::AppId(0)), Rational::new(1075, 3));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = EstimateCache::new(8);
        let spec = spec();
        let full = cache
            .get_or_estimate(&spec, UseCase::full(2), Method::SECOND_ORDER)
            .unwrap();
        let single = cache
            .get_or_estimate(&spec, UseCase::from_mask(1), Method::SECOND_ORDER)
            .unwrap();
        assert_ne!(
            full.period(platform::AppId(0)),
            single.period(platform::AppId(0))
        );
        let other_method = cache
            .get_or_estimate(&spec, UseCase::full(2), Method::WorstCaseRoundRobin)
            .unwrap();
        assert!(other_method.period(platform::AppId(0)) >= full.period(platform::AppId(0)));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = EstimateCache::new(2);
        let spec = spec();
        let masks = [1u64, 2, 3];
        for mask in masks {
            cache
                .get_or_estimate(&spec, UseCase::from_mask(mask), Method::Composability)
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        // mask 1 was evicted; 2 and 3 remain.
        let fp = EstimateCache::fingerprint(&spec);
        let key = |mask| CacheKey {
            fingerprint: fp,
            use_case_mask: mask,
            method: Method::Composability,
        };
        assert!(cache.lookup(&key(1)).is_none());
        assert!(cache.lookup(&key(2)).is_some());
        assert!(cache.lookup(&key(3)).is_some());
        // Touch 2, insert 1: 3 is now the eviction victim.
        cache
            .get_or_estimate(&spec, UseCase::from_mask(2), Method::Composability)
            .unwrap();
        cache
            .get_or_estimate(&spec, UseCase::from_mask(1), Method::Composability)
            .unwrap();
        assert!(cache.lookup(&key(3)).is_none());
        assert!(cache.lookup(&key(2)).is_some());
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let base = spec();
        let (a, b) = figure2_graphs();
        let renamed = SystemSpec::builder()
            .application(Application::new("A2", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap();
        assert_eq!(
            EstimateCache::fingerprint(&base),
            EstimateCache::fingerprint(&spec())
        );
        assert_ne!(
            EstimateCache::fingerprint(&base),
            EstimateCache::fingerprint(&renamed)
        );
    }

    #[test]
    fn direct_insert_lookup_eviction_order_and_counter_monotonicity() {
        // Exercise the LRU mechanics and hit/miss counters through the raw
        // insert/lookup API — no estimator in the loop, so the eviction
        // order and every counter transition are pinned exactly.
        let cache = EstimateCache::new(3);
        let estimate = {
            let warm = EstimateCache::new(1);
            warm.get_or_estimate(&spec(), UseCase::full(2), Method::SECOND_ORDER)
                .unwrap()
        };
        let key = |mask| CacheKey {
            fingerprint: 0xF00D,
            use_case_mask: mask,
            method: Method::Composability,
        };

        // Counters must increase by exactly one classification per lookup,
        // and never decrease.
        let mut last = (cache.hits(), cache.misses());
        let mut observe = |cache: &EstimateCache, expect_hit: bool| {
            let now = (cache.hits(), cache.misses());
            assert!(now.0 >= last.0 && now.1 >= last.1, "counters regressed");
            let expected = if expect_hit {
                (last.0 + 1, last.1)
            } else {
                (last.0, last.1 + 1)
            };
            assert_eq!(now, expected, "one lookup classifies exactly once");
            last = now;
        };

        assert!(cache.lookup(&key(1)).is_none());
        observe(&cache, false);
        for mask in [1, 2, 3] {
            cache.insert(key(mask), Arc::clone(&estimate));
        }
        assert_eq!(cache.len(), 3);

        // Touch 1: the eviction victim becomes 2 (oldest untouched).
        assert!(cache.lookup(&key(1)).is_some());
        observe(&cache, true);
        cache.insert(key(4), Arc::clone(&estimate));
        assert_eq!(cache.len(), 3);
        assert!(cache.lookup(&key(2)).is_none());
        observe(&cache, false);
        assert!(cache.lookup(&key(1)).is_some());
        observe(&cache, true);

        // Re-inserting a resident key refreshes recency without growing:
        // 3 (now oldest) is evicted next, not the re-inserted 4.
        cache.insert(key(4), Arc::clone(&estimate));
        assert_eq!(cache.len(), 3);
        cache.insert(key(5), Arc::clone(&estimate));
        assert!(cache.lookup(&key(3)).is_none());
        observe(&cache, false);
        assert!(cache.lookup(&key(4)).is_some());
        observe(&cache, true);
        assert!(cache.lookup(&key(5)).is_some());
        observe(&cache, true);

        // hit_rate is consistent with the final counters: 4 hits, 3 misses.
        assert_eq!((cache.hits(), cache.misses()), (4, 3));
        assert!((cache.hit_rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = EstimateCache::new(4);
        let spec = spec();
        cache
            .get_or_estimate(&spec, UseCase::full(2), Method::Composability)
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
    }
}
