//! # runtime — concurrent online resource management
//!
//! The paper's closing argument is that millisecond-scale estimates make
//! **run-time admission control** feasible. The `contention` crate
//! implements that controller single-threaded; this crate turns it into an
//! online service able to serve heavy concurrent traffic:
//!
//! * [`ResourceManager`] — sharded, thread-safe admission front-end with
//!   ticket-based admit/release, FIFO/LIFO bounded waiting, timeouts and
//!   graceful [`stop`](ResourceManager::stop);
//! * [`EstimateCache`] — LRU memoization of [`contention::estimate`]
//!   results keyed by (spec fingerprint, use-case mask, method), with
//!   observable hit/miss counters;
//! * [`BatchExecutor`] — a worker-thread-pool request drain reporting
//!   throughput, per-class latency order statistics and rejection counts
//!   (the engine behind `probcon serve-bench`);
//! * [`FleetManager`] — admissions routed across many named platform
//!   groups ([`RoutingPolicy`]: least-utilised, round-robin,
//!   affinity-by-use-case) with cross-group rebalancing and fleet-wide
//!   metrics;
//! * [`Journal`] — an append-only, checksummed log of every
//!   admit/reject/release/rebalance decision, with [`JournalReplayer`]
//!   verifying that re-executing a journal against a fresh fleet
//!   reproduces every outcome (the engine behind `probcon fleet-bench` /
//!   `probcon replay`);
//! * [`AdmissionService`] — the unified service trait both managers
//!   implement, with composable middleware layers [`Cached`],
//!   [`Journaled`] and [`Metered`] (see [`service`]);
//! * [`FrontEnd`] — the async event-loop front-end multiplexing thousands
//!   of queued admissions over a small worker pool, delivering decisions
//!   through [`Completion`] tickets (see [`frontend`]);
//! * [`RemoteServer`] / [`RemoteClient`] — the remote transport: a
//!   length-prefixed JSON-lines protocol over TCP or Unix domain sockets
//!   whose both ends are just [`AdmissionService`]s, so a fleet spans
//!   processes and every existing driver works against it unchanged (see
//!   [`remote`]);
//! * [`Traced`] / [`TraceRecorder`] / [`TelemetrySnapshot`] — the
//!   telemetry subsystem: a fixed-capacity flight recorder of structured
//!   decision events, bounded HDR-style [`LatencyHistogram`]s replacing
//!   unbounded sample vectors, and a wire-exposed live-metrics surface
//!   with Prometheus-style rendering (see [`telemetry`], the engine
//!   behind `probcon top` / `probcon trace`);
//! * [`PlanRun`] / [`PlanSweep`] — the offline capacity planner: replay
//!   any recorded journal against hypothetical [`FleetShape`]s (scaled
//!   capacities, added groups, swapped policies) and report which
//!   decisions would have flipped, with a parallel sweep finding the
//!   smallest shape that serves everything the recording served (see
//!   [`planner`], the engine behind `probcon plan`).
//!
//! # Example
//!
//! ```
//! use platform::{Application, NodeId};
//! use runtime::{Admission, ResourceManager, ResourceManagerConfig};
//! use sdf::{figure2_graphs, Rational};
//!
//! let manager = ResourceManager::new(ResourceManagerConfig {
//!     shards: 1,
//!     capacity_per_shard: 8,
//!     ..ResourceManagerConfig::default()
//! });
//!
//! let (a, b) = figure2_graphs();
//! let nodes = [NodeId(0), NodeId(1), NodeId(2)];
//!
//! // Admit A; it insists on its full isolation throughput of 1/300.
//! let ticket = manager
//!     .admit(0, Application::new("A", a)?, &nodes, Some(Rational::new(1, 300)))?
//!     .ticket()
//!     .expect("first admission fits");
//!
//! // B would slow A below its contract: rejected, no capacity consumed.
//! let outcome = manager.admit(0, Application::new("B", b)?, &nodes, None)?;
//! assert!(outcome.ticket().is_none());
//! assert_eq!(manager.resident_count(), 1);
//!
//! ticket.release(); // frees the shard for the next request
//! assert_eq!(manager.resident_count(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod autoscaler;
pub mod cache;
pub mod executor;
pub mod fleet;
pub mod fleet_bench;
pub mod frontend;
pub mod journal;
pub mod manager;
pub mod metrics;
pub mod planner;
pub mod remote;
pub mod service;
pub mod telemetry;
pub mod wal;

pub use autoscaler::{
    evaluate, Autoscaled, Autoscaler, AutoscalerHandle, AutoscalerStatus, ControllerState,
    GroupObservation, Observation, ScaleDecision, ScalePolicy, TargetPolicy,
};
pub use cache::{CacheKey, EstimateCache};
pub use executor::{seeded_requests, BatchExecutor, BatchReport, Request};
pub use fleet::{
    FleetAdmission, FleetConfig, FleetError, FleetManager, FleetSnapshot, FleetTicket, GroupConfig,
    GroupSnapshot, RebalanceMove, RoutingPolicy,
};
pub use fleet_bench::{
    run_fleet_requests, run_fleet_stack, run_fleet_stack_sampled, run_service_requests,
    run_service_requests_sampled, run_service_requests_sampled_with, seeded_fleet_requests,
    ConnectionPoint, ConnectionSampler, FleetBenchReport, FleetRequest, TelemetryPoint,
};
pub use frontend::{FrontEnd, FrontEndConfig};
pub use journal::{
    fold_checkpoint, ClientScope, DecisionEvent, Divergence, GroupShape, Journal, JournalEntry,
    JournalError, JournalHeader, JournalOutcome, JournalPage, JournalReplayer, ReplayReport,
    ScaleAction, ScaleOutcome, ScaleRefusal, JOURNAL_CHECKPOINT_VERSION, JOURNAL_VERSION,
};
pub use manager::{
    Admission, AdmitError, QueueMode, ResourceManager, ResourceManagerConfig, Ticket,
};
pub use metrics::{LatencySummary, RuntimeMetrics};
pub use planner::{
    FleetShape, Flip, FlipKind, GroupUsage, OutcomeTotals, PlanError, PlanReport, PlanRun,
    PlanSweep, PolicyDecision, RouteMode, SaturationWindow, SweepReport,
};
#[allow(deprecated)]
pub use remote::RemoteAddr;
pub use remote::{
    BinaryCodec, ClientConfig, Endpoint, JournalSource, JsonLinesCodec, RemoteClient,
    RemoteClientStats, RemoteServer, RemoteServerConfig, RemoteServerStats, WireCodec, WireMode,
    WirePolicy, MAX_FRAME, REMOTE_PROTOCOL_MIN_VERSION, REMOTE_PROTOCOL_VERSION,
};
pub use service::{
    AdmissionDecision, AdmissionRequest, AdmissionService, Cached, Completer, Completion,
    Journaled, LayerMetrics, Metered, OpRate, ServiceError, ServiceOp, ServiceSnapshot,
};
pub use telemetry::{
    build_span_trees, render_chrome_trace, ConnectionStats, EventLoopStats, HistogramRecorder,
    LatencyHistogram, OpHistogram, SpanContext, SpanNode, SpanScope, SpanTree, TelemetrySnapshot,
    TenantBreakdown, TraceEvent, TraceKind, TraceRecorder, TraceStats, Traced,
};
pub use wal::{
    CheckpointGroup, CheckpointResident, FleetCheckpoint, FsyncPolicy, Manifest, SegmentMeta,
    SnapshotMeta, WalConfig, WalRecovery, WalStats, MANIFEST_FILE, WAL_VERSION,
};
