//! Multi-threaded request batch executor with throughput/latency metrics.
//!
//! [`BatchExecutor`] drains a queue of admission/release/query/estimate
//! requests across a pool of worker threads, driving a shared
//! [`ResourceManager`] and [`EstimateCache`], and reports per-class latency
//! order statistics plus outcome counts — the measurement harness behind
//! `probcon serve-bench`.

use crate::cache::{lock, EstimateCache};
use crate::manager::{Admission, AdmitError, ResourceManager, Ticket};
use crate::metrics::LatencySummary;
use contention::Method;
use platform::{AppId, NodeId, SystemSpec, UseCase};
use sdf::Rational;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One unit of work for the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Admit an instance of the spec's application `app_index` (mapped per
    /// the spec), optionally demanding a throughput floor.
    Admit {
        /// Index of the application in the spec.
        app_index: usize,
        /// Required minimum throughput, if any.
        required_throughput: Option<Rational>,
    },
    /// Release the most recently admitted live ticket (no-op when none).
    Release,
    /// Re-predict the period of a live resident (falls back to a
    /// resident-count probe when none).
    Query,
    /// Estimate all periods of a use-case through the cache.
    Estimate {
        /// Active-application mask.
        use_case: UseCase,
        /// Estimation method.
        method: Method,
    },
}

/// Request classes reported separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Admit,
    Release,
    Query,
    Estimate,
}

const CLASSES: [Class; 4] = [Class::Admit, Class::Release, Class::Query, Class::Estimate];

impl Class {
    fn of(request: &Request) -> Class {
        match request {
            Request::Admit { .. } => Class::Admit,
            Request::Release => Class::Release,
            Request::Query => Class::Query,
            Request::Estimate { .. } => Class::Estimate,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Class::Admit => "admit",
            Class::Release => "release",
            Class::Query => "query",
            Class::Estimate => "estimate",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Outcome counts and latency statistics of one executed batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Worker threads used.
    pub threads: usize,
    /// Requests executed.
    pub requests: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Admissions granted.
    pub admitted: u64,
    /// Admissions rejected by a contract.
    pub rejected: u64,
    /// Admissions that timed out waiting for capacity.
    pub timeouts: u64,
    /// Admissions refused because the manager stopped.
    pub stopped: u64,
    /// Hard analysis errors.
    pub errors: u64,
    /// Tickets released by `Release` requests (and the final drain).
    pub released: u64,
    /// Cache hits over the batch.
    pub cache_hits: u64,
    /// Cache misses over the batch.
    pub cache_misses: u64,
    /// Residents still live when the batch finished (before the drain).
    pub residents_at_end: usize,
    /// Per-class latency summaries, indexed like `CLASSES`.
    latencies: [LatencySummary; 4],
}

impl BatchReport {
    /// Requests per second over the wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }

    /// Latency summary for admissions.
    pub fn admit_latency(&self) -> LatencySummary {
        self.latencies[Class::Admit.index()]
    }

    /// Latency summary for estimate requests.
    pub fn estimate_latency(&self) -> LatencySummary {
        self.latencies[Class::Estimate.index()]
    }

    /// Renders the human-readable metrics table printed by
    /// `probcon serve-bench`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests on {} threads in {:.3?}  ({:.1} req/s)",
            self.requests,
            self.threads,
            self.wall,
            self.throughput()
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "class", "count", "min", "mean", "p50", "p95", "max"
        );
        for class in CLASSES {
            let s = self.latencies[class.index()];
            if s.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                class.name(),
                s.count,
                format_duration(s.min),
                format_duration(s.mean),
                format_duration(s.p50),
                format_duration(s.p95),
                format_duration(s.max),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "admissions: {} admitted, {} rejected, {} timed out, {} stopped, {} errors",
            self.admitted, self.rejected, self.timeouts, self.stopped, self.errors
        );
        let total_lookups = self.cache_hits + self.cache_misses;
        let rate = if total_lookups == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / total_lookups as f64
        };
        let _ = writeln!(
            out,
            "estimate cache: {} hits, {} misses ({rate:.1}% hit rate)",
            self.cache_hits, self.cache_misses
        );
        let _ = writeln!(
            out,
            "tickets: {} released during the batch, {} resident at end",
            self.released, self.residents_at_end
        );
        out
    }
}

fn format_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

/// Drains request batches through a [`ResourceManager`] + [`EstimateCache`]
/// on a worker-thread pool.
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    manager: ResourceManager,
    cache: Arc<EstimateCache>,
}

struct WorkerStats {
    /// `(class, micros)` latency samples.
    samples: Vec<(Class, u64)>,
    admitted: u64,
    rejected: u64,
    timeouts: u64,
    stopped: u64,
    errors: u64,
    released: u64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            samples: Vec::new(),
            admitted: 0,
            rejected: 0,
            timeouts: 0,
            stopped: 0,
            errors: 0,
            released: 0,
        }
    }
}

impl BatchExecutor {
    /// Executor over a shared manager and cache.
    pub fn new(manager: ResourceManager, cache: Arc<EstimateCache>) -> BatchExecutor {
        BatchExecutor { manager, cache }
    }

    /// The manager this executor drives.
    pub fn manager(&self) -> &ResourceManager {
        &self.manager
    }

    /// The estimate cache this executor consults.
    pub fn cache(&self) -> &EstimateCache {
        &self.cache
    }

    /// Executes `requests` against `spec` on `threads` workers and reports
    /// the batch's metrics. Tickets admitted during the batch are held in a
    /// shared pool (drained by `Release` requests) and all released when
    /// the batch ends.
    pub fn run(&self, spec: &SystemSpec, requests: Vec<Request>, threads: usize) -> BatchReport {
        let threads = threads.max(1);
        let total = requests.len();
        let queue = Mutex::new(requests.into_iter().collect::<VecDeque<Request>>());
        let tickets: Mutex<Vec<Ticket>> = Mutex::new(Vec::new());
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        // One structural hash for the whole batch, not one per request.
        let fingerprint = EstimateCache::fingerprint(spec);

        let start = Instant::now();
        let worker_stats = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let queue = &queue;
                    let tickets = &tickets;
                    scope.spawn(move || self.worker_loop(worker, fingerprint, spec, queue, tickets))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect::<Vec<WorkerStats>>()
        });
        let wall = start.elapsed();

        let residents_at_end = self.manager.resident_count();
        // Drain: release every ticket still held by the batch.
        tickets
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .clear();

        let mut merged = WorkerStats::new();
        for stats in worker_stats {
            merged.samples.extend(stats.samples);
            merged.admitted += stats.admitted;
            merged.rejected += stats.rejected;
            merged.timeouts += stats.timeouts;
            merged.stopped += stats.stopped;
            merged.errors += stats.errors;
            merged.released += stats.released;
        }
        let mut latencies = [LatencySummary::default(); 4];
        for class in CLASSES {
            let mut micros: Vec<u64> = merged
                .samples
                .iter()
                .filter(|(c, _)| *c == class)
                .map(|(_, us)| *us)
                .collect();
            latencies[class.index()] = LatencySummary::from_micros(&mut micros);
        }

        BatchReport {
            threads,
            requests: total,
            wall,
            admitted: merged.admitted,
            rejected: merged.rejected,
            timeouts: merged.timeouts,
            stopped: merged.stopped,
            errors: merged.errors,
            released: merged.released,
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            residents_at_end,
            latencies,
        }
    }

    fn worker_loop(
        &self,
        worker: usize,
        fingerprint: u64,
        spec: &SystemSpec,
        queue: &Mutex<VecDeque<Request>>,
        tickets: &Mutex<Vec<Ticket>>,
    ) -> WorkerStats {
        let mut stats = WorkerStats::new();
        loop {
            let Some(request) = lock(queue).pop_front() else {
                return stats;
            };
            let class = Class::of(&request);
            let start = Instant::now();
            self.execute(worker, fingerprint, spec, request, tickets, &mut stats);
            let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            stats.samples.push((class, micros));
        }
    }

    fn execute(
        &self,
        worker: usize,
        fingerprint: u64,
        spec: &SystemSpec,
        request: Request,
        tickets: &Mutex<Vec<Ticket>>,
        stats: &mut WorkerStats,
    ) {
        match request {
            Request::Admit {
                app_index,
                required_throughput,
            } => {
                let app_index = app_index % spec.application_count();
                let id = AppId(app_index);
                let app = spec.application(id).clone();
                let assignment: Vec<NodeId> = app
                    .graph()
                    .actor_ids()
                    .map(|actor| spec.node_of(id, actor))
                    .collect();
                let shard = self.manager.shard_for((worker + app_index) as u64);
                match self
                    .manager
                    .admit(shard, app, &assignment, required_throughput)
                {
                    Ok(Admission::Admitted(ticket)) => {
                        stats.admitted += 1;
                        lock(tickets).push(ticket);
                    }
                    Ok(Admission::Rejected { .. }) => stats.rejected += 1,
                    Err(AdmitError::Timeout) => stats.timeouts += 1,
                    Err(AdmitError::Stopped) => stats.stopped += 1,
                    Err(_) => stats.errors += 1,
                }
            }
            Request::Release => {
                let ticket = lock(tickets).pop();
                if let Some(ticket) = ticket {
                    ticket.release();
                    stats.released += 1;
                }
            }
            Request::Query => {
                // Snapshot one live ticket's identity, then query without
                // holding the pool lock.
                let target = {
                    let pool = lock(tickets);
                    pool.last().map(|t| (t.shard(), t.app_id()))
                };
                match target {
                    Some((shard, app)) => {
                        // The resident may have been released concurrently;
                        // an unknown-application analysis error is fine.
                        let _ = self.manager.predicted_period(shard, app);
                    }
                    None => {
                        let _ = self.manager.resident_count();
                    }
                }
            }
            Request::Estimate { use_case, method } => {
                if self
                    .cache
                    .get_or_estimate_with(fingerprint, spec, use_case, method)
                    .is_err()
                {
                    stats.errors += 1;
                }
            }
        }
    }
}

/// Deterministic seeded request stream with a serve-bench-shaped mix
/// (≈40 % admit, 25 % release, 20 % query, 15 % estimate).
pub fn seeded_requests(spec: &SystemSpec, count: usize, seed: u64) -> Vec<Request> {
    use rand::{rngs::StdRng, RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = move || rng.next_u64();
    let apps = spec.application_count();
    let methods = [
        Method::SECOND_ORDER,
        Method::Composability,
        Method::WorstCaseRoundRobin,
    ];
    (0..count)
        .map(|_| {
            let roll = next() % 100;
            if roll < 40 {
                let app_index = next() as usize % apps;
                // Half the admissions carry a throughput contract at 60 %
                // of isolation (tight enough to see real rejections).
                let required_throughput = if next() % 2 == 0 {
                    Some(
                        spec.application(AppId(app_index)).isolation_throughput()
                            * Rational::new(3, 5),
                    )
                } else {
                    None
                };
                Request::Admit {
                    app_index,
                    required_throughput,
                }
            } else if roll < 65 {
                Request::Release
            } else if roll < 85 {
                Request::Query
            } else {
                let mask = next() % ((1u64 << apps.min(20)) - 1) + 1;
                Request::Estimate {
                    use_case: UseCase::from_mask(mask),
                    method: methods[next() as usize % methods.len()],
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{QueueMode, ResourceManagerConfig};
    use platform::{Application, Mapping};
    use sdf::figure2_graphs;

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    fn executor(capacity: usize) -> BatchExecutor {
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards: 2,
            capacity_per_shard: capacity,
            queue_mode: QueueMode::Fifo,
            admit_timeout: Some(Duration::from_millis(20)),
        });
        BatchExecutor::new(manager, Arc::new(EstimateCache::new(32)))
    }

    #[test]
    fn batch_executes_all_requests() {
        let exec = executor(8);
        let spec = spec();
        let requests = seeded_requests(&spec, 120, 42);
        assert_eq!(requests.len(), 120);
        let report = exec.run(&spec, requests, 4);
        assert_eq!(report.requests, 120);
        assert_eq!(report.threads, 4);
        assert!(report.admitted > 0, "{report:?}");
        assert!(report.cache_hits + report.cache_misses > 0, "{report:?}");
        // Every ticket is drained after the batch.
        assert_eq!(exec.manager().resident_count(), 0);
        // The report renders the metrics table.
        let table = report.render();
        for needle in ["req/s", "admit", "admitted", "cache", "p95"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn seeded_requests_deterministic_and_mixed() {
        let spec = spec();
        let a = seeded_requests(&spec, 400, 7);
        let b = seeded_requests(&spec, 400, 7);
        assert_eq!(a, b);
        let admits = a
            .iter()
            .filter(|r| matches!(r, Request::Admit { .. }))
            .count();
        let estimates = a
            .iter()
            .filter(|r| matches!(r, Request::Estimate { .. }))
            .count();
        assert!((100..=220).contains(&admits), "{admits}");
        assert!((20..=120).contains(&estimates), "{estimates}");
        assert_ne!(a, seeded_requests(&spec, 400, 8));
    }

    #[test]
    fn single_thread_batch_is_equivalent() {
        let exec = executor(4);
        let spec = spec();
        let report = exec.run(&spec, seeded_requests(&spec, 60, 3), 1);
        assert_eq!(report.requests, 60);
        assert_eq!(exec.manager().resident_count(), 0);
    }
}
