//! Multi-threaded request batch executor over the unified service stack.
//!
//! [`BatchExecutor`] drains a queue of admission/release/query/estimate
//! requests across a pool of worker threads, driving **any**
//! [`AdmissionService`] stack (a bare [`ResourceManager`](crate::ResourceManager),
//! a [`Cached`](crate::Cached) stack, a whole
//! [`FrontEnd`](crate::FrontEnd), …) and reports per-class latency order
//! statistics plus outcome counts — the measurement harness behind
//! `probcon serve-bench`. Latencies come from a [`Metered`] layer the
//! executor wraps around the stack for the duration of the batch, so the
//! numbers are the same ones any other driver of the stack would see.

use crate::cache::lock;
use crate::metrics::LatencySummary;
use crate::service::{
    AdmissionDecision, AdmissionRequest, AdmissionService, Metered, ServiceError, ServiceOp,
    ServiceSnapshot,
};
use contention::Method;
use platform::{AppId, SystemSpec, UseCase};
use sdf::Rational;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One unit of work for the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Admit an instance of the service's application `app_index` (mapped
    /// per the workload spec), optionally demanding a throughput floor.
    Admit {
        /// Index of the application in the spec.
        app_index: usize,
        /// Required minimum throughput, if any.
        required_throughput: Option<Rational>,
    },
    /// Release the most recently admitted live resident (no-op when none).
    Release,
    /// Probe the service snapshot (the cheap read path).
    Query,
    /// Estimate all periods of a use-case through the stack (served by a
    /// [`Cached`](crate::Cached) layer when one is present).
    Estimate {
        /// Active-application mask.
        use_case: UseCase,
        /// Estimation method.
        method: Method,
    },
}

/// Outcome counts and latency statistics of one executed batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Worker threads used.
    pub threads: usize,
    /// Requests executed.
    pub requests: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Admissions granted.
    pub admitted: u64,
    /// Admissions rejected by a contract.
    pub rejected: u64,
    /// Admissions bounced for lack of capacity.
    pub saturated: u64,
    /// Admissions refused because the service stopped.
    pub stopped: u64,
    /// Hard analysis/service errors.
    pub errors: u64,
    /// Residents released by `Release` requests (and the final drain).
    pub released: u64,
    /// Cache hits over the batch (0 without a [`Cached`](crate::Cached)
    /// layer).
    pub cache_hits: u64,
    /// Cache misses over the batch.
    pub cache_misses: u64,
    /// Residents still live when the batch finished (before the drain).
    pub residents_at_end: usize,
    /// Final stack snapshot (after the drain), with per-layer metrics.
    pub stack: ServiceSnapshot,
    /// Per-class latency summaries: admit, release, query, estimate.
    latencies: [LatencySummary; 4],
}

impl BatchReport {
    /// Requests per second over the wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }

    /// Latency summary for admissions.
    pub fn admit_latency(&self) -> LatencySummary {
        self.latencies[0]
    }

    /// Latency summary for estimate requests.
    pub fn estimate_latency(&self) -> LatencySummary {
        self.latencies[3]
    }

    /// Renders the human-readable metrics table printed by
    /// `probcon serve-bench`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests on {} threads in {:.3?}  ({:.1} req/s)",
            self.requests,
            self.threads,
            self.wall,
            self.throughput()
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "class", "count", "min", "mean", "p50", "p95", "p99", "p999", "max"
        );
        for (name, summary) in ["admit", "release", "query", "estimate"]
            .iter()
            .zip(self.latencies.iter())
        {
            if summary.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                summary.count,
                format_duration(summary.min),
                format_duration(summary.mean),
                format_duration(summary.p50),
                format_duration(summary.p95),
                format_duration(summary.p99),
                format_duration(summary.p999),
                format_duration(summary.max),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "admissions: {} admitted, {} rejected, {} saturated, {} stopped, {} errors",
            self.admitted, self.rejected, self.saturated, self.stopped, self.errors
        );
        let total_lookups = self.cache_hits + self.cache_misses;
        let rate = if total_lookups == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / total_lookups as f64
        };
        let _ = writeln!(
            out,
            "estimate cache: {} hits, {} misses ({rate:.1}% hit rate)",
            self.cache_hits, self.cache_misses
        );
        let _ = writeln!(
            out,
            "residents: {} released during the batch, {} resident at end",
            self.released, self.residents_at_end
        );
        out.push_str(&self.stack.render());
        out
    }
}

fn format_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

/// Drains request batches through any [`AdmissionService`] stack on a
/// worker-thread pool.
#[derive(Clone)]
pub struct BatchExecutor {
    service: Arc<dyn AdmissionService>,
}

impl std::fmt::Debug for BatchExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchExecutor").finish_non_exhaustive()
    }
}

#[derive(Default)]
struct WorkerStats {
    admitted: u64,
    rejected: u64,
    saturated: u64,
    stopped: u64,
    errors: u64,
    released: u64,
}

impl BatchExecutor {
    /// Executor over a service stack.
    pub fn new(service: Arc<dyn AdmissionService>) -> BatchExecutor {
        BatchExecutor { service }
    }

    /// The stack this executor drives.
    pub fn service(&self) -> &Arc<dyn AdmissionService> {
        &self.service
    }

    /// Executes `requests` on `threads` workers and reports the batch's
    /// metrics. Residents admitted during the batch are held in a shared
    /// pool (drained newest-first by `Release` requests) and all released
    /// when the batch ends.
    pub fn run(&self, requests: Vec<Request>, threads: usize) -> BatchReport {
        let threads = threads.max(1);
        let total = requests.len();
        let queue = Mutex::new(requests.into_iter().collect::<VecDeque<Request>>());
        let pool: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let before = self.service.snapshot();
        let metered = Metered::new(Arc::clone(&self.service));

        let start = Instant::now();
        let worker_stats = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let queue = &queue;
                    let pool = &pool;
                    let metered = &metered;
                    scope.spawn(move || worker_loop(metered, queue, pool))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect::<Vec<WorkerStats>>()
        });
        let wall = start.elapsed();

        let residents_at_end = self.service.snapshot().residents;
        // Drain: release every resident still held by the batch.
        let mut drained = 0u64;
        for resident in lock(&pool).drain(..) {
            if self.service.release(resident).is_ok() {
                drained += 1;
            }
        }

        let mut merged = WorkerStats::default();
        for stats in worker_stats {
            merged.admitted += stats.admitted;
            merged.rejected += stats.rejected;
            merged.saturated += stats.saturated;
            merged.stopped += stats.stopped;
            merged.errors += stats.errors;
            merged.released += stats.released;
        }
        let latencies = [
            metered.latency(ServiceOp::Admit),
            metered.latency(ServiceOp::Release),
            metered.latency(ServiceOp::Snapshot),
            metered.latency(ServiceOp::Estimate),
        ];
        let stack = self.service.snapshot();
        let counter_delta = |layer: &str, name: &str| {
            stack
                .counter(layer, name)
                .unwrap_or(0)
                .saturating_sub(before.counter(layer, name).unwrap_or(0))
        };

        BatchReport {
            threads,
            requests: total,
            wall,
            admitted: merged.admitted,
            rejected: merged.rejected,
            saturated: merged.saturated,
            stopped: merged.stopped,
            errors: merged.errors,
            released: merged.released + drained,
            cache_hits: counter_delta("cached", "hits"),
            cache_misses: counter_delta("cached", "misses"),
            residents_at_end,
            stack,
            latencies,
        }
    }
}

fn worker_loop(
    service: &Metered<Arc<dyn AdmissionService>>,
    queue: &Mutex<VecDeque<Request>>,
    pool: &Mutex<Vec<u64>>,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    loop {
        let Some(request) = lock(queue).pop_front() else {
            return stats;
        };
        match request {
            Request::Admit {
                app_index,
                required_throughput,
            } => {
                let mut request = AdmissionRequest::new(app_index);
                request.required_throughput = required_throughput;
                match service.admit(&request) {
                    Ok(AdmissionDecision::Admitted { resident, .. }) => {
                        stats.admitted += 1;
                        lock(pool).push(resident);
                    }
                    Ok(AdmissionDecision::Rejected { .. }) => stats.rejected += 1,
                    Ok(AdmissionDecision::Saturated { .. }) => stats.saturated += 1,
                    Err(ServiceError::Stopped) => stats.stopped += 1,
                    Err(_) => stats.errors += 1,
                }
            }
            Request::Release => {
                let resident = lock(pool).pop();
                if let Some(resident) = resident {
                    if service.release(resident).is_ok() {
                        stats.released += 1;
                    }
                }
            }
            Request::Query => {
                let _ = service.snapshot();
            }
            Request::Estimate { use_case, method } => {
                if service.estimate(use_case, method).is_err() {
                    stats.errors += 1;
                }
            }
        }
    }
}

/// Deterministic seeded request stream with a serve-bench-shaped mix
/// (≈40 % admit, 25 % release, 20 % query, 15 % estimate).
pub fn seeded_requests(spec: &SystemSpec, count: usize, seed: u64) -> Vec<Request> {
    use rand::{rngs::StdRng, RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = move || rng.next_u64();
    let apps = spec.application_count();
    let methods = [
        Method::SECOND_ORDER,
        Method::Composability,
        Method::WorstCaseRoundRobin,
    ];
    (0..count)
        .map(|_| {
            let roll = next() % 100;
            if roll < 40 {
                let app_index = next() as usize % apps;
                // Half the admissions carry a throughput contract at 60 %
                // of isolation (tight enough to see real rejections).
                let required_throughput = if next() % 2 == 0 {
                    Some(
                        spec.application(AppId(app_index)).isolation_throughput()
                            * Rational::new(3, 5),
                    )
                } else {
                    None
                };
                Request::Admit {
                    app_index,
                    required_throughput,
                }
            } else if roll < 65 {
                Request::Release
            } else if roll < 85 {
                Request::Query
            } else {
                let mask = next() % ((1u64 << apps.min(20)) - 1) + 1;
                Request::Estimate {
                    use_case: UseCase::from_mask(mask),
                    method: methods[next() as usize % methods.len()],
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{QueueMode, ResourceManager, ResourceManagerConfig};
    use crate::service::Cached;
    use platform::{Application, Mapping};
    use sdf::figure2_graphs;

    fn spec() -> SystemSpec {
        let (a, b) = figure2_graphs();
        SystemSpec::builder()
            .application(Application::new("A", a).unwrap())
            .application(Application::new("B", b).unwrap())
            .mapping(Mapping::by_actor_index(3))
            .build()
            .unwrap()
    }

    fn executor(capacity: usize) -> BatchExecutor {
        let manager = ResourceManager::new(ResourceManagerConfig {
            shards: 2,
            capacity_per_shard: capacity,
            queue_mode: QueueMode::Fifo,
            admit_timeout: Some(Duration::from_millis(20)),
        });
        manager.bind_workload(spec());
        BatchExecutor::new(Arc::new(Cached::new(manager, 32)))
    }

    #[test]
    fn batch_executes_all_requests() {
        let exec = executor(8);
        let requests = seeded_requests(&spec(), 120, 42);
        assert_eq!(requests.len(), 120);
        let report = exec.run(requests, 4);
        assert_eq!(report.requests, 120);
        assert_eq!(report.threads, 4);
        assert!(report.admitted > 0, "{report:?}");
        assert!(report.cache_hits + report.cache_misses > 0, "{report:?}");
        // Every resident is drained after the batch.
        assert_eq!(exec.service().snapshot().residents, 0);
        // The report renders the metrics table, stack layers included.
        let table = report.render();
        for needle in [
            "req/s", "admit", "admitted", "cache", "p95", "p999", "cached",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn cache_counters_are_deltas_across_batches() {
        let exec = executor(8);
        let uc = UseCase::full(2);
        let estimates = vec![
            Request::Estimate {
                use_case: uc,
                method: Method::SECOND_ORDER,
            };
            4
        ];
        let first = exec.run(estimates.clone(), 1);
        assert_eq!((first.cache_hits, first.cache_misses), (3, 1));
        // The second batch hits the already-warm entry: all hits, no misses.
        let second = exec.run(estimates, 1);
        assert_eq!((second.cache_hits, second.cache_misses), (4, 0));
    }

    #[test]
    fn seeded_requests_deterministic_and_mixed() {
        let spec = spec();
        let a = seeded_requests(&spec, 400, 7);
        let b = seeded_requests(&spec, 400, 7);
        assert_eq!(a, b);
        let admits = a
            .iter()
            .filter(|r| matches!(r, Request::Admit { .. }))
            .count();
        let estimates = a
            .iter()
            .filter(|r| matches!(r, Request::Estimate { .. }))
            .count();
        assert!((100..=220).contains(&admits), "{admits}");
        assert!((20..=120).contains(&estimates), "{estimates}");
        assert_ne!(a, seeded_requests(&spec, 400, 8));
    }

    #[test]
    fn single_thread_batch_is_equivalent() {
        let exec = executor(4);
        let report = exec.run(seeded_requests(&spec(), 60, 3), 1);
        assert_eq!(report.requests, 60);
        assert_eq!(exec.service().snapshot().residents, 0);
    }

    #[test]
    fn executor_drives_a_bare_manager_without_cache_layer() {
        let manager = ResourceManager::new(ResourceManagerConfig::default());
        manager.bind_workload(spec());
        let exec = BatchExecutor::new(Arc::new(manager));
        let report = exec.run(seeded_requests(&spec(), 40, 9), 2);
        assert_eq!(report.requests, 40);
        // No Cached layer: estimates still serve, the counters read zero.
        assert_eq!((report.cache_hits, report.cache_misses), (0, 0));
    }
}
